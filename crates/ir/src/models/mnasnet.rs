//! MnasNet-B1 depth multiplier 1.0 (Tan et al., CVPR 2019), the
//! torchvision `mnasnet1_0` layout (no squeeze-excite).

use super::make_divisible;
use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::ops::ActivationKind;
use crate::tensor::Shape;

fn inverted_residual(
    b: &mut GraphBuilder,
    x: ValueId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    expand_ratio: usize,
) -> ValueId {
    let hidden = in_channels * expand_ratio;
    let mut y = b.conv_act(x, hidden, 1, 1, 0, ActivationKind::Relu6);
    y = b.dw_act(y, hidden, kernel, stride, kernel / 2, ActivationKind::Relu6);
    y = b.conv1x1(y, out_channels);
    if stride == 1 && in_channels == out_channels {
        y = b.add(y, x);
    }
    y
}

/// Builds MnasNet-1.0 for 224x224 single-batch inference.
pub fn mnasnet() -> Graph {
    mnasnet_scaled(1.0)
}

/// Builds MnasNet with a channel width multiplier (Fig. 16 scaling study).
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn mnasnet_scaled(alpha: f64) -> Graph {
    assert!(alpha > 0.0, "width multiplier must be positive");
    let name = if (alpha - 1.0).abs() < 1e-9 {
        "mnasnet-1.0".to_string()
    } else {
        format!("mnasnet-w{alpha:.2}")
    };
    let mut b = GraphBuilder::new(name);
    let scale = |c: usize| make_divisible(c as f64 * alpha, 8);

    let x = b.input(Shape::nhwc(1, 224, 224, 3));
    let stem = scale(32);
    let mut y = b.conv_act(x, stem, 3, 2, 1, ActivationKind::Relu6);

    // Separable first block: DW 3x3 + linear 1x1 projection to 16.
    y = b.dw_act(y, stem, 3, 1, 1, ActivationKind::Relu6);
    y = b.conv1x1(y, scale(16));
    let mut in_c = scale(16);

    // (kernel k, expand t, channels c, repeats n, stride s) per stage.
    let cfg = [
        (3, 3, 24, 3, 2),
        (5, 3, 40, 3, 2),
        (5, 6, 80, 3, 2),
        (3, 6, 96, 2, 1),
        (5, 6, 192, 4, 2),
        (3, 6, 320, 1, 1),
    ];
    for (k, t, c, n, s) in cfg {
        let out_c = scale(c);
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            y = inverted_residual(&mut b, y, in_c, out_c, k, stride, t);
            in_c = out_c;
        }
    }

    let y = b.conv_act(y, 1280, 1, 1, 0, ActivationKind::Relu6);
    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{node_cost, profile_model, LayerClass};

    #[test]
    fn total_macs_about_320_mmacs() {
        let g = mnasnet();
        let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let mmacs = macs as f64 / 1e6;
        assert!((280.0..380.0).contains(&mmacs), "got {mmacs} MMACs");
    }

    #[test]
    fn uses_5x5_depthwise_kernels() {
        let g = mnasnet();
        let has_5x5_dw = g.node_ids().any(|id| {
            matches!(
                &g.node(id).op,
                crate::ops::Op::Conv2d(a) if a.groups > 1 && a.kernel.h == 5
            )
        });
        assert!(has_5x5_dw);
    }

    #[test]
    fn pointwise_heavy() {
        let p = profile_model(&mnasnet());
        assert!(p.mac_share(LayerClass::PointwiseConv) > 0.5);
    }
}
