//! ResNet-50 (He et al., CVPR 2016), torchvision layout.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::tensor::Shape;

/// One bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand, with a projection
/// shortcut when the shape changes. Stride (when present) is applied on the
/// 3x3 convolution, matching torchvision's ResNet v1.5.
fn bottleneck(
    b: &mut GraphBuilder,
    x: ValueId,
    in_channels: usize,
    mid_channels: usize,
    out_channels: usize,
    stride: usize,
) -> ValueId {
    let y = b.conv1x1(x, mid_channels);
    let y = b.relu(y);
    let y = b.conv(y, mid_channels, 3, stride, 1);
    let y = b.relu(y);
    let y = b.conv1x1(y, out_channels);
    let shortcut = if stride != 1 || in_channels != out_channels {
        b.conv(x, out_channels, 1, stride, 0)
    } else {
        x
    };
    let y = b.add(y, shortcut);
    b.relu(y)
}

/// Builds ResNet-50 for 224x224 single-batch inference.
///
/// # Examples
///
/// ```
/// let g = pimflow_ir::models::resnet50();
/// assert_eq!(g.name, "resnet-50");
/// ```
pub fn resnet50() -> Graph {
    let mut b = GraphBuilder::new("resnet-50");
    let x = b.input(Shape::nhwc(1, 224, 224, 3));
    let y = b.conv(x, 64, 7, 2, 3);
    let y = b.relu(y);
    let mut y = b.maxpool(y, 3, 2, 1);

    // (mid, out, blocks, first-stride) per stage.
    let stages = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    let mut in_c = 64;
    for (mid, out, blocks, first_stride) in stages {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            y = bottleneck(&mut b, y, in_c, mid, out, stride);
            in_c = out;
        }
    }

    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

/// One basic block (ResNet-18/34): 3x3 -> 3x3 with an identity or
/// projection shortcut.
fn basic_block(
    b: &mut GraphBuilder,
    x: ValueId,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
) -> ValueId {
    let y = b.conv(x, out_channels, 3, stride, 1);
    let y = b.relu(y);
    let y = b.conv(y, out_channels, 3, 1, 1);
    let shortcut = if stride != 1 || in_channels != out_channels {
        b.conv(x, out_channels, 1, stride, 0)
    } else {
        x
    };
    let y = b.add(y, shortcut);
    b.relu(y)
}

/// Builds a basic-block ResNet (He et al., 2016): 18 layers for
/// `blocks = [2, 2, 2, 2]`, 34 layers for `[3, 4, 6, 3]`.
fn resnet_basic(name: &str, blocks: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input(Shape::nhwc(1, 224, 224, 3));
    let y = b.conv(x, 64, 7, 2, 3);
    let y = b.relu(y);
    let mut y = b.maxpool(y, 3, 2, 1);

    let widths = [64usize, 128, 256, 512];
    let mut in_c = 64;
    for (stage, &n) in blocks.iter().enumerate() {
        let out = widths[stage];
        for i in 0..n {
            let stride = if i == 0 && stage > 0 { 2 } else { 1 };
            y = basic_block(&mut b, y, in_c, out, stride);
            in_c = out;
        }
    }
    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

/// Builds ResNet-18 (basic blocks, no 1x1 bottlenecks) — the dense-conv
/// counterpoint to ResNet-50 in architecture studies.
pub fn resnet18() -> Graph {
    resnet_basic("resnet-18", [2, 2, 2, 2])
}

/// Builds ResNet-34 (basic blocks).
pub fn resnet34() -> Graph {
    resnet_basic("resnet-34", [3, 4, 6, 3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, node_cost, LayerClass};

    #[test]
    fn conv_count_matches_architecture() {
        let g = resnet50();
        let convs = g
            .node_ids()
            .filter(|&id| {
                matches!(
                    classify(&g, id),
                    LayerClass::PointwiseConv | LayerClass::RegularConv
                )
            })
            .count();
        // 1 stem + 16 blocks x 3 + 4 projection shortcuts = 53.
        assert_eq!(convs, 53);
    }

    #[test]
    fn total_macs_are_about_4_gmacs() {
        let g = resnet50();
        let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let gmacs = macs as f64 / 1e9;
        assert!((3.5..4.8).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn final_spatial_size_is_7x7() {
        let g = resnet50();
        // Find the GAP input.
        let gap = g
            .node_ids()
            .find(|&id| g.node(id).name.starts_with("gap"))
            .unwrap();
        let in_v = g.node(gap).inputs[0];
        let s = &g.value(in_v).desc.as_ref().unwrap().shape;
        assert_eq!((s.h(), s.w(), s.c()), (7, 7, 2048));
    }

    #[test]
    fn resnet18_and_34_validate_with_expected_macs() {
        let r18 = resnet18();
        r18.validate().unwrap();
        let m18: u64 = r18.node_ids().map(|id| node_cost(&r18, id).macs).sum();
        let g18 = m18 as f64 / 1e9;
        assert!((1.5..2.2).contains(&g18), "ResNet-18 {g18} GMACs");

        let r34 = resnet34();
        let m34: u64 = r34.node_ids().map(|id| node_cost(&r34, id).macs).sum();
        let g34 = m34 as f64 / 1e9;
        assert!((3.2..4.2).contains(&g34), "ResNet-34 {g34} GMACs");
    }

    #[test]
    fn basic_resnets_have_almost_no_pointwise_work() {
        // Unlike ResNet-50's bottlenecks, ResNet-18 is nearly all dense 3x3
        // convs — the GPU-favored end of the spectrum.
        let g = resnet18();
        let p = crate::analysis::profile_model(&g);
        assert!(p.mac_share(LayerClass::PointwiseConv) < 0.05);
    }

    #[test]
    fn has_many_pointwise_layers() {
        // ResNet-50's bottlenecks make 1x1 convs the majority of its convs —
        // the paper's motivation for targeting it with PIM.
        let g = resnet50();
        let pw = g
            .node_ids()
            .filter(|&id| classify(&g, id) == LayerClass::PointwiseConv)
            .count();
        assert!(pw >= 32, "got {pw}");
    }
}
