//! BERT-base-like encoder stack used by the model-type sensitivity study
//! (Fig. 16).
//!
//! The paper evaluates BERT with 1x3 and 1x64 token inputs to show that
//! MD-DP execution of FC layers pays off once the row count grows. Only the
//! FC-dominated datapath matters for that experiment, so the attention
//! score/context matmuls (negligible at seq <= 64: `seq^2 * hidden` MACs vs
//! `seq * hidden^2` for the projections) are approximated by an `Identity`
//! node; every projection and feed-forward layer is a real `Dense` node.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ops::{ActivationKind, SliceAttrs};
use crate::tensor::Shape;

/// Hidden width of the BERT-base-like encoder.
pub const BERT_HIDDEN: usize = 768;
/// Number of encoder layers.
pub const BERT_LAYERS: usize = 12;

/// Builds a BERT-base-like encoder over `seq_len` tokens.
///
/// # Panics
///
/// Panics if `seq_len == 0`.
pub fn bert_like(seq_len: usize) -> Graph {
    assert!(seq_len > 0, "sequence length must be positive");
    let mut b = GraphBuilder::new(format!("bert-{seq_len}"));
    let h = BERT_HIDDEN;
    let x = b.input(Shape::rf(seq_len, h));
    let mut y = x;
    for _ in 0..BERT_LAYERS {
        // Attention projections: Q, K, V fused as one 3h-wide Dense, as in
        // common fused-QKV implementations.
        let qkv = b.dense(y, 3 * h);
        // Attention score + context matmuls, negligible at small seq_len.
        let attn = b.identity(qkv);
        // Keep the "context" third of the fused QKV width so the output
        // projection sees a width-h operand.
        let ctx = b.slice(
            attn,
            SliceAttrs {
                axis: 1,
                begin: 2 * h,
                end: 3 * h,
            },
        );
        let proj = b.dense(ctx, h);
        let res1 = b.add(proj, y);
        // Feed-forward network.
        let ff1 = b.dense(res1, 4 * h);
        let ff1 = b.act(ff1, ActivationKind::Gelu);
        let ff2 = b.dense(ff1, h);
        y = b.add(ff2, res1);
    }
    let logits = b.dense(y, h);
    b.finish(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, node_cost, LayerClass};

    #[test]
    fn twelve_layers_of_dense() {
        let g = bert_like(3);
        let fcs = g
            .node_ids()
            .filter(|&id| classify(&g, id) == LayerClass::Fc)
            .count();
        // 4 Dense per layer x 12 + classifier head.
        assert_eq!(fcs, 4 * BERT_LAYERS + 1);
    }

    #[test]
    fn macs_scale_linearly_with_seq_len() {
        let m3: u64 = {
            let g = bert_like(3);
            g.node_ids().map(|id| node_cost(&g, id).macs).sum()
        };
        let m64: u64 = {
            let g = bert_like(64);
            g.node_ids().map(|id| node_cost(&g, id).macs).sum()
        };
        let ratio = m64 as f64 / m3 as f64;
        assert!((18.0..24.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn validates() {
        bert_like(1).validate().unwrap();
        bert_like(64).validate().unwrap();
    }
}
