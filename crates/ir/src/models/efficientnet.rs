//! EfficientNet-B0 and scaled variants (Tan & Le, ICML 2019).

use super::make_divisible;
use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::ops::ActivationKind;
use crate::tensor::Shape;

/// Compound-scaled EfficientNet variants used in the paper: B0 in the main
/// evaluation, B2/B4/B6 in the model-size sensitivity study (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EfficientNetVariant {
    /// width 1.0, depth 1.0, 224x224.
    B0,
    /// width 1.1, depth 1.2, 260x260.
    B2,
    /// width 1.4, depth 1.8, 380x380.
    B4,
    /// width 1.8, depth 2.6, 528x528.
    B6,
}

impl EfficientNetVariant {
    /// `(width multiplier, depth multiplier, input resolution)`.
    pub fn coefficients(self) -> (f64, f64, usize) {
        match self {
            EfficientNetVariant::B0 => (1.0, 1.0, 224),
            EfficientNetVariant::B2 => (1.1, 1.2, 260),
            EfficientNetVariant::B4 => (1.4, 1.8, 380),
            EfficientNetVariant::B6 => (1.8, 2.6, 528),
        }
    }

    /// Artifact-style model name.
    pub fn name(self) -> &'static str {
        match self {
            EfficientNetVariant::B0 => "efficientnet-v1-b0",
            EfficientNetVariant::B2 => "efficientnet-v1-b2",
            EfficientNetVariant::B4 => "efficientnet-v1-b4",
            EfficientNetVariant::B6 => "efficientnet-v1-b6",
        }
    }
}

/// Squeeze-excite: GAP -> 1x1 reduce -> swish -> 1x1 expand -> sigmoid ->
/// channel-wise scale.
fn squeeze_excite(
    b: &mut GraphBuilder,
    x: ValueId,
    channels: usize,
    se_channels: usize,
) -> ValueId {
    let s = b.gap(x);
    let s = b.conv1x1(s, se_channels);
    let s = b.swish(s);
    let s = b.conv1x1(s, channels);
    let s = b.act(s, ActivationKind::Sigmoid);
    b.mul(x, s)
}

/// MBConv block: 1x1 expand -> DW kxk -> SE -> 1x1 linear project
/// (+ residual when shapes match).
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    x: ValueId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    expand_ratio: usize,
) -> ValueId {
    let hidden = in_channels * expand_ratio;
    let mut y = x;
    if expand_ratio != 1 {
        y = b.conv_act(y, hidden, 1, 1, 0, ActivationKind::Swish);
    }
    y = b.dw_act(y, hidden, kernel, stride, kernel / 2, ActivationKind::Swish);
    let se_channels = (in_channels / 4).max(1);
    y = squeeze_excite(b, y, hidden, se_channels);
    y = b.conv1x1(y, out_channels);
    if stride == 1 && in_channels == out_channels {
        y = b.add(y, x);
    }
    y
}

/// Builds the requested EfficientNet variant for single-batch inference.
///
/// # Examples
///
/// ```
/// use pimflow_ir::models::{efficientnet, EfficientNetVariant};
/// let g = efficientnet(EfficientNetVariant::B0);
/// assert_eq!(g.name, "efficientnet-v1-b0");
/// ```
pub fn efficientnet(variant: EfficientNetVariant) -> Graph {
    let (width, depth, resolution) = variant.coefficients();
    let mut b = GraphBuilder::new(variant.name());
    let scale_c = |c: usize| make_divisible(c as f64 * width, 8);
    let scale_n = |n: usize| (n as f64 * depth).ceil() as usize;

    let x = b.input(Shape::nhwc(1, resolution, resolution, 3));
    let stem = scale_c(32);
    let mut y = b.conv_act(x, stem, 3, 2, 1, ActivationKind::Swish);

    // (expand t, channels c, repeats n, stride s, kernel k) per stage (B0).
    let cfg = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut in_c = stem;
    for (t, c, n, s, k) in cfg {
        let out_c = scale_c(c);
        for i in 0..scale_n(n) {
            let stride = if i == 0 { s } else { 1 };
            y = mbconv(&mut b, y, in_c, out_c, k, stride, t);
            in_c = out_c;
        }
    }

    let head = scale_c(1280);
    let y = b.conv_act(y, head, 1, 1, 0, ActivationKind::Swish);
    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{node_cost, profile_model, LayerClass};

    #[test]
    fn b0_macs_about_400_mmacs() {
        let g = efficientnet(EfficientNetVariant::B0);
        let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let mmacs = macs as f64 / 1e6;
        assert!((350.0..480.0).contains(&mmacs), "got {mmacs} MMACs");
    }

    #[test]
    fn scaling_is_monotonic() {
        let mut prev = 0u64;
        for v in [
            EfficientNetVariant::B0,
            EfficientNetVariant::B2,
            EfficientNetVariant::B4,
            EfficientNetVariant::B6,
        ] {
            let g = efficientnet(v);
            g.validate().unwrap();
            let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
            assert!(macs > prev, "{:?}: {macs} <= {prev}", v);
            prev = macs;
        }
    }

    #[test]
    fn b0_is_pointwise_heavy() {
        let p = profile_model(&efficientnet(EfficientNetVariant::B0));
        assert!(p.mac_share(LayerClass::PointwiseConv) > 0.45);
    }

    #[test]
    fn se_blocks_present() {
        let g = efficientnet(EfficientNetVariant::B0);
        let sigmoids = g
            .node_ids()
            .filter(|&id| {
                matches!(
                    g.node(id).op,
                    crate::ops::Op::Activation(ActivationKind::Sigmoid)
                )
            })
            .count();
        assert_eq!(sigmoids, 16); // one per MBConv block in B0
    }
}
