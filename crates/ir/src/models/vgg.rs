//! VGG-16 (Simonyan & Zisserman, 2014), configuration D.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::tensor::Shape;

/// Builds VGG-16 for 224x224 single-batch inference.
///
/// The three giant FC layers (25088->4096, 4096->4096, 4096->1000) are the
/// classic memory-bound PIM targets; the paper reports VGG-16 gaining an
/// extra 5% end-to-end from FC offload on top of its CONV speedup (§6.1).
pub fn vgg16() -> Graph {
    let mut b = GraphBuilder::new("vgg-16");
    let x = b.input(Shape::nhwc(1, 224, 224, 3));

    // Configuration D: channel count per conv, `0` marks a 2x2 max-pool.
    let cfg = [
        64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
    ];
    let mut y = x;
    for c in cfg {
        if c == 0 {
            y = b.maxpool(y, 2, 2, 0);
        } else {
            y = b.conv(y, c, 3, 1, 1);
            y = b.relu(y);
        }
    }
    let y = b.flatten(y);
    let y = b.dense(y, 4096);
    let y = b.relu(y);
    let y = b.dense(y, 4096);
    let y = b.relu(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, node_cost, LayerClass};
    use crate::ops::Op;

    #[test]
    fn thirteen_convs_three_fcs() {
        let g = vgg16();
        let convs = g
            .node_ids()
            .filter(|&id| matches!(g.node(id).op, Op::Conv2d(_)))
            .count();
        let fcs = g
            .node_ids()
            .filter(|&id| classify(&g, id) == LayerClass::Fc)
            .count();
        assert_eq!((convs, fcs), (13, 3));
    }

    #[test]
    fn total_macs_are_about_15_gmacs() {
        let g = vgg16();
        let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let gmacs = macs as f64 / 1e9;
        assert!((14.0..16.5).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn fc_weights_dominate_fc_traffic() {
        // The first FC holds 25088*4096 ~= 102.8M weights: the archetypal
        // memory-bound layer.
        let g = vgg16();
        let fc0 = g
            .node_ids()
            .find(|&id| classify(&g, id) == LayerClass::Fc)
            .unwrap();
        let c = node_cost(&g, fc0);
        assert_eq!(c.weight_elems, 25088 * 4096);
        assert!(c.arithmetic_intensity() < 1.1);
    }
}
