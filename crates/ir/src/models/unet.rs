//! A U-Net-style encoder/decoder segmentation network (Ronneberger et al.,
//! 2015 — cited by the paper as a core CNN application domain).
//!
//! Not part of the paper's evaluation set; included for the §A.7
//! customization story ("The main execution script can take as input other
//! CNN/DNN models that were not evaluated in the paper and optimize them
//! with PIMFlow"). The decoder's skip-connection concats also give the
//! analysis module a second branchy topology.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::ops::Op;
use crate::tensor::Shape;

fn conv_block(b: &mut GraphBuilder, x: ValueId, channels: usize) -> ValueId {
    let y = b.conv(x, channels, 3, 1, 1);
    let y = b.relu(y);
    let y = b.conv(y, channels, 3, 1, 1);
    b.relu(y)
}

/// Builds a compact U-Net over `resolution`x`resolution` inputs with
/// `base_channels` filters at the top level and `depth` down/up stages.
///
/// # Panics
///
/// Panics if `resolution` is not divisible by `2^depth` or `depth == 0`.
pub fn unet(resolution: usize, base_channels: usize, depth: usize) -> Graph {
    assert!(depth >= 1, "depth must be >= 1");
    assert_eq!(
        resolution % (1 << depth),
        0,
        "resolution must be divisible by 2^depth"
    );
    let mut b = GraphBuilder::new(format!("unet-{resolution}-c{base_channels}-d{depth}"));
    let x = b.input(Shape::nhwc(1, resolution, resolution, 3));

    // Encoder: conv block then 2x2 max-pool per stage, keeping the skips.
    let mut skips: Vec<ValueId> = Vec::with_capacity(depth);
    let mut y = x;
    let mut channels = base_channels;
    for _ in 0..depth {
        y = conv_block(&mut b, y, channels);
        skips.push(y);
        y = b.maxpool(y, 2, 2, 0);
        channels *= 2;
    }

    // Bottleneck.
    y = conv_block(&mut b, y, channels);

    // Decoder: upsample, concat the skip, conv block.
    for skip in skips.into_iter().rev() {
        channels /= 2;
        let up_name = format!("up_{}", b.graph().node_count());
        let up = {
            // GraphBuilder has no upsample helper on purpose (it is not part
            // of the paper's op set); add the node directly.
            let g = b.graph_mut();
            g.add_node(up_name, Op::Upsample { factor: 2 }, vec![y])
        };
        let merged = b.concat(vec![up, skip], 3);
        y = conv_block(&mut b, merged, channels);
    }

    // Per-pixel segmentation head.
    let y = b.conv1x1(y, 2);
    b.finish(y)
}

/// The default configuration used by examples and the customization test:
/// 96x96 input, 16 base channels, 3 stages.
pub fn unet_small() -> Graph {
    unet(96, 16, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independent_node_fraction;

    #[test]
    fn shapes_close_the_loop() {
        let g = unet_small();
        g.validate().unwrap();
        let out = g.value(g.outputs()[0]).desc.as_ref().unwrap();
        assert_eq!(out.shape, Shape::nhwc(1, 96, 96, 2));
    }

    #[test]
    fn skip_connections_do_not_create_inter_node_parallelism() {
        // Counter-intuitive but correct, and exactly the paper's §3 point:
        // although U-Net "branches", every decoder node is reachable from
        // every encoder node (through the bottleneck), so no two nodes are
        // mutually independent. Skips extend *liveness*, not parallelism —
        // PIMFlow must create the parallelism by transformation.
        let frac = independent_node_fraction(&unet_small());
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn skips_extend_liveness() {
        // The structural effect skips do have: encoder activations stay
        // live across the bottleneck, raising peak memory well above a
        // plain chain of the same layers.
        let g = unet_small();
        let peak = crate::analysis::peak_activation_bytes(&g);
        // The three skips alone hold 96x96x16 + 48x48x32 + 24x24x64 f16.
        let skips_bytes = (96 * 96 * 16 + 48 * 48 * 32 + 24 * 24 * 64) * 2;
        assert!(
            peak as usize > skips_bytes,
            "peak {peak} vs skips {skips_bytes}"
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn misaligned_resolution_is_rejected() {
        unet(100, 16, 3);
    }

    #[test]
    fn tiny_unet_executes_numerically() {
        // Keep it minuscule — this runs the reference executor.
        let g = unet(8, 2, 1);
        g.validate().unwrap();
    }
}
