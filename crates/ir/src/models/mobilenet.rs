//! MobileNetV2 (Sandler et al., CVPR 2018).

use super::make_divisible;
use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::ops::ActivationKind;
use crate::tensor::Shape;

/// One inverted residual block: 1x1 expand (t*in) -> DW 3x3 -> 1x1 linear
/// project, with a residual add when the shapes match.
///
/// This is the paper's canonical **1x1–DW–1x1 pipelining pattern** (§4.2.2).
fn inverted_residual(
    b: &mut GraphBuilder,
    x: ValueId,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
    expand_ratio: usize,
) -> ValueId {
    let hidden = in_channels * expand_ratio;
    let mut y = x;
    if expand_ratio != 1 {
        y = b.conv_act(y, hidden, 1, 1, 0, ActivationKind::Relu6);
    }
    y = b.dw_act(y, hidden, 3, stride, 1, ActivationKind::Relu6);
    y = b.conv1x1(y, out_channels);
    if stride == 1 && in_channels == out_channels {
        y = b.add(y, x);
    }
    y
}

/// Builds MobileNetV2 with width multiplier 1.0 for 224x224 inference.
pub fn mobilenet_v2() -> Graph {
    mobilenet_v2_scaled(1.0)
}

/// Builds MobileNetV2 with an arbitrary width multiplier (`alpha`), used by
/// the model-size sensitivity study (Fig. 16).
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn mobilenet_v2_scaled(alpha: f64) -> Graph {
    assert!(alpha > 0.0, "width multiplier must be positive");
    let name = if (alpha - 1.0).abs() < 1e-9 {
        "mobilenet-v2".to_string()
    } else {
        format!("mobilenet-v2-w{alpha:.2}")
    };
    let mut b = GraphBuilder::new(name);
    let scale = |c: usize| make_divisible(c as f64 * alpha, 8);

    let x = b.input(Shape::nhwc(1, 224, 224, 3));
    let stem = scale(32);
    let mut y = b.conv_act(x, stem, 3, 2, 1, ActivationKind::Relu6);

    // (expand t, channels c, repeats n, stride s) per stage.
    let cfg = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_c = stem;
    for (t, c, n, s) in cfg {
        let out_c = scale(c);
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            y = inverted_residual(&mut b, y, in_c, out_c, stride, t);
            in_c = out_c;
        }
    }

    let head = if alpha > 1.0 { scale(1280) } else { 1280 };
    let y = b.conv_act(y, head, 1, 1, 0, ActivationKind::Relu6);
    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 1000);
    b.finish(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, node_cost, LayerClass};

    #[test]
    fn block_counts() {
        let g = mobilenet_v2();
        let dw = g
            .node_ids()
            .filter(|&id| classify(&g, id) == LayerClass::DepthwiseConv)
            .count();
        assert_eq!(dw, 17); // 1+2+3+4+3+3+1 inverted residual blocks
    }

    #[test]
    fn total_macs_about_300_mmacs() {
        let g = mobilenet_v2();
        let macs: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let mmacs = macs as f64 / 1e6;
        assert!((280.0..360.0).contains(&mmacs), "got {mmacs} MMACs");
    }

    #[test]
    fn pointwise_dominates_mac_count() {
        // Fig. 1: 1x1 convs dominate the runtime of mobile CNNs.
        let g = mobilenet_v2();
        let p = crate::analysis::profile_model(&g);
        assert!(p.mac_share(LayerClass::PointwiseConv) > 0.5);
    }

    #[test]
    fn width_scaling_grows_channels() {
        let g = mobilenet_v2_scaled(1.4);
        g.validate().unwrap();
        let macs_14: u64 = g.node_ids().map(|id| node_cost(&g, id).macs).sum();
        let g0 = mobilenet_v2();
        let macs_10: u64 = g0.node_ids().map(|id| node_cost(&g0, id).macs).sum();
        assert!(macs_14 as f64 > 1.5 * macs_10 as f64);
    }
}
