//! Model zoo: programmatic builders for every network evaluated in the paper
//! (§5): EfficientNetB0, MnasNet-1.0, MobileNetV2, ResNet-50, VGG-16, the
//! artifact's Toy network, the BERT-like model of Fig. 16, and scaled
//! variants (EfficientNet-B2/B4/B6, width-scaled MobileNetV2/MnasNet).
//!
//! Architectures are reconstructed from the original papers (the graphs are
//! the input the PIMFlow compiler consumes, standing in for Torchvision ONNX
//! exports).

mod bert;
mod efficientnet;
mod mnasnet;
mod mobilenet;
mod resnet;
mod squeezenet;
mod unet;
mod vgg;

pub use bert::bert_like;
pub use efficientnet::{efficientnet, EfficientNetVariant};
pub use mnasnet::{mnasnet, mnasnet_scaled};
pub use mobilenet::{mobilenet_v2, mobilenet_v2_scaled};
pub use resnet::{resnet18, resnet34, resnet50};
pub use squeezenet::squeezenet;
pub use unet::{unet, unet_small};
pub use vgg::vgg16;

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::tensor::Shape;

/// Rounds a channel count to the nearest multiple of `divisor` (at least
/// `divisor`), the standard "make divisible" rule used by the mobile CNNs.
pub(crate) fn make_divisible(v: f64, divisor: usize) -> usize {
    let d = divisor as f64;
    let new_v = ((v + d / 2.0) / d).floor() * d;
    let new_v = new_v.max(d);
    // Do not round down by more than 10%.
    let new_v = if new_v < 0.9 * v { new_v + d } else { new_v };
    new_v as usize
}

/// The artifact's Toy network: a short pointwise/depthwise stack small
/// enough for fast numerical tests while exercising every transformation
/// (1x1 conv, DW conv, the 1x1–DW–1x1 pipeline pattern, FC).
pub fn toy() -> Graph {
    let mut b = GraphBuilder::new("toy");
    let x = b.input(Shape::nhwc(1, 32, 32, 3));
    let y = b.conv(x, 16, 3, 1, 1);
    let y = b.relu(y);
    let y = b.conv1x1(y, 32);
    let y = b.relu6(y);
    let y = b.dwconv(y, 32, 3, 1, 1);
    let y = b.relu6(y);
    let y = b.conv1x1(y, 64);
    let y = b.relu(y);
    let y = b.gap(y);
    let y = b.flatten(y);
    let y = b.dense(y, 10);
    b.finish(y)
}

/// Artifact network names (`-n <net>` values of the `pimflow` CLI) mapped to
/// builders.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Graph> {
    match name {
        "toy" => Some(toy()),
        "efficientnet-v1-b0" => Some(efficientnet(EfficientNetVariant::B0)),
        "efficientnet-v1-b2" => Some(efficientnet(EfficientNetVariant::B2)),
        "efficientnet-v1-b4" => Some(efficientnet(EfficientNetVariant::B4)),
        "efficientnet-v1-b6" => Some(efficientnet(EfficientNetVariant::B6)),
        "mobilenet-v2" => Some(mobilenet_v2()),
        "mnasnet-1.0" => Some(mnasnet()),
        "resnet-18" => Some(resnet18()),
        "resnet-34" => Some(resnet34()),
        "resnet-50" => Some(resnet50()),
        "vgg-16" => Some(vgg16()),
        "squeezenet-1.1" => Some(squeezenet()),
        "unet-small" => Some(unet_small()),
        "bert-3" => Some(bert_like(3)),
        "bert-64" => Some(bert_like(64)),
        _ => None,
    }
}

/// The five CNN models of the main evaluation (Fig. 9), in paper order.
pub fn evaluated_cnns() -> Vec<Graph> {
    vec![
        efficientnet(EfficientNetVariant::B0),
        mnasnet(),
        mobilenet_v2(),
        resnet50(),
        vgg16(),
    ]
}

/// Names of the five evaluated CNNs, in the same order as
/// [`evaluated_cnns`].
pub fn evaluated_cnn_names() -> Vec<&'static str> {
    vec![
        "efficientnet-v1-b0",
        "mnasnet-1.0",
        "mobilenet-v2",
        "resnet-50",
        "vgg-16",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify, LayerClass};

    #[test]
    fn make_divisible_matches_reference() {
        assert_eq!(make_divisible(32.0, 8), 32);
        assert_eq!(make_divisible(33.6, 8), 32);
        assert_eq!(make_divisible(17.0, 8), 16);
        assert_eq!(make_divisible(8.0 * 0.35, 8), 8);
    }

    #[test]
    fn toy_is_valid_and_small() {
        let g = toy();
        g.validate().unwrap();
        assert!(g.node_count() <= 15);
    }

    #[test]
    fn toy_contains_pipeline_pattern() {
        // 1x1 -> DW -> 1x1 must be present for pipelining tests.
        let g = toy();
        let classes: Vec<LayerClass> = g
            .topo_order()
            .unwrap()
            .into_iter()
            .map(|id| classify(&g, id))
            .filter(|c| *c != LayerClass::Other)
            .collect();
        let w: Vec<LayerClass> = vec![
            LayerClass::PointwiseConv,
            LayerClass::DepthwiseConv,
            LayerClass::PointwiseConv,
        ];
        assert!(
            classes.windows(3).any(|win| win == w.as_slice()),
            "classes: {classes:?}"
        );
    }

    #[test]
    fn by_name_resolves_all_artifact_names() {
        for n in evaluated_cnn_names() {
            assert!(by_name(n).is_some(), "{n}");
        }
        assert!(by_name("toy").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn evaluated_models_validate() {
        for g in evaluated_cnns() {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
            // Every evaluated model ends in a classifier over 1000 classes.
            let out = g.outputs()[0];
            let shape = &g.value(out).desc.as_ref().unwrap().shape;
            assert_eq!(shape.c(), 1000, "{}", g.name);
        }
    }
}
