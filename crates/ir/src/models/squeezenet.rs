//! SqueezeNet 1.1 (Iandola et al., 2016).
//!
//! Not part of the paper's evaluation set, but its fire modules have real
//! branch-level parallelism (parallel 1x1/3x3 expands joined by a concat),
//! which makes it the interesting data point for the §3 preliminary
//! analysis: even "branchy" CNNs expose only limited inter-node parallelism
//! compared to what MD-DP/pipelining can create.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, ValueId};
use crate::tensor::Shape;

/// Fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> channel concat.
fn fire(b: &mut GraphBuilder, x: ValueId, squeeze: usize, expand: usize) -> ValueId {
    let s = b.conv1x1(x, squeeze);
    let s = b.relu(s);
    let e1 = b.conv1x1(s, expand);
    let e1 = b.relu(e1);
    let e3 = b.conv(s, expand, 3, 1, 1);
    let e3 = b.relu(e3);
    b.concat(vec![e1, e3], 3)
}

/// Builds SqueezeNet 1.1 for 224x224 single-batch inference.
pub fn squeezenet() -> Graph {
    let mut b = GraphBuilder::new("squeezenet-1.1");
    let x = b.input(Shape::nhwc(1, 224, 224, 3));
    let y = b.conv(x, 64, 3, 2, 0);
    let y = b.relu(y);
    let mut y = b.maxpool(y, 3, 2, 0);
    for (i, (s, e)) in [
        (16, 64),
        (16, 64),
        (32, 128),
        (32, 128),
        (48, 192),
        (48, 192),
        (64, 256),
        (64, 256),
    ]
    .into_iter()
    .enumerate()
    {
        y = fire(&mut b, y, s, e);
        if i == 1 || i == 3 {
            y = b.maxpool(y, 3, 2, 0);
        }
    }
    let y = b.conv1x1(y, 1000);
    let y = b.relu(y);
    let y = b.gap(y);
    b.finish(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independent_node_fraction;

    #[test]
    fn validates_and_classifies() {
        let g = squeezenet();
        g.validate().unwrap();
        let out = g.value(g.outputs()[0]).desc.as_ref().unwrap();
        assert_eq!(out.shape.c(), 1000);
    }

    #[test]
    fn fire_modules_expose_inter_node_parallelism() {
        // The expand 1x1 / expand 3x3 pairs are mutually independent —
        // SqueezeNet is the branchy counter-example to the straight-line
        // mobile CNNs (§3 observation 1).
        let g = squeezenet();
        let frac = independent_node_fraction(&g);
        assert!(
            frac > 0.3,
            "fire branches should be independent, got {frac}"
        );
    }

    #[test]
    fn straight_line_models_have_less_parallelism_than_squeezenet() {
        let sq = independent_node_fraction(&squeezenet());
        let vgg = independent_node_fraction(&crate::models::vgg16());
        assert!(vgg < sq);
        assert_eq!(vgg, 0.0, "VGG is a pure chain");
    }
}
