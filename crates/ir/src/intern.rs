//! A generic value interner: maps equal values to small dense `u32` ids.
//!
//! The cost-cache layer in the `pimflow` core crate interns canonical
//! workload keys so that per-search memo shards and the shared cross-search
//! table can refer to workloads by a compact id instead of re-hashing the
//! full key on every secondary lookup. The interner is deliberately
//! append-only — ids are never invalidated — which is what makes snapshots
//! of an interned table safe to share across worker threads.

use std::collections::HashMap;
use std::hash::Hash;

/// An append-only map from values to dense `u32` ids.
///
/// Ids are assigned in first-insertion order starting at `0`, so they can
/// double as indices into a parallel `Vec` of associated data.
///
/// ## Example
///
/// ```
/// use pimflow_ir::intern::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("conv3x3");
/// let b = i.intern("conv1x1");
/// assert_eq!(i.intern("conv3x3"), a, "re-interning is idempotent");
/// assert_ne!(a, b);
/// assert_eq!(i.resolve(b), &"conv1x1");
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T> {
    ids: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Returns the id of `value`, inserting it if unseen.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("interner overflow");
        self.items.push(value.clone());
        self.ids.insert(value, id);
        id
    }

    /// Returns the id of `value` without inserting, or `None` if unseen.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.ids.get(value).copied()
    }

    /// Returns the value interned under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this interner.
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let ids: Vec<u32> = (0..10).map(|n| i.intern(n * 7)).collect();
        assert_eq!(
            ids,
            (0..10).collect::<Vec<u32>>(),
            "dense first-insertion order"
        );
        assert_eq!(i.len(), 10);
        // Re-interning returns the original id and does not grow the table.
        assert_eq!(i.intern(21), 3);
        assert_eq!(i.len(), 10);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get(&"x"), None);
        assert!(i.is_empty());
        let id = i.intern("x");
        assert_eq!(i.get(&"x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        for s in ["a", "b", "c"] {
            let id = i.intern(s);
            assert_eq!(i.resolve(id), &s);
        }
    }
}
