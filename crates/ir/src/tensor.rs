//! Tensor shapes and element types.
//!
//! All activation tensors in this workspace follow the paper's **NHWC**
//! (channels-last) convention: the paper assumes NHWC "as it guarantees
//! contiguous memory access in the channel dimension" (§2.2), and the memory
//! layout optimizer (§4.3.2) relies on H-dimension slices of NHWC tensors
//! being contiguous.

use pimflow_json::{json_struct, json_unit_enum, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Element type of a tensor.
///
/// The Newton-style DRAM-PIM MAC units operate on 16-bit floating point
/// values (16 multipliers fed by a 256-bit column I/O), so [`DataType::F16`]
/// is the default for PIM-offloadable tensors. The reference executor
/// computes in f32 regardless; `DataType` only affects *byte* accounting in
/// the performance models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 16-bit IEEE float (PIM-native).
    #[default]
    F16,
    /// 32-bit IEEE float.
    F32,
    /// 8-bit signed integer.
    I8,
}

impl DataType {
    /// Size of one element in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pimflow_ir::DataType;
    /// assert_eq!(DataType::F16.size_bytes(), 2);
    /// ```
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::F16 => 2,
            DataType::F32 => 4,
            DataType::I8 => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::F16 => write!(f, "f16"),
            DataType::F32 => write!(f, "f32"),
            DataType::I8 => write!(f, "i8"),
        }
    }
}

/// A tensor shape: a list of dimension extents.
///
/// 4-D shapes are interpreted as NHWC; 2-D shapes as `[rows, features]`
/// (the form consumed by [`crate::ops::Op::Dense`]).
///
/// # Examples
///
/// ```
/// use pimflow_ir::Shape;
/// let s = Shape::nhwc(1, 56, 56, 64);
/// assert_eq!(s.numel(), 56 * 56 * 64);
/// assert_eq!(s.c(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from raw dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a 4-D NHWC shape.
    pub fn nhwc(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape(vec![n, h, w, c])
    }

    /// Creates a 2-D `[rows, features]` shape.
    pub fn rf(rows: usize, features: usize) -> Self {
        Shape(vec![rows, features])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Batch dimension of a 4-D (or 2-D) shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is 0-dimensional.
    pub fn n(&self) -> usize {
        self.0[0]
    }

    /// Height of a 4-D NHWC shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn h(&self) -> usize {
        assert_eq!(self.rank(), 4, "h() requires an NHWC shape, got {self}");
        self.0[1]
    }

    /// Width of a 4-D NHWC shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 4-D.
    pub fn w(&self) -> usize {
        assert_eq!(self.rank(), 4, "w() requires an NHWC shape, got {self}");
        self.0[2]
    }

    /// Channel count: the last dimension.
    ///
    /// # Panics
    ///
    /// Panics if the shape is 0-dimensional.
    pub fn c(&self) -> usize {
        *self.0.last().expect("c() requires a non-empty shape")
    }

    /// Dimension extent at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Returns a copy with `axis` replaced by `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn with_dim(&self, axis: usize, extent: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = extent;
        Shape(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Full description of a tensor: shape plus element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorDesc {
    /// Dimension extents.
    pub shape: Shape,
    /// Element type.
    pub dtype: DataType,
}

impl TensorDesc {
    /// Creates a descriptor.
    pub fn new(shape: Shape, dtype: DataType) -> Self {
        TensorDesc { shape, dtype }
    }

    /// Total size of the tensor in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pimflow_ir::{DataType, Shape, TensorDesc};
    /// let d = TensorDesc::new(Shape::rf(1, 1000), DataType::F16);
    /// assert_eq!(d.size_bytes(), 2000);
    /// ```
    pub fn size_bytes(&self) -> usize {
        self.shape.numel() * self.dtype.size_bytes()
    }
}

impl fmt::Display for TensorDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.shape, self.dtype)
    }
}

json_unit_enum!(DataType { F16, F32, I8 });
json_struct!(TensorDesc { shape, dtype });

impl ToJson for Shape {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Shape {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Vec::<usize>::from_json(json).map(Shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::F16.size_bytes(), 2);
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::I8.size_bytes(), 1);
    }

    #[test]
    fn nhwc_accessors() {
        let s = Shape::nhwc(2, 14, 7, 320);
        assert_eq!(s.n(), 2);
        assert_eq!(s.h(), 14);
        assert_eq!(s.w(), 7);
        assert_eq!(s.c(), 320);
        assert_eq!(s.numel(), 2 * 14 * 7 * 320);
        assert_eq!(s.rank(), 4);
    }

    #[test]
    fn rf_accessors() {
        let s = Shape::rf(3, 768);
        assert_eq!(s.n(), 3);
        assert_eq!(s.c(), 768);
        assert_eq!(s.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "NHWC")]
    fn h_panics_on_2d() {
        Shape::rf(1, 10).h();
    }

    #[test]
    fn with_dim_replaces_one_axis() {
        let s = Shape::nhwc(1, 8, 8, 16).with_dim(1, 4);
        assert_eq!(s, Shape::nhwc(1, 4, 8, 16));
    }

    #[test]
    fn desc_bytes() {
        let d = TensorDesc::new(Shape::nhwc(1, 4, 4, 8), DataType::F32);
        assert_eq!(d.size_bytes(), 4 * 4 * 8 * 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::nhwc(1, 2, 3, 4).to_string(), "[1x2x3x4]");
        let d = TensorDesc::new(Shape::rf(1, 10), DataType::F16);
        assert_eq!(d.to_string(), "[1x10]f16");
    }
}
