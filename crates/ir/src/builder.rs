//! Ergonomic graph construction for the model zoo.

use crate::graph::{Graph, ValueId};
use crate::ops::{
    ActivationKind, ConcatAttrs, Conv2dAttrs, DenseAttrs, Hw, Op, PadAttrs, PoolAttrs, PoolKind,
    SliceAttrs,
};
use crate::tensor::{DataType, Shape};

/// Builder that wraps a [`Graph`] with auto-named convenience constructors.
///
/// # Examples
///
/// ```
/// use pimflow_ir::{GraphBuilder, Shape};
///
/// let mut b = GraphBuilder::new("demo");
/// let x = b.input(Shape::nhwc(1, 32, 32, 3));
/// let y = b.conv(x, 16, 3, 1, 1);
/// let y = b.relu(y);
/// let g = b.finish(y);
/// assert_eq!(g.node_count(), 2);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    counter: usize,
    dtype: DataType,
}

impl GraphBuilder {
    /// Creates a builder for a graph named `name` with f16 tensors.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            counter: 0,
            dtype: DataType::F16,
        }
    }

    fn next_name(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}_{n}")
    }

    /// Adds a graph input.
    pub fn input(&mut self, shape: Shape) -> ValueId {
        let name = self.next_name("input");
        self.graph.add_input(name, shape, self.dtype)
    }

    /// Regular convolution: square kernel `k`, stride `s`, padding `p`.
    pub fn conv(
        &mut self,
        x: ValueId,
        out_channels: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> ValueId {
        let name = self.next_name("conv");
        self.graph.add_node(
            name,
            Op::Conv2d(Conv2dAttrs {
                out_channels,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: 1,
            }),
            vec![x],
        )
    }

    /// Pointwise (1x1) convolution.
    pub fn conv1x1(&mut self, x: ValueId, out_channels: usize) -> ValueId {
        self.conv(x, out_channels, 1, 1, 0)
    }

    /// Depthwise convolution over `channels` channels.
    pub fn dwconv(&mut self, x: ValueId, channels: usize, k: usize, s: usize, p: usize) -> ValueId {
        let name = self.next_name("dwconv");
        self.graph.add_node(
            name,
            Op::Conv2d(Conv2dAttrs {
                out_channels: channels,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: channels,
            }),
            vec![x],
        )
    }

    /// Fully-connected layer.
    pub fn dense(&mut self, x: ValueId, out_features: usize) -> ValueId {
        let name = self.next_name("fc");
        self.graph
            .add_node(name, Op::Dense(DenseAttrs { out_features }), vec![x])
    }

    /// Inference-mode batch normalization.
    pub fn bn(&mut self, x: ValueId) -> ValueId {
        let name = self.next_name("bn");
        self.graph.add_node(name, Op::BatchNorm, vec![x])
    }

    /// Unary activation.
    pub fn act(&mut self, x: ValueId, kind: ActivationKind) -> ValueId {
        let name = self.next_name(Op::Activation(kind).mnemonic());
        self.graph.add_node(name, Op::Activation(kind), vec![x])
    }

    /// ReLU.
    pub fn relu(&mut self, x: ValueId) -> ValueId {
        self.act(x, ActivationKind::Relu)
    }

    /// ReLU6.
    pub fn relu6(&mut self, x: ValueId) -> ValueId {
        self.act(x, ActivationKind::Relu6)
    }

    /// Swish (SiLU).
    pub fn swish(&mut self, x: ValueId) -> ValueId {
        self.act(x, ActivationKind::Swish)
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let name = self.next_name("add");
        self.graph.add_node(name, Op::Add, vec![a, b])
    }

    /// Element-wise multiplication (supports `[N,1,1,C]` broadcast).
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let name = self.next_name("mul");
        self.graph.add_node(name, Op::Mul, vec![a, b])
    }

    /// Max pooling.
    pub fn maxpool(&mut self, x: ValueId, k: usize, s: usize, p: usize) -> ValueId {
        let name = self.next_name("maxpool");
        self.graph.add_node(
            name,
            Op::Pool(PoolAttrs {
                kind: PoolKind::Max,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
            }),
            vec![x],
        )
    }

    /// Average pooling.
    pub fn avgpool(&mut self, x: ValueId, k: usize, s: usize, p: usize) -> ValueId {
        let name = self.next_name("avgpool");
        self.graph.add_node(
            name,
            Op::Pool(PoolAttrs {
                kind: PoolKind::Avg,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
            }),
            vec![x],
        )
    }

    /// Global average pooling.
    pub fn gap(&mut self, x: ValueId) -> ValueId {
        let name = self.next_name("gap");
        self.graph.add_node(name, Op::GlobalAvgPool, vec![x])
    }

    /// Flatten to 2-D.
    pub fn flatten(&mut self, x: ValueId) -> ValueId {
        let name = self.next_name("flatten");
        self.graph.add_node(name, Op::Flatten, vec![x])
    }

    /// Zero padding.
    pub fn pad(&mut self, x: ValueId, attrs: PadAttrs) -> ValueId {
        let name = self.next_name("pad");
        self.graph.add_node(name, Op::Pad(attrs), vec![x])
    }

    /// Single-axis slice.
    pub fn slice(&mut self, x: ValueId, attrs: SliceAttrs) -> ValueId {
        let name = self.next_name("slice");
        self.graph.add_node(name, Op::Slice(attrs), vec![x])
    }

    /// Concatenation.
    pub fn concat(&mut self, inputs: Vec<ValueId>, axis: usize) -> ValueId {
        let name = self.next_name("concat");
        self.graph
            .add_node(name, Op::Concat(ConcatAttrs { axis }), inputs)
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, x: ValueId) -> ValueId {
        self.act(x, ActivationKind::Softmax)
    }

    /// Pass-through node (used to stand in for operators outside the op set,
    /// e.g. the negligible attention matmuls of the BERT-like model).
    pub fn identity(&mut self, x: ValueId) -> ValueId {
        let name = self.next_name("id");
        self.graph.add_node(name, Op::Identity, vec![x])
    }

    /// Conv → activation, the deployed form of the conv/BN/act block:
    /// inference graphs arrive with batch norm folded into the convolution
    /// weights (standard ONNX/TVM simplification), so the model zoo emits
    /// no BN nodes.
    pub fn conv_act(
        &mut self,
        x: ValueId,
        out_channels: usize,
        k: usize,
        s: usize,
        p: usize,
        act: ActivationKind,
    ) -> ValueId {
        let y = self.conv(x, out_channels, k, s, p);
        self.act(y, act)
    }

    /// DW-Conv → activation (batch norm folded, see [`GraphBuilder::conv_act`]).
    pub fn dw_act(
        &mut self,
        x: ValueId,
        channels: usize,
        k: usize,
        s: usize,
        p: usize,
        act: ActivationKind,
    ) -> ValueId {
        let y = self.dwconv(x, channels, k, s, p);
        self.act(y, act)
    }

    /// Conv → BN → activation, the unfused training-time block (kept for
    /// transformation tests; the model zoo uses [`GraphBuilder::conv_act`]).
    pub fn conv_bn_act(
        &mut self,
        x: ValueId,
        out_channels: usize,
        k: usize,
        s: usize,
        p: usize,
        act: ActivationKind,
    ) -> ValueId {
        let y = self.conv(x, out_channels, k, s, p);
        let y = self.bn(y);
        self.act(y, act)
    }

    /// DW-Conv → BN → activation.
    pub fn dw_bn_act(
        &mut self,
        x: ValueId,
        channels: usize,
        k: usize,
        s: usize,
        p: usize,
        act: ActivationKind,
    ) -> ValueId {
        let y = self.dwconv(x, channels, k, s, p);
        let y = self.bn(y);
        self.act(y, act)
    }

    /// Marks `output` as the graph output, runs shape inference, and returns
    /// the finished graph.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph fails validation or shape inference —
    /// model-zoo construction bugs should fail loudly.
    pub fn finish(mut self, output: ValueId) -> Graph {
        self.graph.mark_output(output);
        crate::shape_infer::infer_shapes(&mut self.graph)
            .expect("model zoo graph must be well-formed");
        self.graph
    }

    /// Access to the underlying graph during construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph — the escape hatch for adding
    /// operators the builder has no helper for (e.g. `Upsample` in the
    /// U-Net model).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_names_are_unique() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 3));
        let a = b.conv1x1(x, 4);
        let c = b.conv1x1(a, 4);
        let g = b.finish(c);
        let mut names: Vec<String> = g.node_ids().map(|id| g.node(id).name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), g.node_count());
    }

    #[test]
    fn conv_bn_act_block_adds_three_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 3));
        let y = b.conv_bn_act(x, 8, 3, 1, 1, ActivationKind::Relu);
        let g = b.finish(y);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn finish_runs_shape_inference() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 3));
        let y = b.gap(x);
        let g = b.finish(y);
        let out = g.outputs()[0];
        assert_eq!(
            g.value(out).desc.as_ref().unwrap().shape,
            Shape::nhwc(1, 1, 1, 3)
        );
    }
}
