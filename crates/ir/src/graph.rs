//! The model graph: a DAG of operator nodes over tensor values.
//!
//! This plays the role of the ONNX protobuf graph in the original PIMFlow
//! artifact. Transformation passes edit the graph in place: nodes can be
//! added, removed (tombstoned), and uses of a value can be rewired, which is
//! exactly the vocabulary the multi-device parallelization and pipelining
//! passes (§4.2.1) need.

use crate::ops::Op;
use crate::tensor::{DataType, Shape, TensorDesc};
use pimflow_json::{json_struct, FromJson, Json, JsonError, ToJson};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Identifier of a tensor value within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) usize);

impl ValueId {
    /// Raw index (stable for the lifetime of the graph).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (stable for the lifetime of the graph).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A tensor value: either a graph input or the output of exactly one node.
#[derive(Debug, Clone)]
pub struct Value {
    /// Human-readable name.
    pub name: String,
    /// Shape and dtype, filled in by [`crate::shape_infer::infer_shapes`].
    pub desc: Option<TensorDesc>,
    /// Producing node, if any (graph inputs have none).
    pub producer: Option<NodeId>,
}

/// A window into a node's original parameter tensor along the output
/// (channel/feature) axis.
///
/// When a pass splits a CONV/FC node along its *output* dimension, each part
/// must see the matching **columns** of the original weight matrix, not
/// freshly generated weights of the smaller shape. The executor regenerates
/// the full `[.., orig_out]` parameters from the weight key and then keeps
/// columns `begin..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamView {
    /// Output width of the original (unsplit) node.
    pub orig_out: usize,
    /// First output column this part owns.
    pub begin: usize,
    /// One past the last output column this part owns.
    pub end: usize,
}

impl ParamView {
    /// Number of output columns in the view.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True if the view selects no columns.
    pub fn is_empty(&self) -> bool {
        self.end <= self.begin
    }
}

/// An operator node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// The operator.
    pub op: Op,
    /// Input values, in operator order.
    pub inputs: Vec<ValueId>,
    /// The single output value.
    pub output: ValueId,
    /// Deterministic seed for this node's parameters (weights/bias).
    ///
    /// Transformation passes that split a node **clone** this key so both
    /// halves regenerate identical weights — the property the numerical
    /// equivalence tests rely on.
    pub weight_key: u64,
    /// Output-axis window into the original parameters, set by passes that
    /// split a node along its output dimension (see [`ParamView`]).
    pub param_view: Option<ParamView>,
}

/// Errors returned by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a cycle (node named by the field is on it).
    Cycle(String),
    /// A node received the wrong number of inputs.
    Arity {
        /// Offending node name.
        node: String,
        /// Expected input count (`None` = at least 2).
        expected: Option<usize>,
        /// Actual input count.
        actual: usize,
    },
    /// Shapes are inconsistent with the operator semantics.
    Shape {
        /// Offending node name.
        node: String,
        /// Description of the problem.
        message: String,
    },
    /// A referenced value or node does not exist (or was removed).
    Dangling(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(n) => write!(f, "graph contains a cycle through node `{n}`"),
            GraphError::Arity {
                node,
                expected,
                actual,
            } => match expected {
                Some(e) => write!(f, "node `{node}` expects {e} inputs, got {actual}"),
                None => write!(f, "node `{node}` expects at least 2 inputs, got {actual}"),
            },
            GraphError::Shape { node, message } => {
                write!(f, "shape error at node `{node}`: {message}")
            }
            GraphError::Dangling(what) => write!(f, "dangling reference: {what}"),
        }
    }
}

impl Error for GraphError {}

/// A directed acyclic graph of operator nodes.
///
/// # Examples
///
/// ```
/// use pimflow_ir::{Graph, Op, Conv2dAttrs, Shape, DataType};
///
/// let mut g = Graph::new("tiny");
/// let x = g.add_input("x", Shape::nhwc(1, 8, 8, 3), DataType::F16);
/// let y = g.add_node("conv0", Op::Conv2d(Conv2dAttrs::pointwise(16)), vec![x]);
/// g.mark_output(y);
/// pimflow_ir::infer_shapes(&mut g).unwrap();
/// assert_eq!(g.value(y).desc.as_ref().unwrap().shape, Shape::nhwc(1, 8, 8, 16));
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    /// Model name (e.g. `"mobilenet-v2"`).
    pub name: String,
    values: Vec<Value>,
    nodes: Vec<Option<Node>>,
    inputs: Vec<ValueId>,
    outputs: Vec<ValueId>,
    next_weight_key: u64,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            values: Vec::new(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            next_weight_key: 1,
        }
    }

    /// Adds a graph input value.
    pub fn add_input(&mut self, name: impl Into<String>, shape: Shape, dtype: DataType) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(Value {
            name: name.into(),
            desc: Some(TensorDesc::new(shape, dtype)),
            producer: None,
        });
        self.inputs.push(id);
        id
    }

    /// Adds a node with a fresh weight key; returns its output value.
    pub fn add_node(&mut self, name: impl Into<String>, op: Op, inputs: Vec<ValueId>) -> ValueId {
        let key = self.next_weight_key;
        self.next_weight_key += 1;
        self.add_node_with_key(name, op, inputs, key)
    }

    /// Adds a node with an explicit weight key (used by passes that split a
    /// node and must preserve its parameters); returns its output value.
    pub fn add_node_with_key(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: Vec<ValueId>,
        weight_key: u64,
    ) -> ValueId {
        let name = name.into();
        let node_id = NodeId(self.nodes.len());
        let out_id = ValueId(self.values.len());
        self.values.push(Value {
            name: format!("{name}.out"),
            desc: None,
            producer: Some(node_id),
        });
        self.nodes.push(Some(Node {
            name,
            op,
            inputs,
            output: out_id,
            weight_key,
            param_view: None,
        }));
        self.next_weight_key = self.next_weight_key.max(weight_key + 1);
        out_id
    }

    /// Marks a value as a graph output.
    pub fn mark_output(&mut self, v: ValueId) {
        self.outputs.push(v);
    }

    /// Replaces the graph output `old` with `new` (used when a pass rewrites
    /// the final node of the graph).
    pub fn replace_output(&mut self, old: ValueId, new: ValueId) {
        for o in &mut self.outputs {
            if *o == old {
                *o = new;
            }
        }
    }

    /// Graph inputs.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Graph outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// The value record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.0]
    }

    /// Mutable value record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn value_mut(&mut self, id: ValueId) -> &mut Value {
        &mut self.values[id.0]
    }

    /// The node record for `id`, or `None` if the node was removed.
    pub fn try_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0).and_then(|n| n.as_ref())
    }

    /// The node record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or was removed.
    pub fn node(&self, id: NodeId) -> &Node {
        self.try_node(id)
            .expect("node was removed or never existed")
    }

    /// Mutable node record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or was removed.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.0]
            .as_mut()
            .expect("node was removed or never existed")
    }

    /// Removes a node, leaving its output value dangling. Callers must
    /// rewire consumers of the output first (see [`Graph::replace_uses`]).
    pub fn remove_node(&mut self, id: NodeId) {
        self.nodes[id.0] = None;
    }

    /// Iterates over live node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId(i)))
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of values (including dangling ones).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Rewires every use of `old` (as a node input or graph output) to `new`.
    pub fn replace_uses(&mut self, old: ValueId, new: ValueId) {
        for node in self.nodes.iter_mut().flatten() {
            for input in &mut node.inputs {
                if *input == old {
                    *input = new;
                }
            }
        }
        self.replace_output(old, new);
    }

    /// Nodes that consume `v` as an input.
    pub fn consumers(&self, v: ValueId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).inputs.contains(&v))
            .collect()
    }

    /// The node producing `v`, if `v` is not a graph input and its producer
    /// is still live.
    pub fn producer(&self, v: ValueId) -> Option<NodeId> {
        self.value(v)
            .producer
            .filter(|&id| self.try_node(id).is_some())
    }

    /// Live predecessor nodes of `id` (producers of its inputs),
    /// deduplicated — a node consuming the same value twice (or two values
    /// of one producer) lists that producer once, keeping edge counts
    /// consistent with [`Graph::successors`] for topological sorting.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        let mut preds: Vec<NodeId> = self
            .node(id)
            .inputs
            .iter()
            .filter_map(|&v| self.producer(v))
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Live successor nodes of `id` (consumers of its output).
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.consumers(self.node(id).output)
    }

    /// Kahn topological order over live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        for id in self.node_ids() {
            indegree.insert(id, self.predecessors(id).len());
        }
        let mut queue: VecDeque<NodeId> = indegree
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut sorted: Vec<NodeId> = Vec::with_capacity(indegree.len());
        // Deterministic order: smallest id first among ready nodes.
        let mut ready: Vec<NodeId> = queue.drain(..).collect();
        ready.sort();
        let mut ready: VecDeque<NodeId> = ready.into();
        while let Some(id) = ready.pop_front() {
            sorted.push(id);
            let mut unlocked = Vec::new();
            for succ in self.successors(id) {
                let d = indegree.get_mut(&succ).expect("successor tracked");
                *d -= 1;
                if *d == 0 {
                    unlocked.push(succ);
                }
            }
            unlocked.sort();
            for u in unlocked {
                ready.push_back(u);
            }
        }
        if sorted.len() != indegree.len() {
            let stuck = indegree
                .iter()
                .find(|&(id, _)| !sorted.contains(id))
                .map(|(&id, _)| self.node(id).name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(sorted)
    }

    /// Structural validation: arities, acyclicity, live references.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for id in self.node_ids() {
            let node = self.node(id);
            let actual = node.inputs.len();
            match node.op.arity() {
                Some(e) if actual != e => {
                    return Err(GraphError::Arity {
                        node: node.name.clone(),
                        expected: Some(e),
                        actual,
                    })
                }
                None if actual < 2 => {
                    return Err(GraphError::Arity {
                        node: node.name.clone(),
                        expected: None,
                        actual,
                    })
                }
                _ => {}
            }
            for &v in &node.inputs {
                if v.0 >= self.values.len() {
                    return Err(GraphError::Dangling(format!(
                        "node `{}` reads value #{}",
                        node.name, v.0
                    )));
                }
                // An input must be a graph input or have a live producer.
                let val = self.value(v);
                if val.producer.is_some() && self.producer(v).is_none() {
                    return Err(GraphError::Dangling(format!(
                        "node `{}` reads output of a removed node (value `{}`)",
                        node.name, val.name
                    )));
                }
            }
        }
        for &o in &self.outputs {
            if o.0 >= self.values.len() {
                return Err(GraphError::Dangling(format!("graph output #{}", o.0)));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Input channels seen by `id` (the channel dim of its first input), or
    /// 0 if shapes have not been inferred.
    pub fn in_channels(&self, id: NodeId) -> usize {
        self.node(id)
            .inputs
            .first()
            .and_then(|&v| self.value(v).desc.as_ref())
            .map(|d| d.shape.c())
            .unwrap_or(0)
    }

    /// True if node `id` is a PIM offload candidate (FC or non-depthwise
    /// CONV, §4.2.1). Requires shapes to be inferred.
    pub fn is_pim_candidate(&self, id: NodeId) -> bool {
        self.node(id).op.is_pim_candidate_for(self.in_channels(id))
    }

    /// Finds a live node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|&id| self.node(id).name == name)
    }
}

impl ToJson for ValueId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for ValueId {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        usize::from_json(json).map(ValueId)
    }
}

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for NodeId {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        usize::from_json(json).map(NodeId)
    }
}

json_struct!(Value {
    name,
    desc,
    producer
});
json_struct!(ParamView {
    orig_out,
    begin,
    end
});
json_struct!(Node {
    name,
    op,
    inputs,
    output,
    weight_key,
    param_view
});
json_struct!(Graph {
    name,
    values,
    nodes,
    inputs,
    outputs,
    next_weight_key
});

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph {} ({} nodes)", self.name, self.node_count())?;
        let order = self.topo_order().map_err(|_| fmt::Error)?;
        for id in order {
            let n = self.node(id);
            let shape = self
                .value(n.output)
                .desc
                .as_ref()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "?".into());
            writeln!(f, "  {:<28} {:<36} -> {}", n.name, n.op.to_string(), shape)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ConcatAttrs, Conv2dAttrs};

    fn diamond() -> Graph {
        let mut g = Graph::new("diamond");
        let x = g.add_input("x", Shape::nhwc(1, 4, 4, 2), DataType::F16);
        let a = g.add_node("a", Op::Conv2d(Conv2dAttrs::pointwise(4)), vec![x]);
        let b = g.add_node(
            "b",
            Op::Activation(crate::ops::ActivationKind::Relu),
            vec![a],
        );
        let c = g.add_node(
            "c",
            Op::Activation(crate::ops::ActivationKind::Relu),
            vec![a],
        );
        let d = g.add_node("d", Op::Add, vec![b, c]);
        g.mark_output(d);
        g
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in g.node_ids() {
            for p in g.predecessors(id) {
                assert!(pos[&p] < pos[&id], "{:?} before {:?}", p, id);
            }
        }
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn validate_accepts_diamond() {
        diamond().validate().unwrap();
    }

    #[test]
    fn arity_error_detected() {
        let mut g = Graph::new("bad");
        let x = g.add_input("x", Shape::rf(1, 4), DataType::F16);
        let y = g.add_node("add", Op::Add, vec![x]);
        g.mark_output(y);
        assert!(matches!(g.validate(), Err(GraphError::Arity { .. })));
    }

    #[test]
    fn removing_producer_is_detected() {
        let mut g = diamond();
        let a = g.find_node("a").unwrap();
        g.remove_node(a);
        assert!(matches!(g.validate(), Err(GraphError::Dangling(_))));
    }

    #[test]
    fn replace_uses_rewires_consumers_and_outputs() {
        let mut g = diamond();
        let a = g.find_node("a").unwrap();
        let a_out = g.node(a).output;
        let x = g.inputs()[0];
        g.replace_uses(a_out, x);
        g.remove_node(a);
        g.validate().unwrap();
        let b = g.find_node("b").unwrap();
        assert_eq!(g.node(b).inputs, vec![x]);
    }

    #[test]
    fn consumers_and_successors() {
        let g = diamond();
        let a = g.find_node("a").unwrap();
        let succ = g.successors(a);
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn concat_requires_two_inputs() {
        let mut g = Graph::new("c");
        let x = g.add_input("x", Shape::nhwc(1, 2, 2, 2), DataType::F16);
        let y = g.add_node("cat", Op::Concat(ConcatAttrs { axis: 1 }), vec![x]);
        g.mark_output(y);
        assert!(matches!(
            g.validate(),
            Err(GraphError::Arity {
                expected: None,
                actual: 1,
                ..
            })
        ));
    }

    #[test]
    fn weight_keys_are_unique_by_default() {
        let g = diamond();
        let mut keys: Vec<u64> = g.node_ids().map(|id| g.node(id).weight_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn display_contains_node_names() {
        let mut g = diamond();
        crate::shape_infer::infer_shapes(&mut g).unwrap();
        let s = g.to_string();
        assert!(s.contains("diamond"));
        assert!(s.contains("conv1x1"));
    }
}
