//! Graph interchange: JSON serialization (the role of ONNX files in the
//! original artifact) and Graphviz DOT export for visual inspection of
//! transformed graphs.

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

impl Graph {
    /// Serializes the graph (structure, shapes, weight keys, parameter
    /// views) to JSON. The inverse of [`Graph::from_json`].
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` is kept so callers are ready
    /// for stricter formats later.
    pub fn to_json(&self) -> Result<String, pimflow_json::JsonError> {
        Ok(pimflow_json::to_string_pretty(self))
    }

    /// Deserializes a graph previously produced by [`Graph::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`pimflow_json::JsonError`] on malformed input.
    pub fn from_json(json: &str) -> Result<Graph, pimflow_json::JsonError> {
        pimflow_json::from_str(json)
    }

    /// Renders the graph in Graphviz DOT format. PIM-offloaded nodes
    /// (`pim::` name prefix) are drawn as filled boxes so device placement
    /// is visible at a glance.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for (i, &input) in self.inputs().iter().enumerate() {
            let shape = self
                .value(input)
                .desc
                .as_ref()
                .map(|d| d.to_string())
                .unwrap_or_default();
            let _ = writeln!(out, "  in{i} [label=\"input {shape}\", shape=ellipse];");
        }
        let dot_id = |id: NodeId| format!("n{}", id.index());
        for id in self.node_ids() {
            let node = self.node(id);
            let style = if node.name.starts_with("pim::") {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{}\"{}];",
                dot_id(id),
                node.name.replace('"', "'"),
                node.op,
                style
            );
        }
        for id in self.node_ids() {
            let node = self.node(id);
            for &input in &node.inputs {
                match self.producer(input) {
                    Some(p) => {
                        let _ = writeln!(out, "  {} -> {};", dot_id(p), dot_id(id));
                    }
                    None => {
                        if let Some(pos) = self.inputs().iter().position(|&v| v == input) {
                            let _ = writeln!(out, "  in{pos} -> {};", dot_id(id));
                        }
                    }
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl Graph {
    /// One-paragraph statistics of the model: node/class counts, MACs,
    /// parameter and peak-activation footprints. Requires inferred shapes.
    ///
    /// # Panics
    ///
    /// Panics if shapes have not been inferred.
    pub fn summary(&self) -> String {
        use crate::analysis::{classify, node_cost, peak_activation_bytes, LayerClass};
        let mut macs = 0u64;
        let mut params = 0u64;
        let mut counts = [0usize; 5];
        for id in self.node_ids() {
            let c = node_cost(self, id);
            macs += c.macs;
            params += c.weight_elems;
            let idx = match classify(self, id) {
                LayerClass::PointwiseConv => 0,
                LayerClass::DepthwiseConv => 1,
                LayerClass::RegularConv => 2,
                LayerClass::Fc => 3,
                LayerClass::Other => 4,
            };
            counts[idx] += 1;
        }
        format!(
            "{}: {} nodes ({} 1x1 conv, {} dw conv, {} conv, {} fc, {} other),              {:.1} MMACs, {:.1} M params, peak activations {:.2} MB",
            self.name,
            self.node_count(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            macs as f64 / 1e6,
            params as f64 / 1e6,
            peak_activation_bytes(self) as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::shape_infer::infer_shapes;

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = models::toy();
        let json = g.to_json().unwrap();
        let mut back = Graph::from_json(&json).unwrap();
        assert_eq!(back.name, g.name);
        assert_eq!(back.node_count(), g.node_count());
        back.validate().unwrap();
        infer_shapes(&mut back).unwrap();
        // Same node names, ops, and weight keys.
        for id in g.node_ids() {
            let a = g.node(id);
            let b = back
                .find_node(&a.name)
                .map(|i| back.node(i))
                .expect("node survives");
            assert_eq!(a.op, b.op);
            assert_eq!(a.weight_key, b.weight_key);
        }
    }

    #[test]
    fn json_roundtrip_preserves_semantics() {
        let g = models::toy();
        let back = Graph::from_json(&g.to_json().unwrap()).unwrap();
        // Weight keys survive, so downstream execution is bit-identical;
        // structurally the serialization must be a fixed point.
        assert_eq!(pimflow_json::to_string(&g), pimflow_json::to_string(&back));
    }

    #[test]
    fn dot_contains_all_nodes_and_marks_pim() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        let name = g.node(id).name.clone();
        g.node_mut(id).name = format!("pim::{name}");
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        for id in g.node_ids() {
            assert!(
                dot.contains(&g.node(id).name.replace('"', "'")),
                "{}",
                g.node(id).name
            );
        }
        assert!(dot.contains("lightblue"), "PIM nodes must be highlighted");
        assert_eq!(dot.matches(" -> ").count(), 11); // edges = node inputs
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let s = models::mobilenet_v2().summary();
        assert!(s.contains("mobilenet-v2"));
        assert!(s.contains("MMACs"));
        assert!(s.contains("1x1 conv"));
        assert!(s.contains("peak activations"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Graph::from_json("{not json").is_err());
    }
}
