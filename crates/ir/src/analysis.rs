//! Static graph analyses used by the preliminary study (§3) and Fig. 1.
//!
//! * per-node MAC counts, load/store traffic, and arithmetic intensity
//!   ("# of MAC divided by # of LD/ST", Fig. 1 right);
//! * layer classification (1x1 CONV / depthwise CONV / other CONV / FC),
//!   used for the runtime breakdown (Fig. 1 left);
//! * inter-node parallelism statistics (observation 1 of §3).

use crate::graph::{Graph, GraphError, NodeId, ValueId};
use crate::ops::{Op, PoolKind};
use std::collections::HashSet;

/// Coarse layer class used in Fig. 1's runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// 1x1 (pointwise) convolution.
    PointwiseConv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Any other convolution (3x3, 5x5, 7x7, ...).
    RegularConv,
    /// Fully-connected layer.
    Fc,
    /// Everything else (activations, pooling, element-wise, data movement).
    Other,
}

impl LayerClass {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            LayerClass::PointwiseConv => "1x1 conv",
            LayerClass::DepthwiseConv => "dw conv",
            LayerClass::RegularConv => "conv",
            LayerClass::Fc => "fc",
            LayerClass::Other => "other",
        }
    }
}

/// Static cost summary of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Elements loaded (inputs + weights).
    pub loads: u64,
    /// Elements stored (outputs).
    pub stores: u64,
    /// Weight elements (subset of `loads`).
    pub weight_elems: u64,
}

impl NodeCost {
    /// Arithmetic intensity: MACs per load/store element (Fig. 1 right).
    pub fn arithmetic_intensity(&self) -> f64 {
        let ldst = self.loads + self.stores;
        if ldst == 0 {
            0.0
        } else {
            self.macs as f64 / ldst as f64
        }
    }

    /// FLOPs (2 per MAC).
    pub fn flops(&self) -> u64 {
        self.macs * 2
    }
}

/// Classifies a node for the Fig. 1 breakdown. Requires inferred shapes.
pub fn classify(graph: &Graph, id: NodeId) -> LayerClass {
    let node = graph.node(id);
    match &node.op {
        Op::Conv2d(a) => {
            let in_c = graph.in_channels(id);
            if a.is_depthwise_for(in_c) {
                LayerClass::DepthwiseConv
            } else if a.is_pointwise() {
                LayerClass::PointwiseConv
            } else {
                LayerClass::RegularConv
            }
        }
        Op::Dense(_) => LayerClass::Fc,
        _ => LayerClass::Other,
    }
}

/// Computes the static cost of node `id`. Requires inferred shapes.
///
/// # Panics
///
/// Panics if shapes have not been inferred for the node's inputs/output.
pub fn node_cost(graph: &Graph, id: NodeId) -> NodeCost {
    let node = graph.node(id);
    let out = graph
        .value(node.output)
        .desc
        .as_ref()
        .expect("shape inference must run before analysis");
    let in0 = graph
        .value(node.inputs[0])
        .desc
        .as_ref()
        .expect("shape inference must run before analysis");
    let out_elems = out.shape.numel() as u64;
    let in_elems: u64 = node
        .inputs
        .iter()
        .map(|&v| {
            graph
                .value(v)
                .desc
                .as_ref()
                .map(|d| d.shape.numel() as u64)
                .unwrap_or(0)
        })
        .sum();
    match &node.op {
        Op::Conv2d(a) => {
            let in_c = in0.shape.c() as u64;
            let k = (a.kernel.h * a.kernel.w) as u64;
            let (macs, weight_elems) = if a.groups > 1 {
                // Depthwise: one filter plane per channel.
                (out_elems * k, in_c * k)
            } else {
                (out_elems * k * in_c, in_c * k * a.out_channels as u64)
            };
            NodeCost {
                macs,
                loads: in_elems + weight_elems,
                stores: out_elems,
                weight_elems,
            }
        }
        Op::Dense(a) => {
            let in_f = in0.shape.c() as u64;
            let weight_elems = in_f * a.out_features as u64;
            NodeCost {
                macs: out_elems * in_f,
                loads: in_elems + weight_elems,
                stores: out_elems,
                weight_elems,
            }
        }
        Op::Pool(p) => {
            let window = (p.kernel.h * p.kernel.w) as u64;
            let macs = match p.kind {
                // Average pooling performs a true accumulate per window
                // element; max pooling is compare-only (no MACs).
                PoolKind::Avg => out_elems * window,
                PoolKind::Max => 0,
            };
            NodeCost {
                macs,
                loads: in_elems,
                stores: out_elems,
                weight_elems: 0,
            }
        }
        Op::GlobalAvgPool => NodeCost {
            macs: in_elems,
            loads: in_elems,
            stores: out_elems,
            weight_elems: 0,
        },
        Op::Add | Op::Mul | Op::BatchNorm | Op::Activation(_) => NodeCost {
            macs: out_elems,
            loads: in_elems,
            stores: out_elems,
            weight_elems: 0,
        },
        Op::Pad(_)
        | Op::Slice(_)
        | Op::Concat(_)
        | Op::Flatten
        | Op::Upsample { .. }
        | Op::Identity => NodeCost {
            macs: 0,
            loads: in_elems,
            stores: out_elems,
            weight_elems: 0,
        },
    }
}

/// Per-class aggregate of [`NodeCost`] over a whole model.
#[derive(Debug, Clone, Default)]
pub struct ModelProfile {
    /// `(class, total MACs, total load/store elements, node count)` rows.
    pub rows: Vec<(LayerClass, u64, u64, usize)>,
}

impl ModelProfile {
    /// Fraction of total MACs attributed to `class`.
    pub fn mac_share(&self, class: LayerClass) -> f64 {
        let total: u64 = self.rows.iter().map(|r| r.1).sum();
        if total == 0 {
            return 0.0;
        }
        self.rows
            .iter()
            .find(|r| r.0 == class)
            .map(|r| r.1 as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

/// Aggregates costs per layer class (the static analogue of Fig. 1 left).
pub fn profile_model(graph: &Graph) -> ModelProfile {
    let classes = [
        LayerClass::PointwiseConv,
        LayerClass::DepthwiseConv,
        LayerClass::RegularConv,
        LayerClass::Fc,
        LayerClass::Other,
    ];
    let mut rows = Vec::new();
    for class in classes {
        let mut macs = 0;
        let mut ldst = 0;
        let mut count = 0;
        for id in graph.node_ids() {
            if classify(graph, id) == class {
                let c = node_cost(graph, id);
                macs += c.macs;
                ldst += c.loads + c.stores;
                count += 1;
            }
        }
        rows.push((class, macs, ldst, count));
    }
    ModelProfile { rows }
}

/// Value liveness over a topological execution order.
///
/// This is the planning half of the executor's tensor arena: from it the
/// executor knows, for every value, how many input slots still read it
/// (`use_counts`), whether it must survive to the end of the run
/// (`sticky` — graph outputs), and the step after which its buffer can be
/// recycled (`last_use`). All vectors are indexed by
/// [`ValueId::index`](crate::graph::ValueId::index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// The topological node order the analysis is computed over.
    pub order: Vec<NodeId>,
    /// How many node-input slots read each value. A node consuming the
    /// same value twice contributes two uses, so an executor decrementing
    /// once per input slot reaches zero exactly at the value's death.
    pub use_counts: Vec<usize>,
    /// True for values that must outlive the whole run (graph outputs).
    pub sticky: Vec<bool>,
    /// Position in `order` of the last node reading each value, or `None`
    /// if no live node reads it.
    pub last_use: Vec<Option<usize>>,
}

impl Liveness {
    /// Step at which a value's buffer dies: its last use, or `birth` when
    /// nothing reads it (a dead-on-arrival intermediate). Sticky values
    /// never die; callers must check [`Liveness::sticky`] first.
    pub fn death_step(&self, v: ValueId, birth: usize) -> usize {
        self.last_use[v.index()].unwrap_or(birth)
    }
}

/// Computes [`Liveness`] for `graph` over its deterministic topological
/// order.
///
/// # Errors
///
/// Returns [`GraphError::Cycle`] if the graph is cyclic.
pub fn liveness(graph: &Graph) -> Result<Liveness, GraphError> {
    let order = graph.topo_order()?;
    let n_values = graph.value_count();
    let mut use_counts = vec![0usize; n_values];
    let mut last_use = vec![None; n_values];
    for (step, &id) in order.iter().enumerate() {
        for &input in &graph.node(id).inputs {
            use_counts[input.index()] += 1;
            last_use[input.index()] = Some(step);
        }
    }
    let mut sticky = vec![false; n_values];
    for &out in graph.outputs() {
        sticky[out.index()] = true;
    }
    Ok(Liveness {
        order,
        use_counts,
        sticky,
        last_use,
    })
}

/// Peak activation memory of a single inference, in bytes.
///
/// Computes [`liveness`] over the topological order: a value is live from
/// its producer until its last consumer (graph outputs stay live to the
/// end). This is the number the GPU-PIM dual configuration must respect —
/// §3 argues the split-channel design achieves PIM acceleration "without
/// sacrificing GPU performance and increasing DRAM size", i.e. the same
/// activation footprint. It is also the floor the executor's tensor arena
/// is tested against.
///
/// # Panics
///
/// Panics if the graph is cyclic. Values without inferred shapes count as
/// zero bytes.
pub fn peak_activation_bytes(graph: &Graph) -> u64 {
    let lv = liveness(graph).expect("graph must be acyclic");
    let bytes_of = |v: ValueId| -> u64 {
        graph
            .value(v)
            .desc
            .as_ref()
            .map(|d| d.size_bytes() as u64)
            .unwrap_or(0)
    };

    // Values released after each step (sticky values never release).
    let mut deaths_at: Vec<Vec<ValueId>> = vec![Vec::new(); lv.order.len()];
    let mut release = |v: ValueId, birth: usize| {
        if !lv.sticky[v.index()] && !deaths_at.is_empty() {
            deaths_at[lv.death_step(v, birth)].push(v);
        }
    };
    for &input in graph.inputs() {
        release(input, 0);
    }
    for (step, &id) in lv.order.iter().enumerate() {
        release(graph.node(id).output, step);
    }

    let mut live: u64 = graph.inputs().iter().map(|&v| bytes_of(v)).sum();
    let mut peak = 0u64;
    for (step, &id) in lv.order.iter().enumerate() {
        live += bytes_of(graph.node(id).output);
        peak = peak.max(live);
        for &dead in &deaths_at[step] {
            live -= bytes_of(dead);
        }
    }
    peak
}

/// Fraction of nodes that have at least one other node with **no** data-flow
/// dependency in either direction (observation 1 of §3: most CNN graphs have
/// little inherent inter-node parallelism).
pub fn independent_node_fraction(graph: &Graph) -> f64 {
    let order = match graph.topo_order() {
        Ok(o) => o,
        Err(_) => return 0.0,
    };
    let n = order.len();
    if n <= 1 {
        return 0.0;
    }
    // reach[i] = set of nodes reachable from order[i] (including itself).
    let pos: std::collections::HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut reach: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, &id) in order.iter().enumerate().rev() {
        reach[i].insert(i);
        let succ = graph.successors(id);
        let mut acc: HashSet<usize> = HashSet::new();
        for s in succ {
            acc.extend(reach[pos[&s]].iter().copied());
        }
        reach[i].extend(acc);
    }
    let mut independent = 0usize;
    for i in 0..n {
        let has_peer = (0..n).any(|j| j != i && !reach[i].contains(&j) && !reach[j].contains(&i));
        if has_peer {
            independent += 1;
        }
    }
    independent as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ops::{ActivationKind, Conv2dAttrs, DenseAttrs, Hw};
    use crate::shape_infer::infer_shapes;
    use crate::tensor::{DataType, Shape};

    fn pointwise_graph() -> (Graph, NodeId) {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 14, 14, 64), DataType::F16);
        let y = g.add_node("pw", Op::Conv2d(Conv2dAttrs::pointwise(128)), vec![x]);
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        let id = g.find_node("pw").unwrap();
        (g, id)
    }

    #[test]
    fn pointwise_macs_match_formula() {
        let (g, id) = pointwise_graph();
        let c = node_cost(&g, id);
        assert_eq!(c.macs, 14 * 14 * 128 * 64);
        assert_eq!(c.weight_elems, 64 * 128);
        assert_eq!(c.stores, 14 * 14 * 128);
    }

    #[test]
    fn pointwise_intensity_is_moderate() {
        // The paper's key observation: 1x1 convs have FC-like (low-moderate)
        // intensity, far below a dense 3x3 conv with the same channels.
        let (g, id) = pointwise_graph();
        let ai_pw = node_cost(&g, id).arithmetic_intensity();

        let mut g2 = Graph::new("t2");
        let x = g2.add_input("x", Shape::nhwc(1, 14, 14, 64), DataType::F16);
        let y = g2.add_node(
            "c3",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 128,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 1,
            }),
            vec![x],
        );
        g2.mark_output(y);
        infer_shapes(&mut g2).unwrap();
        let ai_3x3 = node_cost(&g2, g2.find_node("c3").unwrap()).arithmetic_intensity();
        assert!(ai_3x3 > 2.0 * ai_pw, "3x3 AI {ai_3x3} vs 1x1 AI {ai_pw}");
    }

    #[test]
    fn fc_is_memory_bound() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::rf(1, 4096), DataType::F16);
        let y = g.add_node("fc", Op::Dense(DenseAttrs { out_features: 4096 }), vec![x]);
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        let c = node_cost(&g, g.find_node("fc").unwrap());
        // Batch 1 FC: ~1 MAC per weight element loaded.
        assert!(c.arithmetic_intensity() < 1.1);
        assert_eq!(c.macs, 4096 * 4096);
    }

    #[test]
    fn depthwise_macs() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 14, 14, 96), DataType::F16);
        let y = g.add_node(
            "dw",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 96,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 96,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        let id = g.find_node("dw").unwrap();
        assert_eq!(classify(&g, id), LayerClass::DepthwiseConv);
        assert_eq!(node_cost(&g, id).macs, 14 * 14 * 96 * 9);
    }

    #[test]
    fn straight_line_graph_has_no_parallelism() {
        let mut g = Graph::new("line");
        let x = g.add_input("x", Shape::nhwc(1, 8, 8, 4), DataType::F16);
        let a = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let b = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a]);
        let c = g.add_node("c", Op::Activation(ActivationKind::Relu), vec![b]);
        g.mark_output(c);
        assert_eq!(independent_node_fraction(&g), 0.0);
    }

    #[test]
    fn diamond_graph_has_parallel_nodes() {
        let mut g = Graph::new("d");
        let x = g.add_input("x", Shape::nhwc(1, 8, 8, 4), DataType::F16);
        let a = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let b = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a]);
        let c = g.add_node("c", Op::Activation(ActivationKind::Relu), vec![a]);
        let d = g.add_node("d", Op::Add, vec![b, c]);
        g.mark_output(d);
        // b and c are mutually independent: 2 of 4 nodes.
        let f = independent_node_fraction(&g);
        assert!((f - 0.5).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn peak_memory_of_a_chain_is_two_tensors() {
        let mut g = Graph::new("line");
        let x = g.add_input("x", Shape::nhwc(1, 8, 8, 4), crate::tensor::DataType::F16);
        let a = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let b = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a]);
        g.mark_output(b);
        crate::shape_infer::infer_shapes(&mut g).unwrap();
        let tensor = 8 * 8 * 4 * 2u64;
        // At any step at most input+output of one op are live.
        assert_eq!(peak_activation_bytes(&g), 2 * tensor);
    }

    #[test]
    fn residual_holds_an_extra_tensor_live() {
        let mut g = Graph::new("res");
        let x = g.add_input("x", Shape::nhwc(1, 8, 8, 4), crate::tensor::DataType::F16);
        let a = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let b = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a]);
        let c = g.add_node("c", Op::Add, vec![b, x]); // x stays live across a, b
        g.mark_output(c);
        crate::shape_infer::infer_shapes(&mut g).unwrap();
        let tensor = 8 * 8 * 4 * 2u64;
        assert_eq!(peak_activation_bytes(&g), 3 * tensor);
    }

    #[test]
    fn liveness_counts_uses_and_marks_outputs_sticky() {
        let mut g = Graph::new("res");
        let x = g.add_input("x", Shape::nhwc(1, 8, 8, 4), crate::tensor::DataType::F16);
        let a = g.add_node("a", Op::Activation(ActivationKind::Relu), vec![x]);
        let b = g.add_node("b", Op::Activation(ActivationKind::Relu), vec![a]);
        let c = g.add_node("c", Op::Add, vec![b, x]);
        g.mark_output(c);
        let lv = liveness(&g).unwrap();
        assert_eq!(lv.order.len(), 3);
        // x feeds `a` and `c`; a.out feeds `b`; c.out feeds nothing.
        assert_eq!(lv.use_counts[x.index()], 2);
        assert_eq!(lv.use_counts[a.index()], 1);
        assert_eq!(lv.use_counts[c.index()], 0);
        // x's last reader is `c` at step 2; a.out dies at step 1.
        assert_eq!(lv.last_use[x.index()], Some(2));
        assert_eq!(lv.last_use[a.index()], Some(1));
        assert_eq!(lv.last_use[c.index()], None);
        assert_eq!(lv.death_step(c, 2), 2);
        assert!(lv.sticky[c.index()]);
        assert!(!lv.sticky[x.index()]);
        assert!(!lv.sticky[b.index()]);
    }

    #[test]
    fn same_value_consumed_twice_counts_two_uses() {
        let mut g = Graph::new("dup");
        let x = g.add_input("x", Shape::nhwc(1, 4, 4, 2), crate::tensor::DataType::F16);
        let y = g.add_node("double", Op::Add, vec![x, x]);
        g.mark_output(y);
        let lv = liveness(&g).unwrap();
        assert_eq!(lv.use_counts[x.index()], 2);
    }

    #[test]
    fn model_zoo_peak_memory_is_sane() {
        // MobileNetV2's peak live activations at 224x224 f16 should be a
        // few MB (its expanded 112x112x96 tensors), far below DRAM sizes.
        let g = crate::models::mobilenet_v2();
        let peak = peak_activation_bytes(&g);
        let mb = peak as f64 / 1e6;
        assert!((1.0..64.0).contains(&mb), "peak {mb} MB");
    }

    #[test]
    fn profile_sums_to_model_total() {
        let (g, id) = pointwise_graph();
        let p = profile_model(&g);
        let total: u64 = p.rows.iter().map(|r| r.1).sum();
        assert_eq!(total, node_cost(&g, id).macs);
        assert!((p.mac_share(LayerClass::PointwiseConv) - 1.0).abs() < 1e-12);
    }
}
