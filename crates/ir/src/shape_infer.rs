//! Shape inference.
//!
//! Walks the graph in topological order and fills in [`Value::desc`] for
//! every node output, validating operator semantics along the way. This is
//! the pass every other component (analysis, lowering, the search engine)
//! depends on, mirroring ONNX shape inference in the original artifact.
//!
//! [`Value::desc`]: crate::graph::Value::desc

use crate::graph::{Graph, GraphError, NodeId};
use crate::ops::{ActivationKind, Op};
use crate::tensor::{Shape, TensorDesc};

fn shape_err(graph: &Graph, id: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::Shape {
        node: graph.node(id).name.clone(),
        message: message.into(),
    }
}

/// Output spatial extent of a convolution/pooling window.
///
/// Returns `None` when the window does not fit (invalid configuration).
pub fn conv_out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = input + 2 * pad;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

fn infer_node(graph: &Graph, id: NodeId) -> Result<TensorDesc, GraphError> {
    let node = graph.node(id);
    let input_desc = |i: usize| -> Result<TensorDesc, GraphError> {
        let v = *node
            .inputs
            .get(i)
            .ok_or_else(|| shape_err(graph, id, format!("missing input {i}")))?;
        graph
            .value(v)
            .desc
            .clone()
            .ok_or_else(|| shape_err(graph, id, format!("input {i} has no inferred shape")))
    };
    let x = input_desc(0)?;
    let out = match &node.op {
        Op::Conv2d(a) => {
            if x.shape.rank() != 4 {
                return Err(shape_err(
                    graph,
                    id,
                    format!("conv input must be NHWC, got {}", x.shape),
                ));
            }
            let (h, w, c) = (x.shape.h(), x.shape.w(), x.shape.c());
            if a.groups != 1 && !a.is_depthwise_for(c) {
                return Err(shape_err(
                    graph,
                    id,
                    format!(
                        "unsupported grouped conv: groups={} in_c={} out_c={}",
                        a.groups, c, a.out_channels
                    ),
                ));
            }
            let oh = conv_out_extent(h, a.kernel.h, a.stride.h, a.padding.h).ok_or_else(|| {
                shape_err(
                    graph,
                    id,
                    format!("kernel {} does not fit input h={h}", a.kernel),
                )
            })?;
            let ow = conv_out_extent(w, a.kernel.w, a.stride.w, a.padding.w).ok_or_else(|| {
                shape_err(
                    graph,
                    id,
                    format!("kernel {} does not fit input w={w}", a.kernel),
                )
            })?;
            TensorDesc::new(Shape::nhwc(x.shape.n(), oh, ow, a.out_channels), x.dtype)
        }
        Op::Dense(a) => {
            if x.shape.rank() != 2 {
                return Err(shape_err(
                    graph,
                    id,
                    format!("dense input must be 2-D, got {}", x.shape),
                ));
            }
            TensorDesc::new(Shape::rf(x.shape.n(), a.out_features), x.dtype)
        }
        Op::Activation(k) => {
            if *k == ActivationKind::Softmax && x.shape.rank() < 2 {
                return Err(shape_err(graph, id, "softmax requires rank >= 2"));
            }
            x.clone()
        }
        Op::Add => {
            let y = input_desc(1)?;
            if x.shape != y.shape {
                return Err(shape_err(
                    graph,
                    id,
                    format!("add operands differ: {} vs {}", x.shape, y.shape),
                ));
            }
            x.clone()
        }
        Op::Mul => {
            let y = input_desc(1)?;
            let broadcast_ok = x.shape.rank() == 4
                && y.shape.rank() == 4
                && y.shape.h() == 1
                && y.shape.w() == 1
                && y.shape.n() == x.shape.n()
                && y.shape.c() == x.shape.c();
            if x.shape != y.shape && !broadcast_ok {
                return Err(shape_err(
                    graph,
                    id,
                    format!("mul operands differ: {} vs {}", x.shape, y.shape),
                ));
            }
            x.clone()
        }
        Op::Pool(a) => {
            if x.shape.rank() != 4 {
                return Err(shape_err(graph, id, "pool input must be NHWC"));
            }
            let oh = conv_out_extent(x.shape.h(), a.kernel.h, a.stride.h, a.padding.h)
                .ok_or_else(|| shape_err(graph, id, "pool window does not fit (h)"))?;
            let ow = conv_out_extent(x.shape.w(), a.kernel.w, a.stride.w, a.padding.w)
                .ok_or_else(|| shape_err(graph, id, "pool window does not fit (w)"))?;
            TensorDesc::new(Shape::nhwc(x.shape.n(), oh, ow, x.shape.c()), x.dtype)
        }
        Op::GlobalAvgPool => {
            if x.shape.rank() != 4 {
                return Err(shape_err(
                    graph,
                    id,
                    "global average pool input must be NHWC",
                ));
            }
            TensorDesc::new(Shape::nhwc(x.shape.n(), 1, 1, x.shape.c()), x.dtype)
        }
        Op::BatchNorm => {
            if x.shape.rank() != 4 {
                return Err(shape_err(graph, id, "batchnorm input must be NHWC"));
            }
            x.clone()
        }
        Op::Pad(p) => {
            if x.shape.rank() != 4 {
                return Err(shape_err(graph, id, "pad input must be NHWC"));
            }
            TensorDesc::new(
                Shape::nhwc(
                    x.shape.n(),
                    x.shape.h() + p.extra_h(),
                    x.shape.w() + p.extra_w(),
                    x.shape.c(),
                ),
                x.dtype,
            )
        }
        Op::Slice(s) => {
            if s.axis >= x.shape.rank() {
                return Err(shape_err(
                    graph,
                    id,
                    format!("slice axis {} out of range for {}", s.axis, x.shape),
                ));
            }
            if s.is_empty() || s.end > x.shape.dim(s.axis) {
                return Err(shape_err(
                    graph,
                    id,
                    format!(
                        "slice {}..{} invalid for axis extent {}",
                        s.begin,
                        s.end,
                        x.shape.dim(s.axis)
                    ),
                ));
            }
            TensorDesc::new(x.shape.with_dim(s.axis, s.len()), x.dtype)
        }
        Op::Concat(c) => {
            if c.axis >= x.shape.rank() {
                return Err(shape_err(
                    graph,
                    id,
                    format!("concat axis {} out of range", c.axis),
                ));
            }
            let mut total = 0;
            for i in 0..node.inputs.len() {
                let d = input_desc(i)?;
                if d.shape.rank() != x.shape.rank() {
                    return Err(shape_err(graph, id, "concat operands have different ranks"));
                }
                for ax in 0..x.shape.rank() {
                    if ax != c.axis && d.shape.dim(ax) != x.shape.dim(ax) {
                        return Err(shape_err(
                            graph,
                            id,
                            format!(
                                "concat operand {i} mismatches on axis {ax}: {} vs {}",
                                d.shape, x.shape
                            ),
                        ));
                    }
                }
                total += d.shape.dim(c.axis);
            }
            TensorDesc::new(x.shape.with_dim(c.axis, total), x.dtype)
        }
        Op::Flatten => {
            if x.shape.rank() < 2 {
                return Err(shape_err(graph, id, "flatten requires rank >= 2"));
            }
            let rest: usize = x.shape.0[1..].iter().product();
            TensorDesc::new(Shape::rf(x.shape.n(), rest), x.dtype)
        }
        Op::Upsample { factor } => {
            if x.shape.rank() != 4 {
                return Err(shape_err(graph, id, "upsample input must be NHWC"));
            }
            if *factor == 0 {
                return Err(shape_err(graph, id, "upsample factor must be >= 1"));
            }
            TensorDesc::new(
                Shape::nhwc(
                    x.shape.n(),
                    x.shape.h() * factor,
                    x.shape.w() * factor,
                    x.shape.c(),
                ),
                x.dtype,
            )
        }
        Op::Identity => x.clone(),
    };
    Ok(out)
}

/// Runs shape inference over the whole graph.
///
/// # Errors
///
/// Returns [`GraphError`] if the graph is cyclic, an operator receives
/// inputs of the wrong rank/extent, or an input value has no shape.
///
/// # Examples
///
/// ```
/// use pimflow_ir::{models, infer_shapes};
/// let mut g = models::toy();
/// infer_shapes(&mut g).unwrap();
/// ```
pub fn infer_shapes(graph: &mut Graph) -> Result<(), GraphError> {
    graph.validate()?;
    let order = graph.topo_order()?;
    for id in order {
        let desc = infer_node(graph, id)?;
        let out = graph.node(id).output;
        graph.value_mut(out).desc = Some(desc);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{
        ConcatAttrs, Conv2dAttrs, DenseAttrs, Hw, PadAttrs, PoolAttrs, PoolKind, SliceAttrs,
    };
    use crate::tensor::DataType;

    fn shape_of(g: &Graph, v: crate::graph::ValueId) -> Shape {
        g.value(v).desc.as_ref().unwrap().shape.clone()
    }

    #[test]
    fn conv_out_extent_math() {
        assert_eq!(conv_out_extent(224, 7, 2, 3), Some(112));
        assert_eq!(conv_out_extent(56, 3, 1, 1), Some(56));
        assert_eq!(conv_out_extent(4, 7, 1, 0), None);
        assert_eq!(conv_out_extent(8, 3, 0, 1), None);
    }

    #[test]
    fn conv_shapes() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 56, 56, 64), DataType::F16);
        let y = g.add_node(
            "c",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 128,
                kernel: Hw::square(3),
                stride: Hw::square(2),
                padding: Hw::square(1),
                groups: 1,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 28, 28, 128));
    }

    #[test]
    fn depthwise_keeps_channels() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 14, 14, 96), DataType::F16);
        let y = g.add_node(
            "dw",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 96,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 96,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 14, 14, 96));
    }

    #[test]
    fn bad_group_count_rejected() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 14, 14, 96), DataType::F16);
        let y = g.add_node(
            "gc",
            Op::Conv2d(Conv2dAttrs {
                out_channels: 96,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 4,
            }),
            vec![x],
        );
        g.mark_output(y);
        assert!(matches!(
            infer_shapes(&mut g),
            Err(GraphError::Shape { .. })
        ));
    }

    #[test]
    fn dense_and_flatten() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 7, 7, 512), DataType::F16);
        let f = g.add_node("fl", Op::Flatten, vec![x]);
        let y = g.add_node("fc", Op::Dense(DenseAttrs { out_features: 1000 }), vec![f]);
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, f), Shape::rf(1, 7 * 7 * 512));
        assert_eq!(shape_of(&g, y), Shape::rf(1, 1000));
    }

    #[test]
    fn slice_and_concat_roundtrip_shape() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 10, 8, 4), DataType::F16);
        let a = g.add_node(
            "s0",
            Op::Slice(SliceAttrs {
                axis: 1,
                begin: 0,
                end: 6,
            }),
            vec![x],
        );
        let b = g.add_node(
            "s1",
            Op::Slice(SliceAttrs {
                axis: 1,
                begin: 6,
                end: 10,
            }),
            vec![x],
        );
        let y = g.add_node("cat", Op::Concat(ConcatAttrs { axis: 1 }), vec![a, b]);
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, a), Shape::nhwc(1, 6, 8, 4));
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 10, 8, 4));
    }

    #[test]
    fn pad_grows_spatial_dims() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 5, 5, 3), DataType::F16);
        let y = g.add_node(
            "p",
            Op::Pad(PadAttrs {
                top: 1,
                bottom: 2,
                left: 0,
                right: 1,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 8, 6, 3));
    }

    #[test]
    fn pooling_shapes() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 112, 112, 64), DataType::F16);
        let y = g.add_node(
            "mp",
            Op::Pool(PoolAttrs {
                kind: PoolKind::Max,
                kernel: Hw::square(3),
                stride: Hw::square(2),
                padding: Hw::square(1),
            }),
            vec![x],
        );
        let z = g.add_node("gap", Op::GlobalAvgPool, vec![y]);
        g.mark_output(z);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 56, 56, 64));
        assert_eq!(shape_of(&g, z), Shape::nhwc(1, 1, 1, 64));
    }

    #[test]
    fn mul_broadcast_se_block() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 14, 14, 32), DataType::F16);
        let s = g.add_input("scale", Shape::nhwc(1, 1, 1, 32), DataType::F16);
        let y = g.add_node("mul", Op::Mul, vec![x, s]);
        g.mark_output(y);
        infer_shapes(&mut g).unwrap();
        assert_eq!(shape_of(&g, y), Shape::nhwc(1, 14, 14, 32));
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 4, 4, 8), DataType::F16);
        let y = g.add_input("y", Shape::nhwc(1, 4, 4, 16), DataType::F16);
        let z = g.add_node("add", Op::Add, vec![x, y]);
        g.mark_output(z);
        assert!(matches!(
            infer_shapes(&mut g),
            Err(GraphError::Shape { .. })
        ));
    }

    #[test]
    fn invalid_slice_rejected() {
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, 4, 4, 8), DataType::F16);
        let z = g.add_node(
            "s",
            Op::Slice(SliceAttrs {
                axis: 1,
                begin: 2,
                end: 7,
            }),
            vec![x],
        );
        g.mark_output(z);
        assert!(matches!(
            infer_shapes(&mut g),
            Err(GraphError::Shape { .. })
        ));
    }
}
