//! Operator definitions.
//!
//! The operator set mirrors the subset of ONNX opset 13 exercised by the
//! paper's evaluated models (§5): convolutions (regular, pointwise,
//! depthwise), fully-connected layers, pooling, element-wise arithmetic,
//! activations, and the data-movement operators (`Pad`, `Slice`, `Concat`)
//! that the PIM-aware transformation passes insert.

use pimflow_json::{json_struct, json_unit_enum, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A 2-D extent (height, width) used for kernels, strides, and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hw {
    /// Vertical extent.
    pub h: usize,
    /// Horizontal extent.
    pub w: usize,
}

impl Hw {
    /// Creates an extent.
    pub fn new(h: usize, w: usize) -> Self {
        Hw { h, w }
    }

    /// Creates a square extent.
    pub fn square(s: usize) -> Self {
        Hw { h: s, w: s }
    }
}

impl fmt::Display for Hw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.h, self.w)
    }
}

/// Attributes of a 2-D convolution.
///
/// `groups == 1` is a regular (or pointwise, when the kernel is 1x1)
/// convolution; `groups == in_channels == out_channels` is a depthwise
/// convolution. Other grouped convolutions are not used by the evaluated
/// models and are rejected by graph validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dAttrs {
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Filter spatial extent.
    pub kernel: Hw,
    /// Stride.
    pub stride: Hw,
    /// Symmetric zero padding applied to each spatial border.
    pub padding: Hw,
    /// Number of filter groups.
    pub groups: usize,
}

impl Conv2dAttrs {
    /// A pointwise (1x1, stride 1, no padding) convolution.
    pub fn pointwise(out_channels: usize) -> Self {
        Conv2dAttrs {
            out_channels,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 1,
        }
    }

    /// True if this is a 1x1 convolution (regardless of stride).
    pub fn is_pointwise(&self) -> bool {
        self.kernel == Hw::square(1) && self.groups == 1
    }

    /// True if this convolution is depthwise for the given input channels.
    pub fn is_depthwise_for(&self, in_channels: usize) -> bool {
        self.groups > 1 && self.groups == in_channels && self.out_channels == in_channels
    }
}

/// Attributes of a fully-connected (Dense / Gemm) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DenseAttrs {
    /// Number of output features.
    pub out_features: usize,
}

/// Pooling kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Attributes of a spatial pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolAttrs {
    /// Max or average.
    pub kind: PoolKind,
    /// Window extent.
    pub kernel: Hw,
    /// Stride.
    pub stride: Hw,
    /// Symmetric zero padding.
    pub padding: Hw,
}

/// Unary activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` (ONNX `Clip`, used by MobileNetV2/MnasNet).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// `x * sigmoid(x)` (SiLU, used by EfficientNet).
    Swish,
    /// Gaussian error linear unit (used by the BERT-like model).
    Gelu,
    /// Row-wise softmax over the last dimension.
    Softmax,
    /// `tanh(x)`.
    Tanh,
}

/// Attributes of a zero-padding operator over the spatial dimensions of an
/// NHWC tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PadAttrs {
    /// Rows added above.
    pub top: usize,
    /// Rows added below.
    pub bottom: usize,
    /// Columns added on the left.
    pub left: usize,
    /// Columns added on the right.
    pub right: usize,
}

impl PadAttrs {
    /// Total padded rows.
    pub fn extra_h(&self) -> usize {
        self.top + self.bottom
    }

    /// Total padded columns.
    pub fn extra_w(&self) -> usize {
        self.left + self.right
    }
}

/// Attributes of a slice along a single axis: the half-open range
/// `[begin, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceAttrs {
    /// Axis being sliced.
    pub axis: usize,
    /// First index kept.
    pub begin: usize,
    /// One past the last index kept.
    pub end: usize,
}

impl SliceAttrs {
    /// Extent of the slice.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True if the slice keeps zero elements.
    pub fn is_empty(&self) -> bool {
        self.end <= self.begin
    }
}

/// Attributes of a concatenation along a single axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConcatAttrs {
    /// Axis along which inputs are joined.
    pub axis: usize,
}

/// An operator.
///
/// Every operator produces exactly one output tensor. Multi-output ONNX
/// constructs in the evaluated models (none in practice) would be modelled as
/// multiple nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// 2-D convolution over an NHWC input.
    Conv2d(Conv2dAttrs),
    /// Fully-connected layer over a `[rows, features]` input.
    Dense(DenseAttrs),
    /// Unary activation.
    Activation(ActivationKind),
    /// Element-wise addition of two same-shaped tensors.
    Add,
    /// Element-wise multiplication of two same-shaped tensors
    /// (broadcast over H and W when the second operand is `[N,1,1,C]`,
    /// as produced by squeeze-excite blocks).
    Mul,
    /// Spatial pooling.
    Pool(PoolAttrs),
    /// Global average pooling: NHWC -> `[N,1,1,C]`.
    GlobalAvgPool,
    /// Inference-mode batch normalization (per-channel affine).
    BatchNorm,
    /// Spatial zero padding.
    Pad(PadAttrs),
    /// Single-axis slice.
    Slice(SliceAttrs),
    /// Single-axis concatenation of two or more inputs.
    Concat(ConcatAttrs),
    /// Collapse all dimensions after the first: NHWC -> `[N, H*W*C]`.
    Flatten,
    /// Nearest-neighbour spatial upsampling by an integer factor
    /// (decoder stages of segmentation networks, e.g. U-Net).
    Upsample {
        /// Spatial scale factor (>= 1).
        factor: usize,
    },
    /// Pass-through.
    Identity,
}

impl Op {
    /// Short mnemonic used in printed graphs and profiles.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Conv2d(c) if c.groups > 1 => "dwconv",
            Op::Conv2d(c) if c.is_pointwise() => "conv1x1",
            Op::Conv2d(_) => "conv",
            Op::Dense(_) => "dense",
            Op::Activation(ActivationKind::Relu) => "relu",
            Op::Activation(ActivationKind::Relu6) => "relu6",
            Op::Activation(ActivationKind::Sigmoid) => "sigmoid",
            Op::Activation(ActivationKind::Swish) => "swish",
            Op::Activation(ActivationKind::Gelu) => "gelu",
            Op::Activation(ActivationKind::Softmax) => "softmax",
            Op::Activation(ActivationKind::Tanh) => "tanh",
            Op::Add => "add",
            Op::Mul => "mul",
            Op::Pool(PoolAttrs {
                kind: PoolKind::Max,
                ..
            }) => "maxpool",
            Op::Pool(_) => "avgpool",
            Op::GlobalAvgPool => "gap",
            Op::BatchNorm => "bn",
            Op::Pad(_) => "pad",
            Op::Slice(_) => "slice",
            Op::Concat(_) => "concat",
            Op::Flatten => "flatten",
            Op::Upsample { .. } => "upsample",
            Op::Identity => "id",
        }
    }

    /// Number of inputs the operator requires; `None` means variadic
    /// (at least two), which only `Concat` uses.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Add | Op::Mul => Some(2),
            Op::Concat(_) => None,
            _ => Some(1),
        }
    }

    /// True for the node kinds the paper treats as PIM offload candidates:
    /// FC and CONV layers *except* depthwise CONV (§4.2.1).
    ///
    /// Depthwise convolution is excluded because it "requires the global
    /// buffer to be flushed for each input channel" on the baseline
    /// DRAM-PIM (§4.2.2).
    pub fn is_pim_candidate_for(&self, in_channels: usize) -> bool {
        match self {
            Op::Conv2d(c) => !c.is_depthwise_for(in_channels) && c.groups == 1,
            Op::Dense(_) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Conv2d(c) => write!(
                f,
                "{}(k={},s={},p={},oc={},g={})",
                self.mnemonic(),
                c.kernel,
                c.stride,
                c.padding,
                c.out_channels,
                c.groups
            ),
            Op::Dense(d) => write!(f, "dense(of={})", d.out_features),
            Op::Slice(s) => write!(f, "slice(ax={},{}..{})", s.axis, s.begin, s.end),
            Op::Concat(c) => write!(f, "concat(ax={})", c.axis),
            Op::Pad(p) => write!(f, "pad(t{},b{},l{},r{})", p.top, p.bottom, p.left, p.right),
            _ => write!(f, "{}", self.mnemonic()),
        }
    }
}

json_struct!(Hw { h, w });
json_struct!(Conv2dAttrs {
    out_channels,
    kernel,
    stride,
    padding,
    groups
});
json_struct!(DenseAttrs { out_features });
json_unit_enum!(PoolKind { Max, Avg });
json_struct!(PoolAttrs {
    kind,
    kernel,
    stride,
    padding
});
json_unit_enum!(ActivationKind {
    Relu,
    Relu6,
    Sigmoid,
    Swish,
    Gelu,
    Softmax,
    Tanh
});
json_struct!(PadAttrs {
    top,
    bottom,
    left,
    right
});
json_struct!(SliceAttrs { axis, begin, end });
json_struct!(ConcatAttrs { axis });

// `Op` carries payloads, so the derive-like macros don't apply; the impls
// below keep the serde externally-tagged shape (`"Add"` for unit variants,
// `{"Conv2d": {...}}` for payload variants).
impl ToJson for Op {
    fn to_json(&self) -> Json {
        let tagged = |tag: &str, payload: Json| Json::obj(vec![(tag, payload)]);
        match self {
            Op::Conv2d(a) => tagged("Conv2d", a.to_json()),
            Op::Dense(a) => tagged("Dense", a.to_json()),
            Op::Activation(k) => tagged("Activation", k.to_json()),
            Op::Add => Json::Str("Add".into()),
            Op::Mul => Json::Str("Mul".into()),
            Op::Pool(a) => tagged("Pool", a.to_json()),
            Op::GlobalAvgPool => Json::Str("GlobalAvgPool".into()),
            Op::BatchNorm => Json::Str("BatchNorm".into()),
            Op::Pad(a) => tagged("Pad", a.to_json()),
            Op::Slice(a) => tagged("Slice", a.to_json()),
            Op::Concat(a) => tagged("Concat", a.to_json()),
            Op::Flatten => Json::Str("Flatten".into()),
            Op::Upsample { factor } => {
                tagged("Upsample", Json::obj(vec![("factor", factor.to_json())]))
            }
            Op::Identity => Json::Str("Identity".into()),
        }
    }
}

impl FromJson for Op {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(name) => match name.as_str() {
                "Add" => Ok(Op::Add),
                "Mul" => Ok(Op::Mul),
                "GlobalAvgPool" => Ok(Op::GlobalAvgPool),
                "BatchNorm" => Ok(Op::BatchNorm),
                "Flatten" => Ok(Op::Flatten),
                "Identity" => Ok(Op::Identity),
                other => Err(JsonError::msg(format!("unknown Op variant `{other}`"))),
            },
            Json::Obj(fields) if fields.len() == 1 => {
                let (tag, payload) = &fields[0];
                match tag.as_str() {
                    "Conv2d" => Conv2dAttrs::from_json(payload).map(Op::Conv2d),
                    "Dense" => DenseAttrs::from_json(payload).map(Op::Dense),
                    "Activation" => ActivationKind::from_json(payload).map(Op::Activation),
                    "Pool" => PoolAttrs::from_json(payload).map(Op::Pool),
                    "Pad" => PadAttrs::from_json(payload).map(Op::Pad),
                    "Slice" => SliceAttrs::from_json(payload).map(Op::Slice),
                    "Concat" => ConcatAttrs::from_json(payload).map(Op::Concat),
                    "Upsample" => Ok(Op::Upsample {
                        factor: usize::from_json(payload.field("factor")?)?,
                    }),
                    other => Err(JsonError::msg(format!("unknown Op variant `{other}`"))),
                }
            }
            other => Err(JsonError::msg(format!(
                "expected Op as string or single-field object, got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_detection() {
        let pw = Conv2dAttrs::pointwise(64);
        assert!(pw.is_pointwise());
        assert!(!pw.is_depthwise_for(32));
        let dw = Conv2dAttrs {
            out_channels: 32,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 32,
        };
        assert!(dw.is_depthwise_for(32));
        assert!(!dw.is_pointwise());
    }

    #[test]
    fn pim_candidates_exclude_depthwise() {
        let dw = Op::Conv2d(Conv2dAttrs {
            out_channels: 32,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 32,
        });
        assert!(!dw.is_pim_candidate_for(32));
        assert!(Op::Conv2d(Conv2dAttrs::pointwise(8)).is_pim_candidate_for(32));
        assert!(Op::Dense(DenseAttrs { out_features: 10 }).is_pim_candidate_for(0));
        assert!(!Op::Add.is_pim_candidate_for(32));
    }

    #[test]
    fn arity() {
        assert_eq!(Op::Add.arity(), Some(2));
        assert_eq!(Op::Identity.arity(), Some(1));
        assert_eq!(Op::Concat(ConcatAttrs { axis: 1 }).arity(), None);
    }

    #[test]
    fn mnemonics_distinguish_conv_flavours() {
        assert_eq!(Op::Conv2d(Conv2dAttrs::pointwise(4)).mnemonic(), "conv1x1");
        let mut a = Conv2dAttrs::pointwise(4);
        a.kernel = Hw::square(3);
        assert_eq!(Op::Conv2d(a).mnemonic(), "conv");
        a.groups = 4;
        assert_eq!(Op::Conv2d(a).mnemonic(), "dwconv");
    }

    #[test]
    fn slice_len() {
        let s = SliceAttrs {
            axis: 1,
            begin: 3,
            end: 9,
        };
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        for op in [
            Op::Conv2d(Conv2dAttrs::pointwise(4)),
            Op::Dense(DenseAttrs { out_features: 10 }),
            Op::Add,
            Op::Flatten,
        ] {
            assert!(!op.to_string().is_empty());
        }
    }
}
