//! # pimflow-ir
//!
//! Graph intermediate representation for the PIMFlow reproduction: tensor
//! shapes, an ONNX-like operator set, a mutable DAG with shape inference,
//! static cost/intensity analyses (Fig. 1, §3), and a model zoo with every
//! network evaluated in the paper.
//!
//! This crate stands in for the ONNX + Torchvision layer of the original
//! PIMFlow artifact: the compiler passes in the [`pimflow`] crate consume
//! and transform these graphs.
//!
//! [`pimflow`]: https://docs.rs/pimflow
//!
//! ## Example
//!
//! ```
//! use pimflow_ir::{models, analysis};
//!
//! let g = models::mobilenet_v2();
//! let profile = analysis::profile_model(&g);
//! // 1x1 convolutions dominate the MAC count of mobile CNNs (Fig. 1).
//! assert!(profile.mac_share(analysis::LayerClass::PointwiseConv) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod builder;
pub mod export;
pub mod graph;
pub mod intern;
pub mod models;
pub mod ops;
pub mod shape_infer;
pub mod tensor;

pub use builder::GraphBuilder;
pub use graph::{Graph, GraphError, Node, NodeId, ParamView, Value, ValueId};
pub use intern::Interner;
pub use ops::{
    ActivationKind, ConcatAttrs, Conv2dAttrs, DenseAttrs, Hw, Op, PadAttrs, PoolAttrs, PoolKind,
    SliceAttrs,
};
pub use shape_infer::infer_shapes;
pub use tensor::{DataType, Shape, TensorDesc};
