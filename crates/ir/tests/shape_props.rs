//! Property tests for shape inference and graph structure.

use pimflow_ir::{
    infer_shapes, shape_infer::conv_out_extent, ActivationKind, Conv2dAttrs, DataType, Graph,
    GraphBuilder, Hw, Op, Shape, SliceAttrs,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inferred conv output extent matches the closed-form formula for
    /// every fitting configuration.
    #[test]
    fn conv_shape_matches_formula(
        h in 1usize..64,
        w in 1usize..64,
        ic in 1usize..16,
        oc in 1usize..16,
        k in 1usize..8,
        s in 1usize..4,
        p in 0usize..4,
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, h, w, ic), DataType::F16);
        let y = g.add_node(
            "c",
            Op::Conv2d(Conv2dAttrs {
                out_channels: oc,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: 1,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).expect("valid conv");
        let out = &g.value(y).desc.as_ref().unwrap().shape;
        prop_assert_eq!(out.h(), (h + 2 * p - k) / s + 1);
        prop_assert_eq!(out.w(), (w + 2 * p - k) / s + 1);
        prop_assert_eq!(out.c(), oc);
    }

    /// Splitting any axis into two slices and concatenating restores the
    /// original shape.
    #[test]
    fn slice_concat_shape_roundtrip(
        dims in proptest::collection::vec(2usize..10, 4),
        axis in 0usize..4,
        cut_num in 1usize..9,
    ) {
        let extent = dims[axis];
        let cut = 1 + cut_num % (extent - 1);
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::new(dims.clone()));
        let a = b.slice(x, SliceAttrs { axis, begin: 0, end: cut });
        let c = b.slice(x, SliceAttrs { axis, begin: cut, end: extent });
        let y = b.concat(vec![a, c], axis);
        let g = b.finish(y);
        let out = &g.value(g.outputs()[0]).desc.as_ref().unwrap().shape;
        prop_assert_eq!(out.clone(), Shape::new(dims));
    }

    /// Topological order always places producers before consumers, for
    /// randomly wired element-wise DAGs.
    #[test]
    fn topo_order_is_consistent(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..24),
    ) {
        let mut b = GraphBuilder::new("dag");
        let input = b.input(Shape::nhwc(1, 4, 4, 2));
        let mut values = vec![input];
        for (i, &(a, c)) in edges.iter().enumerate() {
            let va = values[a % values.len()];
            let vc = values[c % values.len()];
            let v = if i % 2 == 0 {
                b.add(va, vc)
            } else {
                b.act(va, ActivationKind::Relu)
            };
            values.push(v);
        }
        let g = b.finish(*values.last().unwrap());
        let order = g.topo_order().expect("acyclic by construction");
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in g.node_ids() {
            for p in g.predecessors(id) {
                prop_assert!(pos[&p] < pos[&id]);
            }
        }
    }

    /// `conv_out_extent` is antitone in kernel size and stride.
    #[test]
    fn out_extent_monotonicity(input in 8usize..128, k in 1usize..8, s in 1usize..4) {
        prop_assume!(input >= k);
        let base = conv_out_extent(input, k, s, 0).unwrap();
        if let Some(bigger_k) = conv_out_extent(input, k + 1, s, 0) {
            prop_assert!(bigger_k <= base);
        }
        if let Some(bigger_s) = conv_out_extent(input, k, s + 1, 0) {
            prop_assert!(bigger_s <= base);
        }
    }
}
