//! Property tests for shape inference and graph structure, driven by
//! seeded random cases from `pimflow-rng` (the workspace builds offline,
//! so `proptest` is not available).

use pimflow_ir::{
    infer_shapes, shape_infer::conv_out_extent, ActivationKind, Conv2dAttrs, DataType, Graph,
    GraphBuilder, Hw, Op, Shape, SliceAttrs,
};
use pimflow_rng::Rng;

const CASES: usize = 64;

/// The inferred conv output extent matches the closed-form formula for
/// every fitting configuration.
#[test]
fn conv_shape_matches_formula() {
    let mut rng = Rng::seed_from_u64(0x5eed_0001);
    let mut checked = 0;
    while checked < CASES {
        let h = rng.range_usize(1, 64);
        let w = rng.range_usize(1, 64);
        let ic = rng.range_usize(1, 16);
        let oc = rng.range_usize(1, 16);
        let k = rng.range_usize(1, 8);
        let s = rng.range_usize(1, 4);
        let p = rng.range_usize(0, 4);
        if h + 2 * p < k || w + 2 * p < k {
            continue;
        }
        checked += 1;
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::nhwc(1, h, w, ic), DataType::F16);
        let y = g.add_node(
            "c",
            Op::Conv2d(Conv2dAttrs {
                out_channels: oc,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: 1,
            }),
            vec![x],
        );
        g.mark_output(y);
        infer_shapes(&mut g).expect("valid conv");
        let out = &g.value(y).desc.as_ref().unwrap().shape;
        assert_eq!(out.h(), (h + 2 * p - k) / s + 1);
        assert_eq!(out.w(), (w + 2 * p - k) / s + 1);
        assert_eq!(out.c(), oc);
    }
}

/// Splitting any axis into two slices and concatenating restores the
/// original shape.
#[test]
fn slice_concat_shape_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x5eed_0002);
    for _ in 0..CASES {
        let dims: Vec<usize> = (0..4).map(|_| rng.range_usize(2, 10)).collect();
        let axis = rng.range_usize(0, 4);
        let cut_num = rng.range_usize(1, 9);
        let extent = dims[axis];
        let cut = 1 + cut_num % (extent - 1);
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::new(dims.clone()));
        let a = b.slice(
            x,
            SliceAttrs {
                axis,
                begin: 0,
                end: cut,
            },
        );
        let c = b.slice(
            x,
            SliceAttrs {
                axis,
                begin: cut,
                end: extent,
            },
        );
        let y = b.concat(vec![a, c], axis);
        let g = b.finish(y);
        let out = &g.value(g.outputs()[0]).desc.as_ref().unwrap().shape;
        assert_eq!(out, &Shape::new(dims));
    }
}

/// Topological order always places producers before consumers, for
/// randomly wired element-wise DAGs.
#[test]
fn topo_order_is_consistent() {
    let mut rng = Rng::seed_from_u64(0x5eed_0003);
    for _ in 0..CASES {
        let edge_count = rng.range_usize(1, 24);
        let mut b = GraphBuilder::new("dag");
        let input = b.input(Shape::nhwc(1, 4, 4, 2));
        let mut values = vec![input];
        for i in 0..edge_count {
            let va = values[rng.range_usize(0, values.len())];
            let vc = values[rng.range_usize(0, values.len())];
            let v = if i % 2 == 0 {
                b.add(va, vc)
            } else {
                b.act(va, ActivationKind::Relu)
            };
            values.push(v);
        }
        let g = b.finish(*values.last().unwrap());
        let order = g.topo_order().expect("acyclic by construction");
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in g.node_ids() {
            for p in g.predecessors(id) {
                assert!(pos[&p] < pos[&id]);
            }
        }
    }
}

/// `conv_out_extent` is antitone in kernel size and stride.
#[test]
fn out_extent_monotonicity() {
    let mut rng = Rng::seed_from_u64(0x5eed_0004);
    let mut checked = 0;
    while checked < CASES {
        let input = rng.range_usize(8, 128);
        let k = rng.range_usize(1, 8);
        let s = rng.range_usize(1, 4);
        if input < k {
            continue;
        }
        checked += 1;
        let base = conv_out_extent(input, k, s, 0).unwrap();
        if let Some(bigger_k) = conv_out_extent(input, k + 1, s, 0) {
            assert!(bigger_k <= base);
        }
        if let Some(bigger_s) = conv_out_extent(input, k, s + 1, 0) {
            assert!(bigger_s <= base);
        }
    }
}
