//! Property tests for the reference kernels: the convolution-lowering
//! identity, data-movement roundtrips, and executor determinism. Cases are
//! drawn from a seeded `pimflow-rng` generator (the workspace builds
//! offline, so `proptest` is not available).

use pimflow_ir::{Conv2dAttrs, Hw, PadAttrs, Shape, SliceAttrs};
use pimflow_kernels::ops::{concat, conv2d, conv2d_direct, pad, slice};
use pimflow_kernels::{gemm, im2col, Tensor};
use pimflow_rng::Rng;

const CASES: usize = 32;

fn random_tensor(rng: &mut Rng, shape: Shape) -> Tensor {
    let n = shape.numel();
    let data: Vec<f32> = (0..n).map(|_| rng.range_f32(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data)
}

/// The PIM mapping's foundation (§2.2): convolution lowering followed by
/// GEMM equals direct convolution, for arbitrary configurations.
#[test]
fn im2col_gemm_equals_direct_conv() {
    let mut rng = Rng::seed_from_u64(0x6e57_0001);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.range_usize(1, 4);
        let h = rng.range_usize(3, 10);
        let w = rng.range_usize(3, 10);
        let ic = rng.range_usize(1, 4);
        let oc = rng.range_usize(1, 5);
        let k = rng.range_usize(1, 4);
        let s = rng.range_usize(1, 3);
        let p = rng.range_usize(0, 2);
        if h + 2 * p < k || w + 2 * p < k {
            continue;
        }
        checked += 1;
        let x = random_tensor(&mut rng, Shape::nhwc(n, h, w, ic));
        let wts: Vec<f32> = (0..k * k * ic * oc)
            .map(|_| rng.range_f32(-1.0, 1.0))
            .collect();
        let attrs = Conv2dAttrs {
            out_channels: oc,
            kernel: Hw::square(k),
            stride: Hw::square(s),
            padding: Hw::square(p),
            groups: 1,
        };
        let bias = vec![0.0; oc];
        // conv2d_direct is the oracle: conv2d itself routes through the
        // same im2col + GEMM being checked here.
        let direct = conv2d_direct(&x, &wts, &bias, &attrs).unwrap();
        let lowered = im2col(&x, &attrs).unwrap();
        let w_mat = Tensor::from_vec(Shape::rf(k * k * ic, oc), wts.clone());
        let via_gemm = gemm(&lowered, &w_mat).unwrap();
        let rows = n * direct.shape().h() * direct.shape().w();
        let direct2 = Tensor::from_vec(Shape::rf(rows, oc), direct.data().to_vec());
        assert!(
            via_gemm.allclose(&direct2, 1e-3),
            "diff {}",
            via_gemm.max_abs_diff(&direct2)
        );
        // And the fast path agrees with the oracle end to end.
        let fast = conv2d(&x, &wts, &bias, &attrs).unwrap();
        assert!(fast.allclose(&direct, 0.0));
    }
}

/// Slicing a tensor along H into two parts and concatenating restores
/// the original exactly.
#[test]
fn slice_concat_data_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x6e57_0002);
    for _ in 0..CASES {
        let h = rng.range_usize(2, 10);
        let w = rng.range_usize(1, 6);
        let c = rng.range_usize(1, 5);
        let cut = 1 + rng.range_usize(1, 1000) % (h - 1).max(1);
        let x = random_tensor(&mut rng, Shape::nhwc(1, h, w, c));
        let a = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 0,
                end: cut,
            },
        );
        let b = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: cut,
                end: h,
            },
        );
        let y = concat(&[&a, &b], 1).unwrap();
        assert!(y.allclose(&x, 0.0));
    }
}

/// Padding then slicing the interior recovers the input exactly, and
/// padded borders are zero.
#[test]
fn pad_slice_recovery() {
    let mut rng = Rng::seed_from_u64(0x6e57_0003);
    for _ in 0..CASES {
        let h = rng.range_usize(2, 8);
        let w = rng.range_usize(2, 8);
        let c = rng.range_usize(1, 4);
        let t = rng.range_usize(0, 3);
        let bm = rng.range_usize(0, 3);
        let l = rng.range_usize(0, 3);
        let r = rng.range_usize(0, 3);
        let x = random_tensor(&mut rng, Shape::nhwc(1, h, w, c));
        let attrs = PadAttrs {
            top: t,
            bottom: bm,
            left: l,
            right: r,
        };
        let padded = pad(&x, &attrs);
        // Border sums must be zero.
        let mut border_sum = 0.0f32;
        for y_ in 0..padded.shape().h() {
            for x_ in 0..padded.shape().w() {
                let inside = y_ >= t && y_ < t + h && x_ >= l && x_ < l + w;
                if !inside {
                    for cc in 0..padded.shape().c() {
                        border_sum += padded.get(&[0, y_, x_, cc]).abs();
                    }
                }
            }
        }
        assert_eq!(border_sum, 0.0);
        // Interior recovers input.
        let inner = slice(
            &padded,
            &SliceAttrs {
                axis: 1,
                begin: t,
                end: t + h,
            },
        );
        let inner = slice(
            &inner,
            &SliceAttrs {
                axis: 2,
                begin: l,
                end: l + w,
            },
        );
        assert!(inner.allclose(&x, 0.0));
    }
}

/// Depthwise convolution treats channels independently: scaling each
/// channel by its own filter weight.
#[test]
fn depthwise_is_channelwise() {
    let mut rng = Rng::seed_from_u64(0x6e57_0004);
    for _ in 0..CASES {
        let c = 4;
        let vals: Vec<f32> = (0..c).map(|_| rng.range_f32(-2.0, 2.0)).collect();
        let attrs = Conv2dAttrs {
            out_channels: c,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: c,
        };
        let weights: Vec<f32> = (0..c).map(|i| (i + 1) as f32).collect();
        let bias = vec![0.0; c];
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, c), vals.clone());
        let y = conv2d(&x, &weights, &bias, &attrs).unwrap();
        for (i, (&out, &v)) in y.data().iter().zip(&vals).enumerate() {
            assert!((out - v * (i + 1) as f32).abs() < 1e-6);
        }
    }
}
