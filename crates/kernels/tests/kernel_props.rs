//! Property tests for the reference kernels: the convolution-lowering
//! identity, data-movement roundtrips, and executor determinism. Cases are
//! drawn from a seeded `pimflow-rng` generator (the workspace builds
//! offline, so `proptest` is not available).

use pimflow_ir::{Conv2dAttrs, Hw, PadAttrs, Shape, SliceAttrs};
use pimflow_kernels::im2col::gemm_with;
use pimflow_kernels::microkernel::{gemm_packed, KC, MC, MR, NR};
use pimflow_kernels::ops::{concat, conv2d, conv2d_direct, pad, slice};
use pimflow_kernels::{gemm, im2col, pack_b, Epilogue, GemmPath, Tensor, Tolerance};
use pimflow_rng::Rng;

const CASES: usize = 32;

fn random_tensor(rng: &mut Rng, shape: Shape) -> Tensor {
    let n = shape.numel();
    let data: Vec<f32> = (0..n).map(|_| rng.range_f32(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data)
}

/// The PIM mapping's foundation (§2.2): convolution lowering followed by
/// GEMM equals direct convolution, for arbitrary configurations.
#[test]
fn im2col_gemm_equals_direct_conv() {
    let mut rng = Rng::seed_from_u64(0x6e57_0001);
    let mut checked = 0;
    while checked < CASES {
        let n = rng.range_usize(1, 4);
        let h = rng.range_usize(3, 10);
        let w = rng.range_usize(3, 10);
        let ic = rng.range_usize(1, 4);
        let oc = rng.range_usize(1, 5);
        let k = rng.range_usize(1, 4);
        let s = rng.range_usize(1, 3);
        let p = rng.range_usize(0, 2);
        if h + 2 * p < k || w + 2 * p < k {
            continue;
        }
        checked += 1;
        let x = random_tensor(&mut rng, Shape::nhwc(n, h, w, ic));
        let wts: Vec<f32> = (0..k * k * ic * oc)
            .map(|_| rng.range_f32(-1.0, 1.0))
            .collect();
        let attrs = Conv2dAttrs {
            out_channels: oc,
            kernel: Hw::square(k),
            stride: Hw::square(s),
            padding: Hw::square(p),
            groups: 1,
        };
        let bias = vec![0.0; oc];
        // conv2d_direct is the oracle: conv2d itself routes through the
        // same im2col + GEMM being checked here.
        let direct = conv2d_direct(&x, &wts, &bias, &attrs).unwrap();
        let lowered = im2col(&x, &attrs).unwrap();
        let w_mat = Tensor::from_vec(Shape::rf(k * k * ic, oc), wts.clone());
        let via_gemm = gemm(&lowered, &w_mat).unwrap();
        let rows = n * direct.shape().h() * direct.shape().w();
        let direct2 = Tensor::from_vec(Shape::rf(rows, oc), direct.data().to_vec());
        assert!(
            via_gemm.allclose(&direct2, 1e-3),
            "diff {}",
            via_gemm.max_abs_diff(&direct2)
        );
        // And the fast path agrees with the oracle end to end.
        let fast = conv2d(&x, &wts, &bias, &attrs).unwrap();
        assert!(fast.allclose(&direct, 0.0));
    }
}

/// Slicing a tensor along H into two parts and concatenating restores
/// the original exactly.
#[test]
fn slice_concat_data_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x6e57_0002);
    for _ in 0..CASES {
        let h = rng.range_usize(2, 10);
        let w = rng.range_usize(1, 6);
        let c = rng.range_usize(1, 5);
        let cut = 1 + rng.range_usize(1, 1000) % (h - 1).max(1);
        let x = random_tensor(&mut rng, Shape::nhwc(1, h, w, c));
        let a = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 0,
                end: cut,
            },
        );
        let b = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: cut,
                end: h,
            },
        );
        let y = concat(&[&a, &b], 1).unwrap();
        assert!(y.allclose(&x, 0.0));
    }
}

/// Padding then slicing the interior recovers the input exactly, and
/// padded borders are zero.
#[test]
fn pad_slice_recovery() {
    let mut rng = Rng::seed_from_u64(0x6e57_0003);
    for _ in 0..CASES {
        let h = rng.range_usize(2, 8);
        let w = rng.range_usize(2, 8);
        let c = rng.range_usize(1, 4);
        let t = rng.range_usize(0, 3);
        let bm = rng.range_usize(0, 3);
        let l = rng.range_usize(0, 3);
        let r = rng.range_usize(0, 3);
        let x = random_tensor(&mut rng, Shape::nhwc(1, h, w, c));
        let attrs = PadAttrs {
            top: t,
            bottom: bm,
            left: l,
            right: r,
        };
        let padded = pad(&x, &attrs);
        // Border sums must be zero.
        let mut border_sum = 0.0f32;
        for y_ in 0..padded.shape().h() {
            for x_ in 0..padded.shape().w() {
                let inside = y_ >= t && y_ < t + h && x_ >= l && x_ < l + w;
                if !inside {
                    for cc in 0..padded.shape().c() {
                        border_sum += padded.get(&[0, y_, x_, cc]).abs();
                    }
                }
            }
        }
        assert_eq!(border_sum, 0.0);
        // Interior recovers input.
        let inner = slice(
            &padded,
            &SliceAttrs {
                axis: 1,
                begin: t,
                end: t + h,
            },
        );
        let inner = slice(
            &inner,
            &SliceAttrs {
                axis: 2,
                begin: l,
                end: l + w,
            },
        );
        assert!(inner.allclose(&x, 0.0));
    }
}

/// Draws a GEMM dimension that is biased toward the blocking remainders:
/// values below the block size, exactly at it, and just past it all occur.
fn blocked_dim(rng: &mut Rng, block: usize) -> usize {
    match rng.range_usize(0, 4) {
        0 => rng.range_usize(1, block),         // strictly inside one block
        1 => block + rng.range_usize(0, 2),     // at / one past the edge
        2 => rng.range_usize(1, 2 * block + 2), // spans the boundary
        _ => 2 * block + rng.range_usize(1, block), // several blocks deep
    }
}

fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
    out
}

/// The tentpole contract, plain-GEMM half: with no epilogue, the
/// register-blocked micro-kernel is **bit-identical** to the scalar oracle
/// and to a naive triple loop, across shapes that exercise every remainder
/// (`M < MR`, `N < NR`, `K < KC`, and multi-block cases past `MC`/`KC`).
#[test]
fn microkernel_gemm_is_bit_identical_to_scalar_oracle() {
    let mut rng = Rng::seed_from_u64(0x6e57_0005);
    for case in 0..CASES {
        // Cap the largest axis per case so the multi-block draws stay fast.
        let m = if case % 3 == 0 {
            blocked_dim(&mut rng, MC)
        } else {
            blocked_dim(&mut rng, MR)
        };
        let k = if case % 3 == 1 {
            blocked_dim(&mut rng, KC)
        } else {
            rng.range_usize(1, 48)
        };
        let n = blocked_dim(&mut rng, NR);
        let a = random_tensor(&mut rng, Shape::rf(m, k));
        let b = random_tensor(&mut rng, Shape::rf(k, n));
        let fast = gemm_with(&a, &b, GemmPath::Fast).unwrap();
        let exact = gemm_with(&a, &b, GemmPath::Exact).unwrap();
        assert_eq!(
            fast.data(),
            exact.data(),
            "plain GEMM must be bit-identical across paths at ({m},{k},{n})"
        );
        let naive = naive_gemm(a.data(), b.data(), m, k, n);
        assert_eq!(
            fast.data(),
            &naive[..],
            "micro-kernel diverged from the naive loop at ({m},{k},{n})"
        );
    }
}

/// The tentpole contract, epilogue half: the fused bias(+relu) epilogue
/// adds bias *after* the products (the oracle seeds with it), so the fused
/// result is tolerance-checked — within [`Tolerance::kernel_default`] of a
/// bias-seeded naive oracle — never byte-compared.
#[test]
fn fused_epilogue_stays_within_kernel_tolerance_of_seeded_oracle() {
    let mut rng = Rng::seed_from_u64(0x6e57_0006);
    let tol = Tolerance::kernel_default();
    for _ in 0..CASES {
        let m = blocked_dim(&mut rng, MR);
        let k = rng.range_usize(1, 64);
        let n = blocked_dim(&mut rng, NR);
        let a: Vec<f32> = (0..m * k).map(|_| rng.range_f32(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.range_f32(-2.0, 2.0)).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let relu = rng.range_usize(0, 2) == 1;

        // Bias-seeded oracle, the accumulation order the scalar path uses.
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            want[i * n..(i + 1) * n].copy_from_slice(&bias);
        }
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    want[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        if relu {
            for v in &mut want {
                *v = v.max(0.0);
            }
        }

        let packed = pack_b(&b, k, n);
        let mut got = vec![0.0f32; m * n];
        let epilogue = if relu {
            Epilogue::BiasRelu(&bias)
        } else {
            Epilogue::Bias(&bias)
        };
        gemm_packed(&a, &packed, &mut got, epilogue);
        tol.check(&got, &want).unwrap_or_else(|e| {
            panic!("fused epilogue drifted past tolerance at ({m},{k},{n}) relu={relu}: {e}")
        });
    }
}

/// One packed B serves every im2col row batch: splitting the lowered
/// matrix into arbitrary row blocks and pushing each through the shared
/// pack reproduces the one-shot product byte-for-byte, and stays within
/// tolerance of the direct-convolution oracle.
#[test]
fn batched_im2col_panels_reuse_one_pack() {
    let mut rng = Rng::seed_from_u64(0x6e57_0007);
    let tol = Tolerance::kernel_default();
    let mut checked = 0;
    while checked < CASES / 2 {
        let h = rng.range_usize(3, 9);
        let w = rng.range_usize(3, 9);
        let ic = rng.range_usize(1, 4);
        let oc = rng.range_usize(1, 12);
        let k = rng.range_usize(1, 4);
        if h < k || w < k {
            continue;
        }
        checked += 1;
        let attrs = Conv2dAttrs {
            out_channels: oc,
            kernel: Hw::square(k),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 1,
        };
        let x = random_tensor(&mut rng, Shape::nhwc(1, h, w, ic));
        let wts: Vec<f32> = (0..k * k * ic * oc)
            .map(|_| rng.range_f32(-1.0, 1.0))
            .collect();
        let lowered = im2col(&x, &attrs).unwrap();
        let rows = lowered.shape().dim(0);
        let kk = lowered.shape().dim(1);

        let packed = pack_b(&wts, kk, oc);
        let mut whole = vec![0.0f32; rows * oc];
        gemm_packed(lowered.data(), &packed, &mut whole, Epilogue::None);

        // Same pack, arbitrary row batches.
        let mut batched = vec![0.0f32; rows * oc];
        let mut row = 0;
        while row < rows {
            let take = (1 + rng.range_usize(0, rows)).min(rows - row);
            gemm_packed(
                &lowered.data()[row * kk..(row + take) * kk],
                &packed,
                &mut batched[row * oc..(row + take) * oc],
                Epilogue::None,
            );
            row += take;
        }
        assert_eq!(
            whole, batched,
            "row-batched GEMM over a shared pack must be byte-identical"
        );

        let bias = vec![0.0; oc];
        let direct = conv2d_direct(&x, &wts, &bias, &attrs).unwrap();
        tol.check(&batched, direct.data())
            .unwrap_or_else(|e| panic!("packed conv drifted from direct oracle: {e}"));
    }
}

/// Depthwise convolution treats channels independently: scaling each
/// channel by its own filter weight.
#[test]
fn depthwise_is_channelwise() {
    let mut rng = Rng::seed_from_u64(0x6e57_0004);
    for _ in 0..CASES {
        let c = 4;
        let vals: Vec<f32> = (0..c).map(|_| rng.range_f32(-2.0, 2.0)).collect();
        let attrs = Conv2dAttrs {
            out_channels: c,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: c,
        };
        let weights: Vec<f32> = (0..c).map(|i| (i + 1) as f32).collect();
        let bias = vec![0.0; c];
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, c), vals.clone());
        let y = conv2d(&x, &weights, &bias, &attrs).unwrap();
        for (i, (&out, &v)) in y.data().iter().zip(&vals).enumerate() {
            assert!((out - v * (i + 1) as f32).abs() < 1e-6);
        }
    }
}
