//! Property tests for the reference kernels: the convolution-lowering
//! identity, data-movement roundtrips, and executor determinism.

use pimflow_kernels::ops::{concat, conv2d, pad, slice};
use pimflow_kernels::{gemm, im2col, Tensor};
use pimflow_ir::{Conv2dAttrs, Hw, PadAttrs, Shape, SliceAttrs};
use proptest::prelude::*;

fn arb_tensor(shape: Shape) -> impl Strategy<Value = Tensor> {
    let n = shape.numel();
    proptest::collection::vec(-2.0f32..2.0, n).prop_map(move |v| Tensor::from_vec(shape.clone(), v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The PIM mapping's foundation (§2.2): convolution lowering followed by
    /// GEMM equals direct convolution, for arbitrary configurations.
    #[test]
    fn im2col_gemm_equals_direct_conv(
        (h, w, ic, oc, k, s, p, x, wts) in (3usize..10, 3usize..10, 1usize..4, 1usize..5,
            prop_oneof![Just(1usize), Just(2), Just(3)], 1usize..3, 0usize..2)
            .prop_flat_map(|(h, w, ic, oc, k, s, p)| {
                let x = arb_tensor(Shape::nhwc(1, h, w, ic));
                let wts = proptest::collection::vec(-1.0f32..1.0, k * k * ic * oc);
                (Just(h), Just(w), Just(ic), Just(oc), Just(k), Just(s), Just(p), x, wts)
            })
            .prop_map(|(h, w, ic, oc, k, s, p, x, wts)| (h, w, ic, oc, k, s, p, x, wts)),
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let attrs = Conv2dAttrs {
            out_channels: oc,
            kernel: Hw::square(k),
            stride: Hw::square(s),
            padding: Hw::square(p),
            groups: 1,
        };
        let bias = vec![0.0; oc];
        let direct = conv2d(&x, &wts, &bias, &attrs);
        let lowered = im2col(&x, &attrs);
        let w_mat = Tensor::from_vec(Shape::rf(k * k * ic, oc), wts);
        let via_gemm = gemm(&lowered, &w_mat);
        let rows = direct.shape().h() * direct.shape().w();
        let direct2 = Tensor::from_vec(Shape::rf(rows, oc), direct.data().to_vec());
        prop_assert!(via_gemm.allclose(&direct2, 1e-3),
            "diff {}", via_gemm.max_abs_diff(&direct2));
    }

    /// Slicing a tensor along H into two parts and concatenating restores
    /// the original exactly.
    #[test]
    fn slice_concat_data_roundtrip(
        (h, w, c, cut, x) in (2usize..10, 1usize..6, 1usize..5)
            .prop_flat_map(|(h, w, c)| {
                let x = arb_tensor(Shape::nhwc(1, h, w, c));
                (Just(h), Just(w), Just(c), 1usize..1000, x)
            })
            .prop_map(|(h, w, c, cut, x)| (h, w, c, 1 + cut % (h - 1).max(1), x)),
    ) {
        let _ = (w, c);
        let a = slice(&x, &SliceAttrs { axis: 1, begin: 0, end: cut });
        let b = slice(&x, &SliceAttrs { axis: 1, begin: cut, end: h });
        let y = concat(&[&a, &b], 1);
        prop_assert!(y.allclose(&x, 0.0));
    }

    /// Padding then slicing the interior recovers the input exactly, and
    /// padded borders are zero.
    #[test]
    fn pad_slice_recovery(
        (h, w, c, t, bm, l, r, x) in (2usize..8, 2usize..8, 1usize..4, 0usize..3, 0usize..3, 0usize..3, 0usize..3)
            .prop_flat_map(|(h, w, c, t, bm, l, r)| {
                let x = arb_tensor(Shape::nhwc(1, h, w, c));
                (Just(h), Just(w), Just(c), Just(t), Just(bm), Just(l), Just(r), x)
            }),
    ) {
        let _ = c;
        let attrs = PadAttrs { top: t, bottom: bm, left: l, right: r };
        let padded = pad(&x, &attrs);
        // Border sums must be zero.
        let mut border_sum = 0.0f32;
        for y_ in 0..padded.shape().h() {
            for x_ in 0..padded.shape().w() {
                let inside = y_ >= t && y_ < t + h && x_ >= l && x_ < l + w;
                if !inside {
                    for cc in 0..padded.shape().c() {
                        border_sum += padded.get(&[0, y_, x_, cc]).abs();
                    }
                }
            }
        }
        prop_assert_eq!(border_sum, 0.0);
        // Interior recovers input.
        let inner = slice(&padded, &SliceAttrs { axis: 1, begin: t, end: t + h });
        let inner = slice(&inner, &SliceAttrs { axis: 2, begin: l, end: l + w });
        prop_assert!(inner.allclose(&x, 0.0));
    }

    /// Depthwise convolution treats channels independently: permuting a
    /// single-pixel input's channels permutes the output identically.
    #[test]
    fn depthwise_is_channelwise(vals in proptest::collection::vec(-2.0f32..2.0, 4)) {
        let c = vals.len();
        let attrs = Conv2dAttrs {
            out_channels: c,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: c,
        };
        let weights: Vec<f32> = (0..c).map(|i| (i + 1) as f32).collect();
        let bias = vec![0.0; c];
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, c), vals.clone());
        let y = conv2d(&x, &weights, &bias, &attrs);
        for i in 0..c {
            prop_assert!((y.data()[i] - vals[i] * (i + 1) as f32).abs() < 1e-6);
        }
    }
}
