//! Register-blocked, cache-tiled GEMM micro-kernels.
//!
//! The scalar k-blocked loop in [`mod@crate::im2col`] walks the output row
//! through memory once per `k` step — a load and a store per FLOP pair. The
//! micro-kernel here instead holds an `MR x NR` accumulator tile in
//! registers for the whole k extent, streams a packed copy of `B` whose
//! panels are laid out in exactly the order the inner loop consumes them,
//! and only touches the output when a tile is complete (BLIS-style
//! `jc -> pc -> ic -> jr -> ir` blocking, scaled down to the shapes a CNN
//! reference executor sees).
//!
//! # Numerical contract
//!
//! Per output element the products are accumulated in ascending `k` order,
//! spilled exactly (an f32 round-trips through memory unchanged) at [`KC`]
//! panel boundaries. Consequences, both tested:
//!
//! * with [`Epilogue::None`] the result is **bit-identical** to the naive
//!   `i, k, j` triple loop — the blocking reorders memory traffic, not the
//!   per-element float additions;
//! * with a bias epilogue ([`Epilogue::Bias`] / [`Epilogue::BiasRelu`]) the
//!   bias joins *after* the products instead of seeding the accumulator, so
//!   results differ from the bias-seeded oracle by one reassociated
//!   addition — within [`crate::tolerance::Tolerance::kernel_default`], the
//!   documented fast-path tolerance.
//!
//! Either way the accumulation order of an output element depends only on
//! its row contents and column, never on which row range a caller asked
//! for, so intra-op row sharding stays **byte-identical at any
//! `PIMFLOW_JOBS` width** (the same contract the scalar path had).

use crate::probe::{self, ProbePoint};

/// Rows per register tile. Four accumulator rows of [`NR`] f32 lanes fit in
/// xmm registers alongside a packed-B vector on a baseline x86-64 target
/// (and in NEON registers on aarch64).
pub const MR: usize = 4;

/// Columns per register tile — the unrolled f32 lanes of the accumulator.
/// Packed-B panels are padded to this width so the inner loop is always a
/// fixed-trip-count, auto-vectorizable lane loop.
pub const NR: usize = 8;

/// k extent per cache panel: a `KC x NR` packed-B panel (8 KiB) stays in L1
/// while an `MR x KC` slab of `A` streams against it.
pub const KC: usize = 256;

/// Rows per L2 block: bounds the working set of `A` rows revisited per
/// packed-B panel to `MC x KC` floats.
pub const MC: usize = 64;

/// Which path a GEMM-backed kernel takes.
///
/// `Fast` is the register-blocked micro-kernel (default); `Exact` demotes
/// to the scalar k-blocked loop, which is bit-identical to the naive triple
/// loop and to the bias-seeded direct-convolution oracle. Selected per call
/// site, or process-wide via the `PIMFLOW_EXACT_KERNELS` environment
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmPath {
    /// Register-blocked micro-kernel; outputs within the documented
    /// tolerance of the oracle (bit-identical for epilogue-free GEMM).
    #[default]
    Fast,
    /// Scalar oracle loop: byte-identical to the pre-micro-kernel executor
    /// at every worker width.
    Exact,
}

/// Environment variable forcing the exact scalar path process-wide.
pub const EXACT_ENV_VAR: &str = "PIMFLOW_EXACT_KERNELS";

impl GemmPath {
    /// Reads the path from `PIMFLOW_EXACT_KERNELS` (`1`/`true` selects
    /// [`GemmPath::Exact`]); anything else — including unset — selects
    /// [`GemmPath::Fast`].
    pub fn from_env() -> Self {
        Self::parse(std::env::var(EXACT_ENV_VAR).ok().as_deref())
    }

    /// The parse behind [`GemmPath::from_env`], separated so tests cover it
    /// without racing on the process environment.
    fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v == "1" || v.eq_ignore_ascii_case("true") => GemmPath::Exact,
            _ => GemmPath::Fast,
        }
    }
}

/// What the micro-kernel does to a finished accumulator tile before the
/// store. Fused into the tile loop so conv/dense epilogues cost no extra
/// pass over the output.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw products sum (plain GEMM).
    None,
    /// Add `bias[column]` to every element (conv / dense).
    Bias(&'a [f32]),
    /// Add `bias[column]`, then clamp at zero (conv + ReLU fused).
    BiasRelu(&'a [f32]),
}

/// `B` repacked into [`NR`]-wide column panels, padded with zeros to a
/// whole panel: panel `j` holds columns `j*NR ..` as `k` rows of `NR`
/// contiguous lanes — the exact order the micro-kernel's inner loop reads.
///
/// Packing costs one pass over `B` and is reused across every row block of
/// a call (and, in the executor, across all im2col panels *and* all
/// workers of a sharded convolution — the pack happens once per node at
/// staging time).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedB {
    /// Inner (reduction) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count of the packed matrix (unpadded).
    pub fn n(&self) -> usize {
        self.n
    }

    /// One `k x NR` panel of packed columns.
    fn panel(&self, j: usize) -> &[f32] {
        &self.panels[j * self.k * NR..(j + 1) * self.k * NR]
    }
}

/// Packs a row-major `[k, n]` matrix into [`NR`]-wide panels.
///
/// # Panics
///
/// Panics if `b.len() != k * n`.
pub fn pack_b(b: &[f32], k: usize, n: usize) -> PackedB {
    let _probe = probe::span(ProbePoint::PackB);
    assert_eq!(b.len(), k * n, "pack_b operand length");
    let panels_n = n.div_ceil(NR).max(1);
    let mut panels = vec![0.0f32; panels_n * k * NR];
    for j in 0..panels_n {
        let col0 = j * NR;
        let width = NR.min(n - col0.min(n));
        let panel = &mut panels[j * k * NR..(j + 1) * k * NR];
        for kk in 0..k {
            let src = &b[kk * n + col0..kk * n + col0 + width];
            panel[kk * NR..kk * NR + width].copy_from_slice(src);
        }
    }
    PackedB { k, n, panels }
}

/// Register-blocked GEMM over a packed `B`:
/// `out[m, n] = epilogue(a[m, k] x b[k, n])` with `m = out.len() / b.n()`.
///
/// `a` is the row-major left operand (`m * k` floats, read in place — the
/// im2col scratch or a dense input). `out` is overwritten, not accumulated
/// into; the epilogue is fused into the final store.
///
/// # Panics
///
/// Panics if operand lengths are inconsistent, `b.n() == 0`, or an epilogue
/// bias length differs from `b.n()`.
pub fn gemm_packed(a: &[f32], b: &PackedB, out: &mut [f32], epilogue: Epilogue<'_>) {
    let _probe = probe::span(ProbePoint::GemmMicrokernel);
    let (k, n) = (b.k, b.n);
    assert!(n > 0, "gemm_packed needs at least one output column");
    let m = out.len() / n;
    assert_eq!(out.len(), m * n, "gemm_packed output length");
    assert_eq!(a.len(), m * k, "gemm_packed left operand length");
    if let Epilogue::Bias(bias) | Epilogue::BiasRelu(bias) = epilogue {
        assert_eq!(bias.len(), n, "gemm_packed bias length");
    }
    let kc_blocks = k.div_ceil(KC).max(1);
    for pc in 0..kc_blocks {
        let kb = pc * KC;
        let kw = KC.min(k - kb);
        let first = pc == 0;
        // Only the final k panel applies the epilogue.
        let ep = if pc + 1 == kc_blocks {
            epilogue
        } else {
            Epilogue::None
        };
        for ic in (0..m).step_by(MC) {
            let mw = MC.min(m - ic);
            for jr in 0..n.div_ceil(NR) {
                let col0 = jr * NR;
                let nw = NR.min(n - col0);
                let panel = &b.panel(jr)[kb * NR..(kb + kw) * NR];
                for ir in (0..mw).step_by(MR) {
                    let row0 = ic + ir;
                    let rw = MR.min(mw - ir);
                    if rw == MR && nw == NR {
                        tile_full(a, k, kb, kw, row0, panel, out, n, col0, first, ep);
                    } else {
                        tile(TileArgs {
                            a,
                            k,
                            kb,
                            kw,
                            row0,
                            rw,
                            panel,
                            out,
                            n,
                            col0,
                            nw,
                            first,
                            epilogue: ep,
                        });
                    }
                }
            }
        }
    }
}

/// Operands of one register tile, bundled to keep the call site readable.
struct TileArgs<'a, 'e> {
    a: &'a [f32],
    /// Row stride of `a` (the full reduction extent).
    k: usize,
    /// First k index of this panel.
    kb: usize,
    /// k steps in this panel.
    kw: usize,
    /// First output row of the tile.
    row0: usize,
    /// Rows in the tile (`<= MR`).
    rw: usize,
    /// Packed-B panel slice for this k range (`kw * NR` floats).
    panel: &'a [f32],
    out: &'a mut [f32],
    /// Row stride of `out` (total columns).
    n: usize,
    /// First output column of the tile.
    col0: usize,
    /// Columns in the tile (`<= NR`).
    nw: usize,
    /// First k panel: accumulators start at zero instead of reloading.
    first: bool,
    epilogue: Epilogue<'e>,
}

/// The full `MR x NR` register tile — the hot kernel. Every loop has a
/// constant trip count and every operand is a pre-sliced zip (no index
/// arithmetic or bounds checks inside the k loop), so the accumulator
/// stays in vector registers for the whole panel. Same accumulation order
/// as [`tile`]; only the remainder handling is gone.
///
/// `inline(never)` is load-bearing: inlined into `gemm_packed` next to the
/// generic [`tile`], the merged body overwhelms the register allocator and
/// the accumulator spills to the stack every k step (~6x slower). As an
/// outlined function the accumulator stays in vector registers.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn tile_full(
    a: &[f32],
    k: usize,
    kb: usize,
    kw: usize,
    row0: usize,
    panel: &[f32],
    out: &mut [f32],
    n: usize,
    col0: usize,
    first: bool,
    epilogue: Epilogue<'_>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (i, row) in acc.iter_mut().enumerate() {
            let base = (row0 + i) * n + col0;
            row.copy_from_slice(&out[base..base + NR]);
        }
    }
    let arow = |i: usize| &a[(row0 + i) * k + kb..][..kw];
    let (r0, r1, r2, r3) = (arow(0), arow(1), arow(2), arow(3));
    // Pure slice-iterator zips (no `take`, no indexing): std specializes
    // these to one counted loop with no bounds checks, which is what lets
    // the accumulator live in registers instead of spilling every k step.
    let rows = r0.iter().zip(r1).zip(r2.iter().zip(r3));
    for (lanes, ((a0, a1), (a2, a3))) in panel.chunks_exact(NR).zip(rows) {
        let (a0, a1, a2, a3) = (*a0, *a1, *a2, *a3);
        // Ascending k order per element, identical to the naive loop.
        for j in 0..NR {
            acc[0][j] += a0 * lanes[j];
        }
        for j in 0..NR {
            acc[1][j] += a1 * lanes[j];
        }
        for j in 0..NR {
            acc[2][j] += a2 * lanes[j];
        }
        for j in 0..NR {
            acc[3][j] += a3 * lanes[j];
        }
    }
    match epilogue {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            let b: &[f32; NR] = bias[col0..col0 + NR].try_into().expect("NR bias lanes");
            for row in &mut acc {
                for j in 0..NR {
                    row[j] += b[j];
                }
            }
        }
        Epilogue::BiasRelu(bias) => {
            let b: &[f32; NR] = bias[col0..col0 + NR].try_into().expect("NR bias lanes");
            for row in &mut acc {
                for j in 0..NR {
                    row[j] = (row[j] + b[j]).max(0.0);
                }
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let base = (row0 + i) * n + col0;
        out[base..base + NR].copy_from_slice(row);
    }
}

/// One `rw x nw` accumulator tile: load the partial sums unless this is the
/// first k panel, accumulate `kw` steps in ascending k order across all
/// [`NR`] lanes (padding lanes compute zeros and are never stored), apply
/// the epilogue, store `nw` columns. Remainder tiles only — full tiles take
/// [`tile_full`]. Outlined for the same register-pressure reason.
#[inline(never)]
fn tile(args: TileArgs<'_, '_>) {
    let TileArgs {
        a,
        k,
        kb,
        kw,
        row0,
        rw,
        panel,
        out,
        n,
        col0,
        nw,
        first,
        epilogue,
    } = args;
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (i, row) in acc.iter_mut().enumerate().take(rw) {
            let base = (row0 + i) * n + col0;
            row[..nw].copy_from_slice(&out[base..base + nw]);
        }
    }
    for kk in 0..kw {
        let lanes: &[f32; NR] = panel[kk * NR..(kk + 1) * NR].try_into().expect("NR lanes");
        for (i, row) in acc.iter_mut().enumerate().take(rw) {
            // Per element the products join in ascending k order — the same
            // reduction order as the naive triple loop; the tile only
            // reorders memory traffic.
            let av = a[(row0 + i) * k + kb + kk];
            for (o, &bv) in row.iter_mut().zip(lanes) {
                *o += av * bv;
            }
        }
    }
    match epilogue {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            for row in acc.iter_mut().take(rw) {
                for (o, &bv) in row.iter_mut().zip(&bias[col0..col0 + nw]) {
                    *o += bv;
                }
            }
        }
        Epilogue::BiasRelu(bias) => {
            for row in acc.iter_mut().take(rw) {
                for (o, &bv) in row.iter_mut().zip(&bias[col0..col0 + nw]) {
                    *o = (*o + bv).max(0.0);
                }
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(rw) {
        let base = (row0 + i) * n + col0;
        out[base..base + nw].copy_from_slice(&row[..nw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn operands(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 29 + 3) % 23) as f32 * 0.07 - 0.7)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 17 + 11) % 19) as f32 * 0.09 - 0.8)
            .collect();
        (a, b)
    }

    #[test]
    fn packed_gemm_without_epilogue_is_bit_identical_to_naive() {
        // Shapes hitting every remainder: M % MR, N % NR, K < KC, K > KC,
        // and degenerate single-row/single-column cases.
        for (m, k, n) in [
            (1, 1, 1),
            (MR, 3, NR),
            (MR + 1, 7, NR + 3),
            (MC + 5, KC + 13, 2 * NR + 1),
            (3, KC, 5),
            (17, 2 * KC + 9, 19),
        ] {
            let (a, b) = operands(m, k, n);
            let packed = pack_b(&b, k, n);
            let mut out = vec![0.0f32; m * n];
            gemm_packed(&a, &packed, &mut out, Epilogue::None);
            let want = naive(&a, &b, m, k, n);
            assert_eq!(out, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn bias_relu_epilogue_matches_bias_then_relu() {
        let (m, k, n) = (9, 33, 11);
        let (a, b) = operands(m, k, n);
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.3 - 1.5).collect();
        let packed = pack_b(&b, k, n);
        let mut biased = vec![0.0f32; m * n];
        gemm_packed(&a, &packed, &mut biased, Epilogue::Bias(&bias));
        let mut fused = vec![0.0f32; m * n];
        gemm_packed(&a, &packed, &mut fused, Epilogue::BiasRelu(&bias));
        for (f, b) in fused.iter().zip(&biased) {
            assert_eq!(*f, b.max(0.0), "relu must clamp the biased value");
        }
    }

    #[test]
    fn packing_is_reused_across_row_blocks() {
        // Calling gemm_packed over disjoint row blocks of A with one packed
        // B reproduces the single whole-matrix call byte for byte — the
        // property the conv fast path's im2col streaming relies on.
        let (m, k, n) = (37, 50, 13);
        let (a, b) = operands(m, k, n);
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.11 - 0.4).collect();
        let packed = pack_b(&b, k, n);
        let mut whole = vec![0.0f32; m * n];
        gemm_packed(&a, &packed, &mut whole, Epilogue::Bias(&bias));
        let mut blocked = vec![0.0f32; m * n];
        for (begin, end) in [(0usize, 5usize), (5, 6), (6, 30), (30, 37)] {
            gemm_packed(
                &a[begin * k..end * k],
                &packed,
                &mut blocked[begin * n..end * n],
                Epilogue::Bias(&bias),
            );
        }
        assert_eq!(whole, blocked);
    }

    #[test]
    fn exact_env_var_selects_the_scalar_path() {
        // The parse is tested directly — mutating the process environment
        // would race other tests in this binary.
        assert_eq!(GemmPath::parse(None), GemmPath::Fast);
        assert_eq!(GemmPath::parse(Some("0")), GemmPath::Fast);
        assert_eq!(GemmPath::parse(Some("")), GemmPath::Fast);
        assert_eq!(GemmPath::parse(Some("1")), GemmPath::Exact);
        assert_eq!(GemmPath::parse(Some("true")), GemmPath::Exact);
        assert_eq!(GemmPath::parse(Some("TRUE")), GemmPath::Exact);
        assert_eq!(GemmPath::default(), GemmPath::Fast);
    }

    #[test]
    #[should_panic(expected = "at least one output column")]
    fn zero_column_packed_gemm_panics() {
        let packed = pack_b(&[], 3, 0);
        let mut out = [0.0f32; 0];
        gemm_packed(&[0.0; 9], &packed, &mut out, Epilogue::None);
    }
}
