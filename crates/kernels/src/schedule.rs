//! Wave scheduling and buffer recycling for the graph executor.
//!
//! [`ExecPlan`] partitions a graph's deterministic topological order into
//! *waves* — maximal sets of nodes whose inputs were all produced in
//! earlier waves. Nodes within a wave are mutually independent, so the
//! executor can evaluate them concurrently and merge results by index
//! without changing any output bit. The wave structure depends only on the
//! graph, never on the worker count, which is what makes the executor's
//! memory accounting width-invariant.
//!
//! [`Arena`] is the size-bucketed free list that backs the executor's
//! liveness-based memory plan: buffers of tensors that died at a wave
//! boundary are parked here and handed back out for same-sized outputs of
//! later waves, zeroed, instead of hitting the allocator again.

use pimflow_ir::analysis::{liveness, Liveness};
use pimflow_ir::{Graph, GraphError, NodeId};
use std::collections::HashMap;

/// A wave-partitioned execution schedule plus the liveness facts the
/// executor's memory plan consumes.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Dependency levels of the topological order: every node in
    /// `waves[i]` depends only on graph inputs and nodes in `waves[..i]`.
    /// Within a wave, nodes keep their topological (ascending id) order.
    pub waves: Vec<Vec<NodeId>>,
    /// Per-value use counts, stickiness, and last-use steps.
    pub liveness: Liveness,
}

impl ExecPlan {
    /// Builds the schedule for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph has a cycle.
    pub fn new(graph: &Graph) -> Result<ExecPlan, GraphError> {
        let liveness = liveness(graph)?;
        // Level of a value: 0 for graph inputs, 1 + producing node's wave
        // for node outputs. A node's wave is the max of its input levels.
        let mut value_level = vec![0usize; graph.value_count()];
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        for &id in &liveness.order {
            let node = graph.node(id);
            let wave = node
                .inputs
                .iter()
                .map(|v| value_level[v.index()])
                .max()
                .unwrap_or(0);
            if wave == waves.len() {
                waves.push(Vec::new());
            }
            waves[wave].push(id);
            value_level[node.output.index()] = wave + 1;
        }
        Ok(ExecPlan { waves, liveness })
    }

    /// Total number of scheduled nodes.
    pub fn node_count(&self) -> usize {
        self.liveness.order.len()
    }
}

/// Size-bucketed free list recycling tensor buffers.
///
/// Buckets are keyed by *exact* element count: reusing a buffer for a
/// differently-sized tensor would make reuse opportunities depend on
/// allocation order, and the executor promises its statistics are
/// identical at every worker width. Returned buffers are zero-filled, the
/// same state [`crate::Tensor::zeros`] provides, so the executor's
/// fill-style kernels can rely on zeroed output.
#[derive(Debug, Default)]
pub struct Arena {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    /// Buffers handed out from a bucket instead of freshly allocated.
    pub reuses: u64,
    /// Buffers that had to be freshly allocated.
    pub allocs: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Returns a zero-filled buffer of exactly `numel` elements, recycled
    /// if a same-sized buffer has been [`give`](Arena::give)n back.
    pub fn take(&mut self, numel: usize) -> Vec<f32> {
        if let Some(mut buf) = self.buckets.get_mut(&numel).and_then(Vec::pop) {
            self.reuses += 1;
            buf.clear();
            buf.resize(numel, 0.0);
            buf
        } else {
            self.allocs += 1;
            vec![0.0; numel]
        }
    }

    /// Parks a dead tensor's buffer for reuse. Zero-capacity buffers are
    /// dropped — nothing to recycle.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.buckets.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Bytes currently parked in the free list.
    pub fn held_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|(numel, bufs)| numel * bufs.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::{GraphBuilder, Shape};

    #[test]
    fn chain_gets_one_node_per_wave() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 3));
        let c1 = b.conv(x, 4, 3, 1, 1);
        let r = b.relu(c1);
        let c2 = b.conv(r, 4, 3, 1, 1);
        let g = b.finish(c2);
        let plan = ExecPlan::new(&g).unwrap();
        assert_eq!(plan.waves.len(), 3);
        assert!(plan.waves.iter().all(|w| w.len() == 1));
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn parallel_branches_share_a_wave() {
        // x -> (a, b) -> add: branches are independent, so they land in
        // the same wave; the add waits for both.
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 4));
        let l = b.conv1x1(x, 4);
        let r = b.conv1x1(x, 4);
        let join = b.add(l, r);
        let g = b.finish(join);
        let plan = ExecPlan::new(&g).unwrap();
        assert_eq!(plan.waves.len(), 2);
        assert_eq!(plan.waves[0].len(), 2);
        assert_eq!(plan.waves[1].len(), 1);
    }

    #[test]
    fn waves_respect_uneven_depths() {
        // One branch is deeper: the join's wave is max(depths) + 1.
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 8, 8, 4));
        let shallow = b.conv1x1(x, 4);
        let d1 = b.conv1x1(x, 4);
        let d2 = b.relu(d1);
        let join = b.add(shallow, d2);
        let g = b.finish(join);
        let plan = ExecPlan::new(&g).unwrap();
        assert_eq!(plan.waves.len(), 3);
        assert_eq!(plan.waves[0].len(), 2); // shallow, d1
        assert_eq!(plan.waves[1].len(), 1); // d2
        assert_eq!(plan.waves[2].len(), 1); // join
    }

    #[test]
    fn arena_recycles_exact_sizes_only() {
        let mut a = Arena::new();
        let b1 = a.take(16);
        assert_eq!(a.allocs, 1);
        a.give(b1);
        assert_eq!(a.held_bytes(), 16 * 4);
        // Different size: no reuse.
        let b2 = a.take(32);
        assert_eq!((a.allocs, a.reuses), (2, 0));
        a.give(b2);
        // Same size: reused and zeroed.
        let mut b3 = a.take(16);
        assert_eq!((a.allocs, a.reuses), (2, 1));
        assert!(b3.iter().all(|&v| v == 0.0));
        b3[0] = 5.0;
        a.give(b3);
        let b4 = a.take(16);
        assert!(
            b4.iter().all(|&v| v == 0.0),
            "recycled buffer must be zeroed"
        );
    }

    #[test]
    fn arena_ignores_empty_buffers() {
        let mut a = Arena::new();
        a.give(Vec::new());
        assert_eq!(a.held_bytes(), 0);
    }
}
