//! Deterministic parameter generation.
//!
//! The model zoo carries no weight data; instead every node has a
//! `weight_key` and parameters are regenerated on demand from that key.
//! Transformation passes clone the key when they split a node, so the two
//! halves see identical filters — the property that makes "transformed graph
//! ≡ original graph" testable numerically.

use pimflow_rng::Rng;

/// Distinguishes the different parameter tensors of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamRole {
    /// Convolution filters / dense weight matrix.
    Weight,
    /// Additive bias.
    Bias,
    /// Batch-norm scale (gamma / sqrt(var)).
    BnScale,
    /// Batch-norm shift (beta - mean * scale).
    BnShift,
}

impl ParamRole {
    fn salt(self) -> u64 {
        match self {
            ParamRole::Weight => 0x57,
            ParamRole::Bias => 0xB1A5,
            ParamRole::BnScale => 0x5CA1E,
            ParamRole::BnShift => 0x5817F7,
        }
    }
}

fn role_rng(key: u64, role: ParamRole) -> Rng {
    let seed = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(role.salt().wrapping_mul(0xD1B5_4A32_D192_ED03));
    Rng::seed_from_u64(seed)
}

fn draw(rng: &mut Rng, role: ParamRole, scale: f32) -> f32 {
    match role {
        // Batch-norm scale must stay away from zero to avoid collapsing
        // activations; draw from [0.5, 1.5].
        ParamRole::BnScale => rng.range_f32(0.5, 1.5),
        _ => rng.range_f32(-scale, scale),
    }
}

/// Generates `len` deterministic parameter values for `(key, role)`.
///
/// Values are drawn uniformly from `[-s, s]` where `s = 1/sqrt(fan_in + 1)`,
/// keeping activations numerically tame through deep stacks (a crude
/// Xavier/Glorot initialization — the executor only needs well-conditioned
/// numbers, not trained accuracy).
pub fn param_vec(key: u64, role: ParamRole, len: usize, fan_in: usize) -> Vec<f32> {
    let mut rng = role_rng(key, role);
    let scale = 1.0 / ((fan_in as f32) + 1.0).sqrt();
    (0..len).map(|_| draw(&mut rng, role, scale)).collect()
}

/// Generates columns `begin..end` of each of the `rows` rows of the
/// row-major `[rows, row_len]` parameter matrix for `(key, role)` — the
/// values are bit-identical to generating the full matrix with
/// [`param_vec`]`(key, role, rows * row_len, fan_in)` and slicing those
/// columns out, but only `rows * (end - begin)` values are ever
/// materialized: the generator *skips* over the unused stream positions.
///
/// This is how the executor realizes a [`ParamView`] for a node split
/// along its output axis without allocating the original node's whole
/// weight matrix.
///
/// [`ParamView`]: pimflow_ir::graph::ParamView
///
/// # Panics
///
/// Panics unless `begin <= end <= row_len`.
pub fn param_cols(
    key: u64,
    role: ParamRole,
    rows: usize,
    row_len: usize,
    begin: usize,
    end: usize,
    fan_in: usize,
) -> Vec<f32> {
    assert!(
        begin <= end && end <= row_len,
        "invalid column window {begin}..{end} of {row_len}"
    );
    let mut rng = role_rng(key, role);
    let scale = 1.0 / ((fan_in as f32) + 1.0).sqrt();
    let mut out = Vec::with_capacity(rows * (end - begin));
    for _ in 0..rows {
        rng.skip(begin);
        for _ in begin..end {
            out.push(draw(&mut rng, role, scale));
        }
        rng.skip(row_len - end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_key() {
        let a = param_vec(42, ParamRole::Weight, 16, 9);
        let b = param_vec(42, ParamRole::Weight, 16, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let a = param_vec(1, ParamRole::Weight, 16, 9);
        let b = param_vec(2, ParamRole::Weight, 16, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn roles_decorrelate() {
        let a = param_vec(1, ParamRole::Weight, 16, 9);
        let b = param_vec(1, ParamRole::Bias, 16, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn bn_scale_is_positive() {
        for v in param_vec(7, ParamRole::BnScale, 64, 1) {
            assert!((0.5..=1.5).contains(&v));
        }
    }

    #[test]
    fn param_cols_equals_materialize_and_slice() {
        // The equality contract with the old sliced-params path: for every
        // role, generating only a column window must reproduce exactly the
        // values of the full matrix at those positions.
        let (rows, row_len, fan_in) = (7, 12, 9);
        for role in [
            ParamRole::Weight,
            ParamRole::Bias,
            ParamRole::BnScale,
            ParamRole::BnShift,
        ] {
            let full = param_vec(42, role, rows * row_len, fan_in);
            for (begin, end) in [(0, row_len), (0, 5), (5, 12), (3, 9), (4, 4)] {
                let mut sliced = Vec::new();
                for r in 0..rows {
                    sliced.extend_from_slice(&full[r * row_len + begin..r * row_len + end]);
                }
                let cols = param_cols(42, role, rows, row_len, begin, end, fan_in);
                assert_eq!(cols, sliced, "role {role:?} window {begin}..{end}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid column window")]
    fn param_cols_rejects_inverted_window() {
        param_cols(1, ParamRole::Weight, 2, 8, 6, 3, 8);
    }

    #[test]
    fn magnitude_shrinks_with_fan_in() {
        let wide = param_vec(3, ParamRole::Weight, 1000, 10_000);
        let max = wide.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 0.011);
    }
}
