//! Deterministic parameter generation.
//!
//! The model zoo carries no weight data; instead every node has a
//! `weight_key` and parameters are regenerated on demand from that key.
//! Transformation passes clone the key when they split a node, so the two
//! halves see identical filters — the property that makes "transformed graph
//! ≡ original graph" testable numerically.

use pimflow_rng::Rng;

/// Distinguishes the different parameter tensors of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamRole {
    /// Convolution filters / dense weight matrix.
    Weight,
    /// Additive bias.
    Bias,
    /// Batch-norm scale (gamma / sqrt(var)).
    BnScale,
    /// Batch-norm shift (beta - mean * scale).
    BnShift,
}

impl ParamRole {
    fn salt(self) -> u64 {
        match self {
            ParamRole::Weight => 0x57,
            ParamRole::Bias => 0xB1A5,
            ParamRole::BnScale => 0x5CA1E,
            ParamRole::BnShift => 0x5817F7,
        }
    }
}

/// Generates `len` deterministic parameter values for `(key, role)`.
///
/// Values are drawn uniformly from `[-s, s]` where `s = 1/sqrt(fan_in + 1)`,
/// keeping activations numerically tame through deep stacks (a crude
/// Xavier/Glorot initialization — the executor only needs well-conditioned
/// numbers, not trained accuracy).
pub fn param_vec(key: u64, role: ParamRole, len: usize, fan_in: usize) -> Vec<f32> {
    let seed = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(role.salt().wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut rng = Rng::seed_from_u64(seed);
    let scale = 1.0 / ((fan_in as f32) + 1.0).sqrt();
    match role {
        // Batch-norm scale must stay away from zero to avoid collapsing
        // activations; draw from [0.5, 1.5].
        ParamRole::BnScale => (0..len).map(|_| rng.range_f32(0.5, 1.5)).collect(),
        _ => (0..len).map(|_| rng.range_f32(-scale, scale)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_key() {
        let a = param_vec(42, ParamRole::Weight, 16, 9);
        let b = param_vec(42, ParamRole::Weight, 16, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let a = param_vec(1, ParamRole::Weight, 16, 9);
        let b = param_vec(2, ParamRole::Weight, 16, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn roles_decorrelate() {
        let a = param_vec(1, ParamRole::Weight, 16, 9);
        let b = param_vec(1, ParamRole::Bias, 16, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn bn_scale_is_positive() {
        for v in param_vec(7, ParamRole::BnScale, 64, 1) {
            assert!((0.5..=1.5).contains(&v));
        }
    }

    #[test]
    fn magnitude_shrinks_with_fan_in() {
        let wide = param_vec(3, ParamRole::Weight, 1000, 10_000);
        let max = wide.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 0.011);
    }
}
