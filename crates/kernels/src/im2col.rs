//! Convolution lowering (im2col).
//!
//! The paper maps CONV layers to DRAM-PIM by applying convolution lowering
//! first and then iterating matrix-vector multiplications over the rows of
//! the lowered input matrix (§2.2, Fig. 2). This module implements the
//! lowering itself; the PIM code generator consumes only its *dimensions*,
//! while tests use the full matrices to prove `conv == im2col x GEMM`.

use crate::tensor::Tensor;
use pimflow_ir::{Conv2dAttrs, Shape};

/// Dimensions of a lowered convolution, as consumed by the DRAM-PIM code
/// generator: the filter matrix is `[k_elems, out_channels]` resident in the
/// memory cell arrays, and each of the `rows` input-matrix rows (length
/// `k_elems`) is pushed to the global buffers by GWRITE commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredConv {
    /// Rows of the lowered input matrix (`N * OH * OW`).
    pub rows: usize,
    /// Row length (`KH * KW * IC` for regular, `KH * KW` per channel for
    /// depthwise).
    pub k_elems: usize,
    /// Columns of the filter matrix (output channels).
    pub out_channels: usize,
    /// True if each GWRITE row gathers from non-contiguous addresses
    /// (any kernel other than pointwise), requiring the strided-GWRITE
    /// command extension (§4.1).
    pub strided: bool,
}

/// Computes the lowered dimensions of a convolution over `input_shape`.
///
/// # Panics
///
/// Panics if `input_shape` is not 4-D or the kernel does not fit.
pub fn lowered_dims(input_shape: &Shape, attrs: &Conv2dAttrs) -> LoweredConv {
    assert_eq!(input_shape.rank(), 4, "conv input must be NHWC");
    let (n, h, w, c) = (
        input_shape.n(),
        input_shape.h(),
        input_shape.w(),
        input_shape.c(),
    );
    let oh = pimflow_ir::shape_infer::conv_out_extent(
        h,
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .expect("kernel must fit input height");
    let ow = pimflow_ir::shape_infer::conv_out_extent(
        w,
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .expect("kernel must fit input width");
    let k_spatial = attrs.kernel.h * attrs.kernel.w;
    LoweredConv {
        rows: n * oh * ow,
        k_elems: if attrs.groups > 1 {
            k_spatial
        } else {
            k_spatial * c
        },
        out_channels: attrs.out_channels,
        strided: !(attrs.kernel.h == 1
            && attrs.kernel.w == 1
            && attrs.padding.h == 0
            && attrs.padding.w == 0),
    }
}

/// Materializes the lowered input matrix `[rows, k_elems]` for a regular
/// (groups = 1) convolution over a batch-1 NHWC input.
///
/// # Panics
///
/// Panics on depthwise attrs or batch != 1 (tests only need batch 1, the
/// paper's inference setting).
pub fn im2col(x: &Tensor, attrs: &Conv2dAttrs) -> Tensor {
    assert_eq!(attrs.groups, 1, "im2col supports regular conv only");
    assert_eq!(x.shape().n(), 1, "im2col supports batch 1");
    let dims = lowered_dims(x.shape(), attrs);
    let (ih, iw, ic) = (x.shape().h(), x.shape().w(), x.shape().c());
    let oh = pimflow_ir::shape_infer::conv_out_extent(
        ih,
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .unwrap();
    let ow = pimflow_ir::shape_infer::conv_out_extent(
        iw,
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .unwrap();
    let mut m = Tensor::zeros(Shape::rf(dims.rows, dims.k_elems));
    let xd = x.data();
    let md = m.data_mut();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for ky in 0..attrs.kernel.h {
                let iy = (oy * attrs.stride.h + ky) as isize - attrs.padding.h as isize;
                for kx in 0..attrs.kernel.w {
                    let ix = (ox * attrs.stride.w + kx) as isize - attrs.padding.w as isize;
                    for ci in 0..ic {
                        let col = (ky * attrs.kernel.w + kx) * ic + ci;
                        let v = if iy >= 0 && (iy as usize) < ih && ix >= 0 && (ix as usize) < iw {
                            xd[((iy as usize) * iw + ix as usize) * ic + ci]
                        } else {
                            0.0
                        };
                        md[row * dims.k_elems + col] = v;
                    }
                }
            }
        }
    }
    m
}

/// Plain GEMM: `[m, k] x [k, n] -> [m, n]` (used to check the lowering).
pub fn gemm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.shape().n(), a.shape().c());
    let (k2, n) = (b.shape().n(), b.shape().c());
    assert_eq!(k, k2, "gemm inner dimension mismatch");
    let mut out = Tensor::zeros(Shape::rf(m, n));
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let av = ad[i * k + kk];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                od[i * n + j] += av * bd[kk * n + j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv2d;
    use pimflow_ir::Hw;

    #[test]
    fn lowered_dims_pointwise() {
        let d = lowered_dims(&Shape::nhwc(1, 14, 14, 64), &Conv2dAttrs::pointwise(128));
        assert_eq!(d.rows, 14 * 14);
        assert_eq!(d.k_elems, 64);
        assert_eq!(d.out_channels, 128);
        assert!(!d.strided);
    }

    #[test]
    fn lowered_dims_3x3_is_strided() {
        let attrs = Conv2dAttrs {
            out_channels: 16,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let d = lowered_dims(&Shape::nhwc(1, 8, 8, 4), &attrs);
        assert_eq!(d.rows, 64);
        assert_eq!(d.k_elems, 36);
        assert!(d.strided);
    }

    #[test]
    fn im2col_gemm_equals_direct_conv() {
        // The fundamental lowering identity the PIM mapping relies on.
        let attrs = Conv2dAttrs {
            out_channels: 5,
            kernel: Hw::square(3),
            stride: Hw::square(2),
            padding: Hw::square(1),
            groups: 1,
        };
        let x = Tensor::from_fn(Shape::nhwc(1, 9, 7, 3), |i| {
            ((i * 31 + 7) % 17) as f32 * 0.1 - 0.8
        });
        let k_elems = 3 * 3 * 3;
        let w: Vec<f32> = (0..k_elems * 5)
            .map(|i| ((i * 13 + 5) % 11) as f32 * 0.05 - 0.25)
            .collect();
        let bias = vec![0.0; 5];

        let direct = conv2d(&x, &w, &bias, &attrs);
        let lowered = im2col(&x, &attrs);
        let w_mat = Tensor::from_vec(Shape::rf(k_elems, 5), w);
        let via_gemm = gemm(&lowered, &w_mat);

        // Reshape direct output [1,oh,ow,oc] to [rows, oc] for comparison.
        let rows = direct.shape().h() * direct.shape().w();
        let direct2 = Tensor::from_vec(Shape::rf(rows, 5), direct.data().to_vec());
        assert!(via_gemm.allclose(&direct2, 1e-4));
    }
}
