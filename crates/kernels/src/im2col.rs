//! Convolution lowering (im2col).
//!
//! The paper maps CONV layers to DRAM-PIM by applying convolution lowering
//! first and then iterating matrix-vector multiplications over the rows of
//! the lowered input matrix (§2.2, Fig. 2). This module implements the
//! lowering itself; the PIM code generator consumes only its *dimensions*,
//! while tests use the full matrices to prove `conv == im2col x GEMM`.

use crate::microkernel::{self, Epilogue, GemmPath};
use crate::probe::{self, ProbePoint};
use crate::tensor::Tensor;
use pimflow_ir::{Conv2dAttrs, Shape};
use std::fmt;

/// Errors from malformed kernel inputs, the fallible counterpart of the
/// executor's [`ExecError`](crate::ExecError): validation that used to
/// panic now reports what was wrong with the operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Operand shapes are inconsistent (wrong rank, mismatched inner
    /// dimension, ...).
    ShapeMismatch(String),
    /// The operation is valid but outside what the reference kernel
    /// implements (e.g. grouped convolution in `im2col`).
    Unsupported(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            KernelError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Dimensions of a lowered convolution, as consumed by the DRAM-PIM code
/// generator: the filter matrix is `[k_elems, out_channels]` resident in the
/// memory cell arrays, and each of the `rows` input-matrix rows (length
/// `k_elems`) is pushed to the global buffers by GWRITE commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredConv {
    /// Rows of the lowered input matrix (`N * OH * OW`).
    pub rows: usize,
    /// Row length (`KH * KW * IC` for regular, `KH * KW` per channel for
    /// depthwise).
    pub k_elems: usize,
    /// Columns of the filter matrix (output channels).
    pub out_channels: usize,
    /// True if each GWRITE row gathers from non-contiguous addresses
    /// (any kernel other than pointwise), requiring the strided-GWRITE
    /// command extension (§4.1).
    pub strided: bool,
}

/// Computes the lowered dimensions of a convolution over `input_shape`.
///
/// # Panics
///
/// Panics if `input_shape` is not 4-D or the kernel does not fit.
pub fn lowered_dims(input_shape: &Shape, attrs: &Conv2dAttrs) -> LoweredConv {
    assert_eq!(input_shape.rank(), 4, "conv input must be NHWC");
    let (n, h, w, c) = (
        input_shape.n(),
        input_shape.h(),
        input_shape.w(),
        input_shape.c(),
    );
    let oh = pimflow_ir::shape_infer::conv_out_extent(
        h,
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .expect("kernel must fit input height");
    let ow = pimflow_ir::shape_infer::conv_out_extent(
        w,
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .expect("kernel must fit input width");
    let k_spatial = attrs.kernel.h * attrs.kernel.w;
    LoweredConv {
        rows: n * oh * ow,
        k_elems: if attrs.groups > 1 {
            k_spatial
        } else {
            k_spatial * c
        },
        out_channels: attrs.out_channels,
        strided: !(attrs.kernel.h == 1
            && attrs.kernel.w == 1
            && attrs.padding.h == 0
            && attrs.padding.w == 0),
    }
}

/// Materializes the lowered input matrix `[rows, k_elems]` for a regular
/// (groups = 1) convolution over an NHWC input. Batched inputs are lowered
/// image by image: image `b` occupies rows `b * OH * OW ..`.
///
/// # Errors
///
/// Returns [`KernelError::Unsupported`] for grouped (depthwise) attrs —
/// lowering interleaves all input channels into one row, which only makes
/// sense when every filter sees every channel.
pub fn im2col(x: &Tensor, attrs: &Conv2dAttrs) -> Result<Tensor, KernelError> {
    let dims = lowered_dims(x.shape(), attrs);
    let mut buf = Vec::new();
    im2col_rows(x, attrs, 0, dims.rows, &mut buf)?;
    Ok(Tensor::from_vec(Shape::rf(dims.rows, dims.k_elems), buf))
}

/// Materializes only rows `row_begin..row_end` of the lowered input matrix
/// into `out` (cleared and refilled; a reusable scratch buffer). Row `r` of
/// the full matrix corresponds to output position `(b, oy, ox)` with
/// `r = (b * OH + oy) * OW + ox` — exactly the rows the executor streams
/// block by block through the GEMM instead of materializing the whole
/// `[rows, k_elems]` matrix, and the unit the intra-op row sharding hands
/// to each worker.
///
/// # Errors
///
/// Returns [`KernelError::Unsupported`] for grouped (depthwise) attrs.
///
/// # Panics
///
/// Panics if the row range is out of bounds for the lowered matrix.
pub fn im2col_rows(
    x: &Tensor,
    attrs: &Conv2dAttrs,
    row_begin: usize,
    row_end: usize,
    out: &mut Vec<f32>,
) -> Result<(), KernelError> {
    let _probe = probe::span(ProbePoint::Im2colRows);
    if attrs.groups != 1 {
        return Err(KernelError::Unsupported(format!(
            "im2col supports regular conv only (groups = {})",
            attrs.groups
        )));
    }
    let dims = lowered_dims(x.shape(), attrs);
    assert!(
        row_begin <= row_end && row_end <= dims.rows,
        "invalid lowered row range {row_begin}..{row_end} of {}",
        dims.rows
    );
    let (ih, iw, ic) = (x.shape().h(), x.shape().w(), x.shape().c());
    let oh = pimflow_ir::shape_infer::conv_out_extent(
        ih,
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .unwrap();
    let ow = pimflow_ir::shape_infer::conv_out_extent(
        iw,
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .unwrap();
    out.clear();
    out.resize((row_end - row_begin) * dims.k_elems, 0.0);
    let xd = x.data();
    for row in row_begin..row_end {
        let ox = row % ow;
        let oy = (row / ow) % oh;
        let b = row / (ow * oh);
        let base = (row - row_begin) * dims.k_elems;
        for ky in 0..attrs.kernel.h {
            let iy = (oy * attrs.stride.h + ky) as isize - attrs.padding.h as isize;
            if iy < 0 || iy as usize >= ih {
                continue;
            }
            for kx in 0..attrs.kernel.w {
                let ix = (ox * attrs.stride.w + kx) as isize - attrs.padding.w as isize;
                if ix < 0 || ix as usize >= iw {
                    continue;
                }
                let src = (((b * ih) + iy as usize) * iw + ix as usize) * ic;
                let dst = base + (ky * attrs.kernel.w + kx) * ic;
                out[dst..dst + ic].copy_from_slice(&xd[src..src + ic]);
            }
        }
    }
    Ok(())
}

/// Columns of `b` touched per k-block before moving down the k dimension.
/// 64 f32 rows of a typical `n` keep the hot `b` slice and the output row
/// in L1/L2 together (cache blocking, the CPU analogue of the shared-memory
/// tiling every GPU GEMM uses).
const GEMM_K_BLOCK: usize = 64;

/// The scalar oracle core shared by [`gemm`]'s exact path and the exact
/// conv path: `out[m, n] += a[m, k] x b[k, n]`, blocked over the k
/// dimension.
///
/// `k` advances in ascending order for every output element (the blocks
/// are ascending and `kk` ascends within a block), so the float
/// accumulation order — and therefore the result, bit for bit — matches
/// the naive `i, k, j` loop nest. Every product is accumulated, including
/// zero ones: an earlier `av == 0.0` skip diverged from the naive loop on
/// signed zeros (a `-0.0` accumulator survived the skip where the naive
/// loop's `+ 0.0` flushed it to `+0.0`), breaking the bit-identity claim.
///
/// Callers guarantee `n > 0` ([`gemm`] rejects zero-dimension operands and
/// `conv2d_out_shape` rejects zero output channels), so the former
/// `n.max(1)` guard — which silently computed a wrong `m` for degenerate
/// inputs — is gone.
pub(crate) fn gemm_accumulate(ad: &[f32], bd: &[f32], od: &mut [f32], k: usize, n: usize) {
    let _probe = probe::span(ProbePoint::GemmScalar);
    debug_assert!(n > 0, "gemm_accumulate callers reject n == 0");
    let m = od.len() / n;
    for kb in (0..k).step_by(GEMM_K_BLOCK) {
        let k_end = (kb + GEMM_K_BLOCK).min(k);
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let o_row = &mut od[i * n..(i + 1) * n];
            for kk in kb..k_end {
                let av = a_row[kk];
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// GEMM: `[m, k] x [k, n] -> [m, n]`, bit-identical to the naive triple
/// loop on **both** paths: the default [`GemmPath::Fast`] register-blocked
/// micro-kernel accumulates each element's products in ascending `k` order
/// (see [`crate::microkernel`]), and the [`GemmPath::Exact`] scalar loop is
/// the k-blocked oracle (`gemm_accumulate`). The path is read from
/// `PIMFLOW_EXACT_KERNELS`; use [`gemm_with`] to pin it.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if either operand is not 2-D, the
/// inner dimensions disagree, or any dimension is zero.
pub fn gemm(a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    gemm_with(a, b, GemmPath::from_env())
}

/// [`gemm`] with an explicit [`GemmPath`] instead of the environment
/// lookup.
///
/// # Errors
///
/// Same contract as [`gemm`].
pub fn gemm_with(a: &Tensor, b: &Tensor, path: GemmPath) -> Result<Tensor, KernelError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(KernelError::ShapeMismatch(format!(
            "gemm operands must be 2-D, got {} and {}",
            a.shape(),
            b.shape()
        )));
    }
    let (m, k) = (a.shape().n(), a.shape().c());
    let (k2, n) = (b.shape().n(), b.shape().c());
    if k != k2 {
        return Err(KernelError::ShapeMismatch(format!(
            "gemm inner dimension mismatch: [{m}, {k}] x [{k2}, {n}]"
        )));
    }
    if m == 0 || k == 0 || n == 0 {
        return Err(KernelError::ShapeMismatch(format!(
            "gemm operands must have non-zero dimensions: [{m}, {k}] x [{k}, {n}]"
        )));
    }
    let mut out = Tensor::zeros(Shape::rf(m, n));
    match path {
        GemmPath::Fast => {
            let packed = microkernel::pack_b(b.data(), k, n);
            microkernel::gemm_packed(a.data(), &packed, out.data_mut(), Epilogue::None);
        }
        GemmPath::Exact => gemm_accumulate(a.data(), b.data(), out.data_mut(), k, n),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv2d_direct;
    use pimflow_ir::Hw;

    #[test]
    fn lowered_dims_pointwise() {
        let d = lowered_dims(&Shape::nhwc(1, 14, 14, 64), &Conv2dAttrs::pointwise(128));
        assert_eq!(d.rows, 14 * 14);
        assert_eq!(d.k_elems, 64);
        assert_eq!(d.out_channels, 128);
        assert!(!d.strided);
    }

    #[test]
    fn lowered_dims_3x3_is_strided() {
        let attrs = Conv2dAttrs {
            out_channels: 16,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let d = lowered_dims(&Shape::nhwc(1, 8, 8, 4), &attrs);
        assert_eq!(d.rows, 64);
        assert_eq!(d.k_elems, 36);
        assert!(d.strided);
    }

    #[test]
    fn im2col_gemm_equals_direct_conv() {
        // The fundamental lowering identity the PIM mapping relies on —
        // checked for batch 1 and for a batched input (each image lowered
        // to its own row block).
        let attrs = Conv2dAttrs {
            out_channels: 5,
            kernel: Hw::square(3),
            stride: Hw::square(2),
            padding: Hw::square(1),
            groups: 1,
        };
        let k_elems = 3 * 3 * 3;
        let w: Vec<f32> = (0..k_elems * 5)
            .map(|i| ((i * 13 + 5) % 11) as f32 * 0.05 - 0.25)
            .collect();
        let bias = vec![0.0; 5];
        for batch in [1, 3] {
            let x = Tensor::from_fn(Shape::nhwc(batch, 9, 7, 3), |i| {
                ((i * 31 + 7) % 17) as f32 * 0.1 - 0.8
            });
            let direct = conv2d_direct(&x, &w, &bias, &attrs).unwrap();
            let lowered = im2col(&x, &attrs).unwrap();
            let w_mat = Tensor::from_vec(Shape::rf(k_elems, 5), w.clone());
            let via_gemm = gemm(&lowered, &w_mat).unwrap();

            // Reshape direct output [n,oh,ow,oc] to [rows, oc].
            let rows = batch * direct.shape().h() * direct.shape().w();
            assert_eq!(lowered.shape().n(), rows);
            let direct2 = Tensor::from_vec(Shape::rf(rows, 5), direct.data().to_vec());
            assert!(via_gemm.allclose(&direct2, 1e-4), "batch {batch}");
        }
    }

    #[test]
    fn blocked_gemm_is_bit_identical_to_naive() {
        // k > GEMM_K_BLOCK so blocking actually splits the loop.
        let (m, k, n) = (7, 2 * GEMM_K_BLOCK + 13, 9);
        let a = Tensor::from_fn(Shape::rf(m, k), |i| ((i * 29 + 3) % 23) as f32 * 0.07 - 0.7);
        let b = Tensor::from_fn(Shape::rf(k, n), |i| {
            ((i * 17 + 11) % 19) as f32 * 0.09 - 0.8
        });
        let blocked = gemm(&a, &b).unwrap();
        let (ad, bd) = (a.data(), b.data());
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    naive[i * n + j] += ad[i * k + kk] * bd[kk * n + j];
                }
            }
        }
        assert_eq!(blocked.data(), &naive[..], "accumulation order must match");
    }

    #[test]
    fn im2col_rows_matches_full_lowering() {
        let attrs = Conv2dAttrs {
            out_channels: 4,
            kernel: Hw::square(3),
            stride: Hw::square(2),
            padding: Hw::square(1),
            groups: 1,
        };
        let x = Tensor::from_fn(Shape::nhwc(2, 7, 6, 3), |i| {
            ((i * 19 + 5) % 11) as f32 - 4.0
        });
        let full = im2col(&x, &attrs).unwrap();
        let k = full.shape().c();
        let rows = full.shape().n();
        let mut scratch = Vec::new();
        for (begin, end) in [(0, rows), (0, 1), (rows - 1, rows), (3, 11), (5, 5)] {
            im2col_rows(&x, &attrs, begin, end, &mut scratch).unwrap();
            assert_eq!(
                &scratch[..],
                &full.data()[begin * k..end * k],
                "rows {begin}..{end}"
            );
        }
        // The scratch buffer is cleared between calls, not appended to.
        im2col_rows(&x, &attrs, 0, 2, &mut scratch).unwrap();
        assert_eq!(scratch.len(), 2 * k);
    }

    #[test]
    fn gemm_rejects_malformed_operands() {
        let a = Tensor::zeros(Shape::rf(2, 3));
        let b = Tensor::zeros(Shape::rf(4, 5));
        assert!(matches!(gemm(&a, &b), Err(KernelError::ShapeMismatch(_))));
        let four_d = Tensor::zeros(Shape::nhwc(1, 2, 3, 4));
        assert!(matches!(
            gemm(&four_d, &b),
            Err(KernelError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn gemm_rejects_zero_dimension_operands() {
        // Formerly the scalar core papered over n == 0 with an `n.max(1)`
        // guard (computing a bogus m from a zero-sized output); degenerate
        // operands are now a surfaced error on both paths.
        for (m, k, n) in [(0, 3, 4), (2, 0, 4), (2, 3, 0)] {
            let a = Tensor::zeros(Shape::rf(m, k));
            let b = Tensor::zeros(Shape::rf(k, n));
            for path in [GemmPath::Fast, GemmPath::Exact] {
                let err = gemm_with(&a, &b, path).unwrap_err();
                assert!(
                    matches!(&err, KernelError::ShapeMismatch(m) if m.contains("non-zero")),
                    "({m}, {k}, {n}) via {path:?}: {err}"
                );
            }
        }
    }

    #[test]
    fn gemm_preserves_signed_zero_sums() {
        // Regression: the old `av == 0.0` skip in gemm_accumulate left a
        // `-0.0` accumulator untouched where the naive loop's `+ 0.0`
        // flushes it to `+0.0` — so the "bit-identical" claim was false
        // exactly on signed zeros. A row of `-0.0` against any B must now
        // produce `+0.0` (IEEE: -0.0 * x + 0.0 * y ... sums to +0.0) on
        // both paths.
        let a = Tensor::from_vec(Shape::rf(1, 3), vec![-0.0, -0.0, -0.0]);
        let b = Tensor::from_fn(Shape::rf(3, 4), |i| i as f32 + 1.0);
        for path in [GemmPath::Fast, GemmPath::Exact] {
            let out = gemm_with(&a, &b, path).unwrap();
            let mut naive = vec![0.0f32; 4];
            for kk in 0..3 {
                for (j, cell) in naive.iter_mut().enumerate() {
                    *cell += a.data()[kk] * b.data()[kk * 4 + j];
                }
            }
            for (got, want) in out.data().iter().zip(&naive) {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{path:?}: {got} vs naive {want}"
                );
            }
        }
    }

    #[test]
    fn fast_and_exact_paths_are_bit_identical_for_plain_gemm() {
        // Epilogue-free GEMM accumulates in the same per-element order on
        // both paths, so even the micro-kernel is bit-identical here.
        let (m, k, n) = (13, 2 * GEMM_K_BLOCK + 5, 11);
        let a = Tensor::from_fn(Shape::rf(m, k), |i| ((i * 29 + 3) % 23) as f32 * 0.07 - 0.7);
        let b = Tensor::from_fn(Shape::rf(k, n), |i| {
            ((i * 17 + 11) % 19) as f32 * 0.09 - 0.8
        });
        let fast = gemm_with(&a, &b, GemmPath::Fast).unwrap();
        let exact = gemm_with(&a, &b, GemmPath::Exact).unwrap();
        assert_eq!(fast.data(), exact.data());
    }

    #[test]
    fn im2col_rejects_grouped_conv() {
        let x = Tensor::zeros(Shape::nhwc(1, 4, 4, 8));
        let attrs = Conv2dAttrs {
            out_channels: 8,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 8,
        };
        let err = im2col(&x, &attrs).unwrap_err();
        assert!(matches!(err, KernelError::Unsupported(_)));
        assert!(err.to_string().contains("groups"));
    }
}
