//! Graph executor: evaluates a [`Graph`] over concrete tensors.
//!
//! Parameters are regenerated deterministically from each node's
//! `weight_key` (see [`crate::params`]), so execution is a pure function of
//! `(graph structure, weight keys, inputs)`. Two graphs that are supposed to
//! be semantically equivalent — e.g. before and after the MD-DP split pass —
//! can therefore be compared by running both on the same input.

use crate::ops;
use crate::params::{param_vec, ParamRole};
use crate::tensor::Tensor;
use pimflow_ir::{Graph, GraphError, Op, ValueId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced while executing a graph.
#[derive(Debug)]
pub enum ExecError {
    /// The graph itself is malformed.
    Graph(GraphError),
    /// An input tensor was missing or had the wrong shape.
    Input(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Graph(e) => write!(f, "graph error: {e}"),
            ExecError::Input(m) => write!(f, "input error: {m}"),
        }
    }
}

impl Error for ExecError {}

impl From<GraphError> for ExecError {
    fn from(e: GraphError) -> Self {
        ExecError::Graph(e)
    }
}

/// Regenerates weight/bias parameters for a CONV (groups = 1) or FC node,
/// honouring an optional [`ParamView`]: the full `[fan_in, orig_out]` matrix
/// is generated from the key, then columns `begin..end` are kept, so a node
/// split along its output axis sees exactly its slice of the original
/// weights.
///
/// [`ParamView`]: pimflow_ir::graph::ParamView
fn sliced_params(
    key: u64,
    fan_in: usize,
    out: usize,
    view: Option<&pimflow_ir::graph::ParamView>,
) -> (Vec<f32>, Vec<f32>) {
    match view {
        None => (
            param_vec(key, ParamRole::Weight, fan_in * out, fan_in),
            param_vec(key, ParamRole::Bias, out, fan_in),
        ),
        Some(v) => {
            assert_eq!(
                v.len(),
                out,
                "param view width must match node output width"
            );
            let full_w = param_vec(key, ParamRole::Weight, fan_in * v.orig_out, fan_in);
            let full_b = param_vec(key, ParamRole::Bias, v.orig_out, fan_in);
            let mut w = Vec::with_capacity(fan_in * out);
            for row in 0..fan_in {
                w.extend_from_slice(&full_w[row * v.orig_out + v.begin..row * v.orig_out + v.end]);
            }
            (w, full_b[v.begin..v.end].to_vec())
        }
    }
}

/// Runs `graph` on the given input tensors (one per graph input, in order)
/// and returns the output tensors (one per graph output, in order).
///
/// # Errors
///
/// Returns [`ExecError`] if the graph is malformed or inputs are missing or
/// mis-shaped.
///
/// # Examples
///
/// ```
/// use pimflow_ir::models;
/// use pimflow_kernels::{run_graph, input_tensors};
///
/// let g = models::toy();
/// let inputs = input_tensors(&g, 7);
/// let out = run_graph(&g, &inputs).unwrap();
/// assert_eq!(out[0].shape().c(), 10);
/// ```
pub fn run_graph(graph: &Graph, inputs: &[Tensor]) -> Result<Vec<Tensor>, ExecError> {
    if inputs.len() != graph.inputs().len() {
        return Err(ExecError::Input(format!(
            "expected {} inputs, got {}",
            graph.inputs().len(),
            inputs.len()
        )));
    }
    let mut env: HashMap<ValueId, Tensor> = HashMap::new();
    for (&vid, tensor) in graph.inputs().iter().zip(inputs) {
        if let Some(desc) = &graph.value(vid).desc {
            if &desc.shape != tensor.shape() {
                return Err(ExecError::Input(format!(
                    "input `{}` expects shape {}, got {}",
                    graph.value(vid).name,
                    desc.shape,
                    tensor.shape()
                )));
            }
        }
        env.insert(vid, tensor.clone());
    }

    for id in graph.topo_order()? {
        let node = graph.node(id);
        let get = |i: usize| -> &Tensor {
            env.get(&node.inputs[i])
                .expect("topological order guarantees inputs are computed")
        };
        let x = get(0);
        let key = node.weight_key;
        let out = match &node.op {
            Op::Conv2d(a) => {
                let ic = x.shape().c();
                if a.groups > 1 {
                    let fan_in = a.kernel.h * a.kernel.w;
                    let w = param_vec(key, ParamRole::Weight, fan_in * ic, fan_in);
                    let b = param_vec(key, ParamRole::Bias, a.out_channels, fan_in);
                    ops::conv2d(x, &w, &b, a)
                } else {
                    let fan_in = a.kernel.h * a.kernel.w * ic;
                    let (w, b) =
                        sliced_params(key, fan_in, a.out_channels, node.param_view.as_ref());
                    ops::conv2d(x, &w, &b, a)
                }
            }
            Op::Dense(a) => {
                let in_f = x.shape().c();
                let (w, b) = sliced_params(key, in_f, a.out_features, node.param_view.as_ref());
                ops::dense(x, &w, &b, a.out_features)
            }
            Op::Activation(k) => ops::activation(x, *k),
            Op::Add => ops::add(x, get(1)),
            Op::Mul => ops::mul(x, get(1)),
            Op::Pool(a) => ops::pool(x, a),
            Op::GlobalAvgPool => ops::global_avg_pool(x),
            Op::BatchNorm => {
                let c = x.shape().c();
                let scale = param_vec(key, ParamRole::BnScale, c, 1);
                let shift = param_vec(key, ParamRole::BnShift, c, 1);
                ops::batch_norm(x, &scale, &shift)
            }
            Op::Pad(a) => ops::pad(x, a),
            Op::Slice(a) => ops::slice(x, a),
            Op::Concat(a) => {
                let tensors: Vec<&Tensor> = node.inputs.iter().map(|v| &env[v]).collect();
                ops::concat(&tensors, a.axis)
            }
            Op::Flatten => ops::flatten(x),
            Op::Upsample { factor } => ops::upsample(x, *factor),
            Op::Identity => x.clone(),
        };
        env.insert(node.output, out);
    }

    graph
        .outputs()
        .iter()
        .map(|v| {
            env.get(v).cloned().ok_or_else(|| {
                ExecError::Input(format!("output value #{} never computed", v.index()))
            })
        })
        .collect()
}

/// Generates deterministic input tensors for every graph input (values in
/// `[-1, 1]` seeded by `seed`), for use in equivalence tests and examples.
pub fn input_tensors(graph: &Graph, seed: u64) -> Vec<Tensor> {
    graph
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &vid)| {
            let shape = graph
                .value(vid)
                .desc
                .as_ref()
                .expect("graph inputs always carry shapes")
                .shape
                .clone();
            let mut rng =
                pimflow_rng::Rng::seed_from_u64(seed.wrapping_add(i as u64 * 0x1234_5678));
            Tensor::from_fn(shape, |_| rng.range_f32(-1.0, 1.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::models;

    #[test]
    fn toy_model_runs_end_to_end() {
        let g = models::toy();
        let inputs = input_tensors(&g, 1);
        let out = run_graph(&g, &inputs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape().c(), 10);
        // Output must be finite and non-degenerate.
        assert!(out[0].data().iter().all(|v| v.is_finite()));
        let spread = out[0].data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(spread > 0.0, "all-zero output suggests broken wiring");
    }

    #[test]
    fn execution_is_deterministic() {
        let g = models::toy();
        let inputs = input_tensors(&g, 9);
        let a = run_graph(&g, &inputs).unwrap();
        let b = run_graph(&g, &inputs).unwrap();
        assert!(a[0].allclose(&b[0], 0.0));
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let g = models::toy();
        let a = run_graph(&g, &input_tensors(&g, 1)).unwrap();
        let b = run_graph(&g, &input_tensors(&g, 2)).unwrap();
        assert!(!a[0].allclose(&b[0], 1e-7));
    }

    #[test]
    fn wrong_input_count_errors() {
        let g = models::toy();
        assert!(matches!(run_graph(&g, &[]), Err(ExecError::Input(_))));
    }

    #[test]
    fn wrong_input_shape_errors() {
        let g = models::toy();
        let bad = vec![Tensor::zeros(pimflow_ir::Shape::nhwc(1, 8, 8, 3))];
        assert!(matches!(run_graph(&g, &bad), Err(ExecError::Input(_))));
    }

    #[test]
    fn bert_like_runs() {
        let g = models::bert_like(2);
        let out = run_graph(&g, &input_tensors(&g, 3)).unwrap();
        assert_eq!(out[0].shape().n(), 2);
        assert!(out[0].data().iter().all(|v| v.is_finite()));
    }
}
