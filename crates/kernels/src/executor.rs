//! Graph executor: evaluates a [`Graph`] over concrete tensors.
//!
//! Parameters are regenerated deterministically from each node's
//! `weight_key` (see [`crate::params`]), so execution is a pure function of
//! `(graph structure, weight keys, inputs)`. Two graphs that are supposed to
//! be semantically equivalent — e.g. before and after the MD-DP split pass —
//! can therefore be compared by running both on the same input.
//!
//! # Wave-scheduled execution
//!
//! [`run_graph_with`] partitions the topological order into dependency
//! *waves* (see [`crate::schedule::ExecPlan`]) and, when more than one
//! worker is configured, evaluates each wave on a scoped worker pool:
//!
//! * a wave with **one** dominant kernel shards that kernel across workers
//!   (row ranges for GEMM-style convolutions and dense layers, channel
//!   ranges for depthwise convolutions);
//! * a wave with **several** heavy kernels runs them node-parallel, merged
//!   back in wave order.
//!
//! Per-output-element accumulation order is identical at any split, so the
//! outputs are **byte-identical** to sequential execution at every
//! `PIMFLOW_JOBS` width.
//!
//! # Liveness-based memory plan
//!
//! With [`MemoryMode::Drop`] or [`MemoryMode::Arena`] the executor consults
//! the graph's liveness analysis and drops every intermediate tensor at the
//! end of the wave that consumed it last, instead of retaining the whole
//! environment until the run ends. `Arena` additionally recycles the freed
//! buffers through a size-bucketed free list ([`crate::schedule::Arena`])
//! and lets element-wise nodes *steal* a dying input's buffer outright. All
//! allocation and free decisions are made on the main thread in wave order,
//! so every counter in [`ExecStats`] is independent of the worker width.

use crate::im2col::KernelError;
use crate::microkernel::{pack_b, GemmPath, PackedB};
use crate::ops;
use crate::params::{param_cols, param_vec, ParamRole};
use crate::schedule::{Arena, ExecPlan};
use crate::tensor::Tensor;
use pimflow_ir::{Graph, GraphError, Node, Op, Shape, ValueId};
use pimflow_pool::{chunk_ranges, WorkerPool};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Minimum multiply-accumulate count for a node to be worth sharding or
/// running node-parallel; anything lighter is evaluated inline on the main
/// thread where the dispatch overhead would dominate.
pub const SHARD_MIN_MACS: usize = 1 << 18;

/// Errors produced while executing a graph.
#[derive(Debug)]
pub enum ExecError {
    /// The graph itself is malformed.
    Graph(GraphError),
    /// An input tensor was missing or had the wrong shape.
    Input(String),
    /// A kernel rejected its operands.
    Kernel(KernelError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Graph(e) => write!(f, "graph error: {e}"),
            ExecError::Input(m) => write!(f, "input error: {m}"),
            ExecError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl Error for ExecError {}

impl From<GraphError> for ExecError {
    fn from(e: GraphError) -> Self {
        ExecError::Graph(e)
    }
}

impl From<KernelError> for ExecError {
    fn from(e: KernelError) -> Self {
        ExecError::Kernel(e)
    }
}

/// What the executor does with intermediate tensors once their last
/// consumer has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Keep every value alive until the run ends (the legacy behaviour).
    Retain,
    /// Drop dead intermediates at wave boundaries; every output still gets
    /// a fresh allocation.
    Drop,
    /// Drop dead intermediates *and* recycle their buffers through a
    /// size-bucketed arena; element-wise nodes steal dying input buffers.
    #[default]
    Arena,
}

/// Execution configuration for [`run_graph_with`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Worker width for wave and intra-op parallelism. `None` reads the
    /// `PIMFLOW_JOBS` environment variable (falling back to the host's
    /// available parallelism), mirroring the search pipeline.
    pub jobs: Option<usize>,
    /// Intermediate-tensor policy; defaults to [`MemoryMode::Arena`].
    pub memory: MemoryMode,
    /// GEMM kernel path for conv and dense nodes. `None` reads the
    /// `PIMFLOW_EXACT_KERNELS` environment variable (defaulting to the
    /// register-blocked [`GemmPath::Fast`] micro-kernel); `Some` pins the
    /// path explicitly. Either path is byte-identical to itself at every
    /// worker width; [`GemmPath::Exact`] additionally reproduces the
    /// pre-micro-kernel executor bit for bit.
    pub gemm: Option<GemmPath>,
}

/// Counters describing one [`run_graph_with`] call.
///
/// Everything here is decided on the main thread in wave order, so for a
/// given `(graph, inputs, memory mode)` every field is identical at every
/// worker width except `sharded_nodes`/`node_parallel_nodes` (which count
/// what the pool actually did).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Nodes executed.
    pub nodes: usize,
    /// Dependency waves in the schedule.
    pub waves: usize,
    /// Peak bytes of simultaneously-live tensors (inputs + intermediates).
    pub peak_live_bytes: usize,
    /// Total bytes of all tensors ever inserted — what
    /// [`MemoryMode::Retain`] would hold at the end of the run.
    pub retained_bytes: usize,
    /// Intermediates dropped at wave boundaries.
    pub dropped_tensors: usize,
    /// Dying input buffers taken over in place by element-wise nodes.
    pub stolen_buffers: usize,
    /// Output buffers served from the arena's free list.
    pub arena_reuses: u64,
    /// Output buffers that had to be freshly allocated.
    pub arena_allocs: u64,
    /// Bytes still parked in the arena when the run finished.
    pub arena_held_bytes: usize,
    /// Heavy nodes sharded across workers (intra-op parallelism).
    pub sharded_nodes: usize,
    /// Heavy nodes evaluated node-parallel within a wave.
    pub node_parallel_nodes: usize,
    /// Parameter fetches served from the twin-node cache.
    pub param_cache_hits: usize,
    /// Parameter fetches that generated vectors (cached or transient).
    pub param_cache_misses: usize,
}

/// Outputs plus execution statistics from [`run_graph_with`].
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// One tensor per graph output, in graph-output order.
    pub outputs: Vec<Tensor>,
    /// Counters for this run.
    pub stats: ExecStats,
}

/// Memoizes parameter vectors for *twin* weight keys — keys shared by more
/// than one node (pipelined batch halves, MD-DP splits), where regenerating
/// per node would redo identical RNG work. Unique keys stay transient so a
/// big model's parameters are never all resident at once.
struct ParamCache {
    twins: HashSet<u64>,
    entries: HashMap<(u64, ParamRole, usize, usize), Arc<Vec<f32>>>,
    hits: usize,
    misses: usize,
}

impl ParamCache {
    fn new(graph: &Graph, order: &[pimflow_ir::NodeId]) -> Self {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &id in order {
            let node = graph.node(id);
            if matches!(node.op, Op::Conv2d(_) | Op::Dense(_) | Op::BatchNorm) {
                *counts.entry(node.weight_key).or_insert(0) += 1;
            }
        }
        ParamCache {
            twins: counts
                .into_iter()
                .filter_map(|(k, n)| (n > 1).then_some(k))
                .collect(),
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the parameter vector for `(key, role)` over the column
    /// window `window` (full width for unsliced nodes), generating it with
    /// `gen` on a miss. Only twin keys are memoized.
    fn fetch(
        &mut self,
        key: u64,
        role: ParamRole,
        window: (usize, usize),
        gen: impl FnOnce() -> Vec<f32>,
    ) -> Arc<Vec<f32>> {
        if !self.twins.contains(&key) {
            self.misses += 1;
            return Arc::new(gen());
        }
        let ck = (key, role, window.0, window.1);
        if let Some(v) = self.entries.get(&ck) {
            self.hits += 1;
            return v.clone();
        }
        self.misses += 1;
        let v = Arc::new(gen());
        self.entries.insert(ck, v.clone());
        v
    }
}

/// A node staged for execution: output shape validated, parameters fetched.
struct Staged<'g> {
    node: &'g Node,
    out_shape: Shape,
    kind: Kind,
    macs: usize,
}

enum Kind {
    Conv {
        w: Arc<Vec<f32>>,
        b: Arc<Vec<f32>>,
        /// Weight matrix packed for the micro-kernel, built once at staging
        /// and shared by every row block and sharded worker. `None` on the
        /// exact path.
        packed: Option<Arc<PackedB>>,
    },
    Depthwise {
        w: Arc<Vec<f32>>,
        b: Arc<Vec<f32>>,
    },
    Dense {
        w: Arc<Vec<f32>>,
        b: Arc<Vec<f32>>,
        /// See [`Kind::Conv::packed`].
        packed: Option<Arc<PackedB>>,
    },
    Bn {
        scale: Arc<Vec<f32>>,
        shift: Arc<Vec<f32>>,
    },
    Simple,
}

impl Staged<'_> {
    /// Worth handing to the pool: a dominant kernel with enough MACs to
    /// amortize dispatch.
    fn heavy(&self) -> bool {
        !matches!(self.kind, Kind::Bn { .. } | Kind::Simple) && self.macs >= SHARD_MIN_MACS
    }
}

/// Weight/bias for a CONV (groups = 1) or FC node, honouring an optional
/// [`ParamView`]: a node split along its output axis sees exactly columns
/// `begin..end` of the original `[fan_in, orig_out]` matrix, generated
/// directly via [`param_cols`] without materializing the full matrix.
///
/// [`ParamView`]: pimflow_ir::ParamView
fn sliced_params(
    cache: &mut ParamCache,
    key: u64,
    fan_in: usize,
    out: usize,
    view: Option<&pimflow_ir::ParamView>,
) -> (Arc<Vec<f32>>, Arc<Vec<f32>>) {
    match view {
        None => (
            cache.fetch(key, ParamRole::Weight, (0, out), || {
                param_vec(key, ParamRole::Weight, fan_in * out, fan_in)
            }),
            cache.fetch(key, ParamRole::Bias, (0, out), || {
                param_vec(key, ParamRole::Bias, out, fan_in)
            }),
        ),
        Some(v) => {
            assert_eq!(
                v.len(),
                out,
                "param view width must match node output width"
            );
            (
                cache.fetch(key, ParamRole::Weight, (v.begin, v.end), || {
                    param_cols(
                        key,
                        ParamRole::Weight,
                        fan_in,
                        v.orig_out,
                        v.begin,
                        v.end,
                        fan_in,
                    )
                }),
                cache.fetch(key, ParamRole::Bias, (v.begin, v.end), || {
                    param_cols(key, ParamRole::Bias, 1, v.orig_out, v.begin, v.end, fan_in)
                }),
            )
        }
    }
}

/// Validates a node against its input shapes, computes its output shape,
/// and fetches its parameters.
fn stage<'g>(
    graph: &'g Graph,
    id: pimflow_ir::NodeId,
    env: &[Option<Tensor>],
    cache: &mut ParamCache,
    gemm: GemmPath,
) -> Result<Staged<'g>, ExecError> {
    let node = graph.node(id);
    let shape_of = |i: usize| -> &Shape {
        env[node.inputs[i].index()]
            .as_ref()
            .expect("wave order guarantees inputs are computed")
            .shape()
    };
    let xs = shape_of(0);
    let key = node.weight_key;
    let (out_shape, kind, macs) = match &node.op {
        Op::Conv2d(a) => {
            let out_shape = ops::conv2d_out_shape(xs, a)?;
            let ic = xs.c();
            if a.groups > 1 {
                let fan_in = a.kernel.h * a.kernel.w;
                let w = cache.fetch(key, ParamRole::Weight, (0, a.out_channels), || {
                    param_vec(key, ParamRole::Weight, fan_in * ic, fan_in)
                });
                let b = cache.fetch(key, ParamRole::Bias, (0, a.out_channels), || {
                    param_vec(key, ParamRole::Bias, a.out_channels, fan_in)
                });
                let macs = out_shape.numel() * fan_in;
                (out_shape, Kind::Depthwise { w, b }, macs)
            } else {
                let fan_in = a.kernel.h * a.kernel.w * ic;
                let (w, b) =
                    sliced_params(cache, key, fan_in, a.out_channels, node.param_view.as_ref());
                let packed =
                    (gemm == GemmPath::Fast).then(|| Arc::new(pack_b(&w, fan_in, a.out_channels)));
                let macs = out_shape.numel() * fan_in;
                (out_shape, Kind::Conv { w, b, packed }, macs)
            }
        }
        Op::Dense(a) => {
            if xs.rank() != 2 {
                return Err(KernelError::ShapeMismatch(format!(
                    "dense input must be 2-D, got {xs}"
                ))
                .into());
            }
            let in_f = xs.c();
            let (w, b) = sliced_params(cache, key, in_f, a.out_features, node.param_view.as_ref());
            let packed =
                (gemm == GemmPath::Fast).then(|| Arc::new(pack_b(&w, in_f, a.out_features)));
            let out_shape = Shape::rf(xs.n(), a.out_features);
            let macs = out_shape.numel() * in_f;
            (out_shape, Kind::Dense { w, b, packed }, macs)
        }
        Op::BatchNorm => {
            let c = xs.c();
            let scale = cache.fetch(key, ParamRole::BnScale, (0, c), || {
                param_vec(key, ParamRole::BnScale, c, 1)
            });
            let shift = cache.fetch(key, ParamRole::BnShift, (0, c), || {
                param_vec(key, ParamRole::BnShift, c, 1)
            });
            (xs.clone(), Kind::Bn { scale, shift }, 0)
        }
        Op::Activation(_) | Op::Identity => (xs.clone(), Kind::Simple, 0),
        Op::Add => {
            let bs = shape_of(1);
            if xs != bs {
                return Err(
                    KernelError::ShapeMismatch(format!("add operands {xs} vs {bs}")).into(),
                );
            }
            (xs.clone(), Kind::Simple, 0)
        }
        Op::Mul => {
            let bs = shape_of(1);
            let broadcast = xs.rank() == 4
                && bs.rank() == 4
                && (bs.h(), bs.w()) == (1, 1)
                && xs.c() == bs.c()
                && xs.n() == bs.n();
            if xs != bs && !broadcast {
                return Err(KernelError::ShapeMismatch(format!(
                    "mul operands {xs} vs {bs} (not equal, not [N,1,1,C] broadcast)"
                ))
                .into());
            }
            (xs.clone(), Kind::Simple, 0)
        }
        Op::Pool(a) => (ops::pool_out_shape(xs, a)?, Kind::Simple, 0),
        Op::GlobalAvgPool => (Shape::nhwc(xs.n(), 1, 1, xs.c()), Kind::Simple, 0),
        Op::Pad(a) => (
            Shape::nhwc(xs.n(), xs.h() + a.extra_h(), xs.w() + a.extra_w(), xs.c()),
            Kind::Simple,
            0,
        ),
        Op::Slice(a) => {
            if a.axis >= xs.rank() || a.is_empty() || a.end > xs.dim(a.axis) {
                return Err(KernelError::ShapeMismatch(format!(
                    "slice {}..{} along axis {} of {xs}",
                    a.begin, a.end, a.axis
                ))
                .into());
            }
            (xs.with_dim(a.axis, a.len()), Kind::Simple, 0)
        }
        Op::Concat(a) => {
            let shapes: Vec<&Shape> = (0..node.inputs.len()).map(shape_of).collect();
            (ops::concat_out_shape(&shapes, a.axis)?, Kind::Simple, 0)
        }
        Op::Flatten => (Shape::rf(xs.n(), xs.numel() / xs.n()), Kind::Simple, 0),
        Op::Upsample { factor } => {
            if *factor == 0 {
                return Err(KernelError::Unsupported("upsample factor 0".into()).into());
            }
            (
                Shape::nhwc(xs.n(), xs.h() * factor, xs.w() * factor, xs.c()),
                Kind::Simple,
                0,
            )
        }
    };
    Ok(Staged {
        node,
        out_shape,
        kind,
        macs,
    })
}

/// Mutable execution state: the value environment plus the memory plan.
struct Runner {
    mode: MemoryMode,
    env: Vec<Option<Tensor>>,
    /// Remaining input-slot uses per value; 0 means dead (or stolen).
    remaining: Vec<usize>,
    /// Graph outputs — never dropped or stolen.
    sticky: Vec<bool>,
    arena: Arena,
    /// Reusable im2col scratch for inline convolutions.
    scratch: Vec<f32>,
    live_bytes: usize,
    stats: ExecStats,
}

impl Runner {
    /// A zero-filled output tensor, recycled through the arena when the
    /// mode allows.
    fn alloc(&mut self, shape: &Shape) -> Tensor {
        let numel = shape.numel();
        let buf = if self.mode == MemoryMode::Arena {
            self.arena.take(numel)
        } else {
            vec![0.0; numel]
        };
        Tensor::from_vec(shape.clone(), buf)
    }

    /// Publishes a value and updates the live/peak accounting.
    fn insert(&mut self, v: ValueId, t: Tensor) {
        let bytes = t.size_bytes();
        self.live_bytes += bytes;
        self.stats.retained_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        self.env[v.index()] = Some(t);
    }

    /// Removes a value from the environment (for stealing or dropping).
    fn take_value(&mut self, v: ValueId) -> Tensor {
        let t = self.env[v.index()].take().expect("value must be live");
        self.live_bytes -= t.size_bytes();
        t
    }

    /// True if `v`'s buffer may be taken over in place: arena mode, not a
    /// graph output, and this is its single remaining use.
    fn can_steal(&self, v: ValueId) -> bool {
        self.mode == MemoryMode::Arena
            && !self.sticky[v.index()]
            && self.remaining[v.index()] == 1
            && self.env[v.index()].is_some()
    }

    /// Takes over `v`'s buffer for in-place evaluation.
    fn steal(&mut self, v: ValueId) -> Tensor {
        let t = self.take_value(v);
        self.remaining[v.index()] = 0;
        self.stats.stolen_buffers += 1;
        t
    }

    /// Drops `v` if it is live, returning its buffer to the arena.
    fn drop_value(&mut self, v: ValueId) {
        if self.env[v.index()].is_none() {
            return;
        }
        let t = self.take_value(v);
        self.stats.dropped_tensors += 1;
        if self.mode == MemoryMode::Arena {
            self.arena.give(t.into_data());
        }
    }

    /// Wave-boundary liveness update: consume one use per input slot of
    /// every node in the wave, dropping values whose count reaches zero,
    /// plus any output nobody consumes.
    fn finish_wave(&mut self, staged: &[Staged<'_>]) {
        if self.mode == MemoryMode::Retain {
            return;
        }
        for s in staged {
            for &v in &s.node.inputs {
                let i = v.index();
                if self.remaining[i] == 0 {
                    continue; // stolen mid-wave, or freed via another slot
                }
                self.remaining[i] -= 1;
                if self.remaining[i] == 0 && !self.sticky[i] {
                    self.drop_value(v);
                }
            }
            let o = s.node.output;
            if self.remaining[o.index()] == 0 && !self.sticky[o.index()] {
                self.drop_value(o); // dead on arrival: no consumers
            }
        }
    }

    /// Evaluates one node inline on the main thread.
    fn eval_inline(&mut self, s: &Staged<'_>) -> Result<(), ExecError> {
        let node = s.node;
        let in0 = node.inputs[0];
        match (&node.op, &s.kind) {
            (Op::Conv2d(a), Kind::Conv { w, b, packed }) => {
                let mut out = self.alloc(&s.out_shape);
                let rows = s.out_shape.numel() / a.out_channels;
                let x = self.env[in0.index()].as_ref().expect("live input");
                match packed {
                    Some(p) => ops::conv2d_rows_packed(
                        x,
                        p,
                        b,
                        a,
                        0..rows,
                        &mut self.scratch,
                        out.data_mut(),
                    )?,
                    None => ops::conv2d_rows_into(
                        x,
                        w,
                        b,
                        a,
                        0..rows,
                        &mut self.scratch,
                        out.data_mut(),
                    )?,
                }
                self.insert(node.output, out);
            }
            (Op::Conv2d(a), Kind::Depthwise { w, b }) => {
                let mut out = self.alloc(&s.out_shape);
                let c = s.out_shape.c();
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::conv2d_direct_channels_into(x, w, b, a, 0..c, out.data_mut());
                self.insert(node.output, out);
            }
            (Op::Dense(a), Kind::Dense { w, b, packed }) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                match packed {
                    Some(p) => ops::dense_rows_packed(x, p, b, 0..s.out_shape.n(), out.data_mut()),
                    None => ops::dense_rows_into(
                        x,
                        w,
                        b,
                        a.out_features,
                        0..s.out_shape.n(),
                        out.data_mut(),
                    ),
                }
                self.insert(node.output, out);
            }
            (Op::BatchNorm, Kind::Bn { scale, shift }) => {
                let mut t = self.copy_or_steal(in0, &s.out_shape);
                ops::batch_norm_assign(&mut t, scale, shift);
                self.insert(node.output, t);
            }
            (Op::Activation(k), Kind::Simple) => {
                let mut t = self.copy_or_steal(in0, &s.out_shape);
                ops::activation_inplace(&mut t, *k);
                self.insert(node.output, t);
            }
            (Op::Add, Kind::Simple) => {
                let mut t = self.copy_or_steal(in0, &s.out_shape);
                let rhs = self.env[node.inputs[1].index()]
                    .as_ref()
                    .expect("live input");
                ops::add_assign(&mut t, rhs)?;
                self.insert(node.output, t);
            }
            (Op::Mul, Kind::Simple) => {
                let mut t = self.copy_or_steal(in0, &s.out_shape);
                let rhs = self.env[node.inputs[1].index()]
                    .as_ref()
                    .expect("live input");
                ops::mul_assign(&mut t, rhs)?;
                self.insert(node.output, t);
            }
            (Op::Identity, Kind::Simple) => {
                let t = self.copy_or_steal(in0, &s.out_shape);
                self.insert(node.output, t);
            }
            (Op::Flatten, Kind::Simple) => {
                // A flatten is a reshape: when the input dies here, rewrap
                // its buffer with the new shape at zero cost.
                let t = if self.can_steal(in0) {
                    Tensor::from_vec(s.out_shape.clone(), self.steal(in0).into_data())
                } else {
                    let mut out = self.alloc(&s.out_shape);
                    let x = self.env[in0.index()].as_ref().expect("live input");
                    out.data_mut().copy_from_slice(x.data());
                    out
                };
                self.insert(node.output, t);
            }
            (Op::Pool(a), Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::pool_into(x, a, &mut out);
                self.insert(node.output, out);
            }
            (Op::GlobalAvgPool, Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::gap_into(x, &mut out);
                self.insert(node.output, out);
            }
            (Op::Pad(a), Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::pad_into(x, a, &mut out);
                self.insert(node.output, out);
            }
            (Op::Slice(a), Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::slice_into(x, a, &mut out);
                self.insert(node.output, out);
            }
            (Op::Concat(a), Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let tensors: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|v| self.env[v.index()].as_ref().expect("live input"))
                    .collect();
                ops::concat_into(&tensors, a.axis, &mut out);
                self.insert(node.output, out);
            }
            (Op::Upsample { factor }, Kind::Simple) => {
                let mut out = self.alloc(&s.out_shape);
                let x = self.env[in0.index()].as_ref().expect("live input");
                ops::upsample_into(x, *factor, &mut out);
                self.insert(node.output, out);
            }
            _ => unreachable!("op/kind mismatch in staging"),
        }
        Ok(())
    }

    /// The input tensor, either stolen in place (arena mode, last use) or
    /// copied into a recycled buffer.
    fn copy_or_steal(&mut self, v: ValueId, shape: &Shape) -> Tensor {
        if self.can_steal(v) {
            self.steal(v)
        } else {
            let mut out = self.alloc(shape);
            let x = self.env[v.index()].as_ref().expect("live input");
            out.data_mut().copy_from_slice(x.data());
            out
        }
    }

    /// Shards a single heavy node across the pool: row ranges for
    /// conv/dense, channel ranges for depthwise. Bit-identical to inline
    /// evaluation because per-element accumulation order is split-invariant.
    fn eval_sharded(&mut self, s: &Staged<'_>, pool: &WorkerPool) -> Result<(), ExecError> {
        let node = s.node;
        let mut out = self.alloc(&s.out_shape);
        let x = self.env[node.inputs[0].index()]
            .as_ref()
            .expect("live input");
        match (&node.op, &s.kind) {
            (Op::Conv2d(a), Kind::Conv { w, b, packed }) => {
                let (w, b) = (w.as_slice(), b.as_slice());
                let packed = packed.as_deref();
                let oc = a.out_channels;
                let rows = s.out_shape.numel() / oc;
                let items = split_rows(out.data_mut(), rows, oc, pool.jobs());
                let (results, _) = pool.map_consume_with(
                    items,
                    Vec::new,
                    |scratch, _i, (r, slice)| match packed {
                        Some(p) => ops::conv2d_rows_packed(x, p, b, a, r, scratch, slice),
                        None => ops::conv2d_rows_into(x, w, b, a, r, scratch, slice),
                    },
                );
                for r in results {
                    r?;
                }
            }
            (Op::Dense(a), Kind::Dense { w, b, packed }) => {
                let (w, b) = (w.as_slice(), b.as_slice());
                let packed = packed.as_deref();
                let of = a.out_features;
                let items = split_rows(out.data_mut(), s.out_shape.n(), of, pool.jobs());
                pool.map_consume(items, |_i, (r, slice)| match packed {
                    Some(p) => ops::dense_rows_packed(x, p, b, r, slice),
                    None => ops::dense_rows_into(x, w, b, of, r, slice),
                });
            }
            (Op::Conv2d(a), Kind::Depthwise { w, b }) => {
                let (w, b) = (w.as_slice(), b.as_slice());
                let c = s.out_shape.c();
                let spatial = s.out_shape.numel() / c;
                let ranges = chunk_ranges(c, pool.jobs());
                let chunks = pool.map(&ranges, |_, r| {
                    let mut buf = vec![0.0f32; spatial * r.len()];
                    ops::conv2d_direct_channels_into(x, w, b, a, r.clone(), &mut buf);
                    buf
                });
                let od = out.data_mut();
                for (r, chunk) in ranges.iter().zip(chunks) {
                    let width = r.len();
                    for row in 0..spatial {
                        od[row * c + r.start..row * c + r.end]
                            .copy_from_slice(&chunk[row * width..(row + 1) * width]);
                    }
                }
            }
            _ => unreachable!("only heavy kernels are sharded"),
        }
        self.stats.sharded_nodes += 1;
        self.insert(node.output, out);
        Ok(())
    }

    /// Runs several heavy nodes of one wave node-parallel, each worker
    /// computing whole nodes into main-thread-allocated outputs.
    fn eval_node_parallel(
        &mut self,
        heavies: &[&Staged<'_>],
        pool: &WorkerPool,
    ) -> Result<(), ExecError> {
        let mut outs: Vec<Tensor> = heavies.iter().map(|s| self.alloc(&s.out_shape)).collect();
        {
            let env = &self.env;
            let items: Vec<(&Staged<'_>, &mut Tensor)> =
                heavies.iter().copied().zip(outs.iter_mut()).collect();
            let (results, _) = pool.map_consume_with(items, Vec::new, |scratch, _i, (s, out)| {
                let x = env[s.node.inputs[0].index()].as_ref().expect("live input");
                match (&s.node.op, &s.kind) {
                    (Op::Conv2d(a), Kind::Conv { w, b, packed }) => {
                        let rows = s.out_shape.numel() / a.out_channels;
                        match packed {
                            Some(p) => ops::conv2d_rows_packed(
                                x,
                                p,
                                b,
                                a,
                                0..rows,
                                scratch,
                                out.data_mut(),
                            ),
                            None => {
                                ops::conv2d_rows_into(x, w, b, a, 0..rows, scratch, out.data_mut())
                            }
                        }
                    }
                    (Op::Conv2d(a), Kind::Depthwise { w, b }) => {
                        let c = s.out_shape.c();
                        ops::conv2d_direct_channels_into(x, w, b, a, 0..c, out.data_mut());
                        Ok(())
                    }
                    (Op::Dense(a), Kind::Dense { w, b, packed }) => {
                        match packed {
                            Some(p) => {
                                ops::dense_rows_packed(x, p, b, 0..s.out_shape.n(), out.data_mut())
                            }
                            None => ops::dense_rows_into(
                                x,
                                w,
                                b,
                                a.out_features,
                                0..s.out_shape.n(),
                                out.data_mut(),
                            ),
                        }
                        Ok(())
                    }
                    _ => unreachable!("only heavy kernels run node-parallel"),
                }
            });
            for r in results {
                r?;
            }
        }
        self.stats.node_parallel_nodes += heavies.len();
        for (s, out) in heavies.iter().zip(outs) {
            self.insert(s.node.output, out);
        }
        Ok(())
    }
}

/// Splits the flat output of a row-major `[rows, width]` tensor into
/// per-worker `(row_range, slice)` pieces.
fn split_rows(
    mut data: &mut [f32],
    rows: usize,
    width: usize,
    parts: usize,
) -> Vec<(std::ops::Range<usize>, &mut [f32])> {
    let ranges = chunk_ranges(rows, parts);
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        let (head, tail) = std::mem::take(&mut data).split_at_mut(r.len() * width);
        out.push((r, head));
        data = tail;
    }
    out
}

/// Runs `graph` under explicit execution options, returning outputs plus
/// [`ExecStats`].
///
/// Outputs are byte-identical for every `jobs` width and every
/// [`MemoryMode`]; only wall-clock time and the memory counters change.
/// Switching [`GemmPath`] changes conv/dense outputs within
/// [`crate::tolerance::Tolerance::kernel_default`] (the fast path
/// reassociates the bias addition); each path is itself width-invariant.
///
/// # Errors
///
/// Returns [`ExecError`] if the graph is malformed, inputs are missing or
/// mis-shaped, or a kernel rejects its operands.
///
/// # Examples
///
/// ```
/// use pimflow_ir::models;
/// use pimflow_kernels::{input_tensors, run_graph_with, ExecOptions};
///
/// let g = models::toy();
/// let inputs = input_tensors(&g, 7);
/// let out = run_graph_with(&g, &inputs, &ExecOptions::default()).unwrap();
/// assert_eq!(out.outputs[0].shape().c(), 10);
/// assert!(out.stats.peak_live_bytes <= out.stats.retained_bytes);
/// ```
pub fn run_graph_with(
    graph: &Graph,
    inputs: &[Tensor],
    opts: &ExecOptions,
) -> Result<ExecOutput, ExecError> {
    if inputs.len() != graph.inputs().len() {
        return Err(ExecError::Input(format!(
            "expected {} inputs, got {}",
            graph.inputs().len(),
            inputs.len()
        )));
    }
    for (&vid, tensor) in graph.inputs().iter().zip(inputs) {
        if let Some(desc) = &graph.value(vid).desc {
            if &desc.shape != tensor.shape() {
                return Err(ExecError::Input(format!(
                    "input `{}` expects shape {}, got {}",
                    graph.value(vid).name,
                    desc.shape,
                    tensor.shape()
                )));
            }
        }
    }

    let plan = ExecPlan::new(graph)?;
    let pool = match opts.jobs {
        Some(j) => WorkerPool::new(j),
        None => WorkerPool::from_env(),
    };
    let gemm = opts.gemm.unwrap_or_else(GemmPath::from_env);
    let mut cache = ParamCache::new(graph, &plan.liveness.order);
    let mut runner = Runner {
        mode: opts.memory,
        env: (0..graph.value_count()).map(|_| None).collect(),
        remaining: plan.liveness.use_counts.clone(),
        sticky: plan.liveness.sticky.clone(),
        arena: Arena::new(),
        scratch: Vec::new(),
        live_bytes: 0,
        stats: ExecStats {
            nodes: plan.node_count(),
            waves: plan.waves.len(),
            ..ExecStats::default()
        },
    };

    for (&vid, tensor) in graph.inputs().iter().zip(inputs) {
        runner.insert(vid, tensor.clone());
    }
    if runner.mode != MemoryMode::Retain {
        // An input nothing consumes is dead on arrival.
        for &vid in graph.inputs() {
            if runner.remaining[vid.index()] == 0 && !runner.sticky[vid.index()] {
                runner.drop_value(vid);
            }
        }
    }

    for wave in &plan.waves {
        let staged: Vec<Staged<'_>> = wave
            .iter()
            .map(|&id| stage(graph, id, &runner.env, &mut cache, gemm))
            .collect::<Result<_, _>>()?;
        let heavy_idx: Vec<usize> = staged
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.heavy().then_some(i))
            .collect();
        if pool.jobs() > 1 && heavy_idx.len() == 1 {
            runner.eval_sharded(&staged[heavy_idx[0]], &pool)?;
            for (i, s) in staged.iter().enumerate() {
                if i != heavy_idx[0] {
                    runner.eval_inline(s)?;
                }
            }
        } else if pool.jobs() > 1 && heavy_idx.len() > 1 {
            let heavies: Vec<&Staged<'_>> = heavy_idx.iter().map(|&i| &staged[i]).collect();
            runner.eval_node_parallel(&heavies, &pool)?;
            for (i, s) in staged.iter().enumerate() {
                if !heavy_idx.contains(&i) {
                    runner.eval_inline(s)?;
                }
            }
        } else {
            for s in &staged {
                runner.eval_inline(s)?;
            }
        }
        runner.finish_wave(&staged);
    }

    runner.stats.arena_reuses = runner.arena.reuses;
    runner.stats.arena_allocs = runner.arena.allocs;
    runner.stats.arena_held_bytes = runner.arena.held_bytes();
    runner.stats.param_cache_hits = cache.hits;
    runner.stats.param_cache_misses = cache.misses;

    let outputs = graph
        .outputs()
        .iter()
        .map(|v| {
            runner.env[v.index()].clone().ok_or_else(|| {
                ExecError::Input(format!("output value #{} never computed", v.index()))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ExecOutput {
        outputs,
        stats: runner.stats,
    })
}

/// Runs `graph` on the given input tensors (one per graph input, in order)
/// and returns the output tensors (one per graph output, in order), using
/// default options: worker width from `PIMFLOW_JOBS`, arena memory mode.
///
/// # Errors
///
/// Returns [`ExecError`] if the graph is malformed or inputs are missing or
/// mis-shaped.
///
/// # Examples
///
/// ```
/// use pimflow_ir::models;
/// use pimflow_kernels::{run_graph, input_tensors};
///
/// let g = models::toy();
/// let inputs = input_tensors(&g, 7);
/// let out = run_graph(&g, &inputs).unwrap();
/// assert_eq!(out[0].shape().c(), 10);
/// ```
pub fn run_graph(graph: &Graph, inputs: &[Tensor]) -> Result<Vec<Tensor>, ExecError> {
    Ok(run_graph_with(graph, inputs, &ExecOptions::default())?.outputs)
}

/// Generates deterministic input tensors for every graph input (values in
/// `[-1, 1]` seeded by `seed`), for use in equivalence tests and examples.
pub fn input_tensors(graph: &Graph, seed: u64) -> Vec<Tensor> {
    graph
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &vid)| {
            let shape = graph
                .value(vid)
                .desc
                .as_ref()
                .expect("graph inputs always carry shapes")
                .shape
                .clone();
            let mut rng =
                pimflow_rng::Rng::seed_from_u64(seed.wrapping_add(i as u64 * 0x1234_5678));
            Tensor::from_fn(shape, |_| rng.range_f32(-1.0, 1.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::models;

    fn run_with(g: &Graph, seed: u64, jobs: usize, memory: MemoryMode) -> ExecOutput {
        let inputs = input_tensors(g, seed);
        run_graph_with(
            g,
            &inputs,
            &ExecOptions {
                jobs: Some(jobs),
                memory,
                gemm: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn toy_model_runs_end_to_end() {
        let g = models::toy();
        let inputs = input_tensors(&g, 1);
        let out = run_graph(&g, &inputs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape().c(), 10);
        // Output must be finite and non-degenerate.
        assert!(out[0].data().iter().all(|v| v.is_finite()));
        let spread = out[0].data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(spread > 0.0, "all-zero output suggests broken wiring");
    }

    #[test]
    fn execution_is_deterministic() {
        let g = models::toy();
        let inputs = input_tensors(&g, 9);
        let a = run_graph(&g, &inputs).unwrap();
        let b = run_graph(&g, &inputs).unwrap();
        assert!(a[0].allclose(&b[0], 0.0));
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let g = models::toy();
        let a = run_graph(&g, &input_tensors(&g, 1)).unwrap();
        let b = run_graph(&g, &input_tensors(&g, 2)).unwrap();
        assert!(!a[0].allclose(&b[0], 1e-7));
    }

    #[test]
    fn wrong_input_count_errors() {
        let g = models::toy();
        assert!(matches!(run_graph(&g, &[]), Err(ExecError::Input(_))));
    }

    #[test]
    fn wrong_input_shape_errors() {
        let g = models::toy();
        let bad = vec![Tensor::zeros(pimflow_ir::Shape::nhwc(1, 8, 8, 3))];
        assert!(matches!(run_graph(&g, &bad), Err(ExecError::Input(_))));
    }

    #[test]
    fn bert_like_runs() {
        let g = models::bert_like(2);
        let out = run_graph(&g, &input_tensors(&g, 3)).unwrap();
        assert_eq!(out[0].shape().n(), 2);
        assert!(out[0].data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn memory_modes_agree_bitwise() {
        let g = models::toy();
        let retain = run_with(&g, 5, 1, MemoryMode::Retain);
        let drop = run_with(&g, 5, 1, MemoryMode::Drop);
        let arena = run_with(&g, 5, 1, MemoryMode::Arena);
        assert_eq!(retain.outputs[0].data(), drop.outputs[0].data());
        assert_eq!(retain.outputs[0].data(), arena.outputs[0].data());
        // Drop/arena modes must actually free intermediates.
        assert!(drop.stats.peak_live_bytes < drop.stats.retained_bytes);
        assert!(drop.stats.dropped_tensors > 0);
        assert!(arena.stats.stolen_buffers > 0, "toy has elementwise chains");
        // Retain mode ends holding everything.
        assert_eq!(retain.stats.peak_live_bytes, retain.stats.retained_bytes);
        assert_eq!(retain.stats.dropped_tensors, 0);
    }

    #[test]
    fn worker_width_does_not_change_outputs_or_memory_stats() {
        let g = models::toy();
        let w1 = run_with(&g, 11, 1, MemoryMode::Arena);
        let w4 = run_with(&g, 11, 4, MemoryMode::Arena);
        assert_eq!(w1.outputs[0].data(), w4.outputs[0].data());
        assert_eq!(w1.stats.peak_live_bytes, w4.stats.peak_live_bytes);
        assert_eq!(w1.stats.retained_bytes, w4.stats.retained_bytes);
        assert_eq!(w1.stats.dropped_tensors, w4.stats.dropped_tensors);
        assert_eq!(w1.stats.stolen_buffers, w4.stats.stolen_buffers);
        assert_eq!(w1.stats.arena_reuses, w4.stats.arena_reuses);
        assert_eq!(w1.stats.arena_allocs, w4.stats.arena_allocs);
        // Sequential runs never shard.
        assert_eq!(w1.stats.sharded_nodes + w1.stats.node_parallel_nodes, 0);
    }

    #[test]
    fn kernel_errors_surface_as_exec_errors() {
        // add with mismatched operand shapes must not panic. Built on the
        // raw graph API: the builder's shape inference would reject it.
        use pimflow_ir::{DataType, PoolAttrs, PoolKind};
        let mut g = Graph::new("bad-add");
        let x = g.add_input("x", Shape::nhwc(1, 4, 4, 3), DataType::F32);
        let pooled = g.add_node(
            "pool",
            Op::Pool(PoolAttrs {
                kind: PoolKind::Max,
                kernel: pimflow_ir::Hw::square(2),
                stride: pimflow_ir::Hw::square(2),
                padding: pimflow_ir::Hw::square(0),
            }),
            vec![x],
        );
        let bad = g.add_node("bad", Op::Add, vec![x, pooled]);
        g.mark_output(bad);
        let inputs = input_tensors(&g, 1);
        assert!(matches!(
            run_graph(&g, &inputs),
            Err(ExecError::Kernel(KernelError::ShapeMismatch(_)))
        ));
    }
}
