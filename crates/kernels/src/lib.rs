//! # pimflow-kernels
//!
//! Reference NHWC f32 executor for [`pimflow_ir`] graphs.
//!
//! This crate is the **numerical oracle** of the PIMFlow reproduction. The
//! original artifact relies on cuDNN/cuBLAS for GPU execution; here, plain
//! loop-nest kernels serve the one purpose the reproduction needs numerics
//! for: proving that the PIM-aware graph transformations (MD-DP split,
//! pipelining, memory-layout optimization) preserve model semantics exactly.
//!
//! It also provides the convolution-lowering (im2col) machinery whose
//! dimensions the DRAM-PIM code generator consumes (§2.2 of the paper).
//!
//! ## Example
//!
//! ```
//! use pimflow_ir::models;
//! use pimflow_kernels::{input_tensors, run_graph};
//!
//! let g = models::toy();
//! let out = run_graph(&g, &input_tensors(&g, 42)).unwrap();
//! assert_eq!(out[0].shape().c(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
pub mod im2col;
pub mod microkernel;
pub mod ops;
pub mod params;
pub mod probe;
pub mod schedule;
pub mod tensor;
pub mod tolerance;

pub use executor::{
    input_tensors, run_graph, run_graph_with, ExecError, ExecOptions, ExecOutput, ExecStats,
    MemoryMode,
};
pub use im2col::{gemm, im2col, im2col_rows, lowered_dims, KernelError, LoweredConv};
pub use microkernel::{pack_b, Epilogue, GemmPath, PackedB};
pub use params::{param_cols, param_vec, ParamRole};
pub use schedule::{Arena, ExecPlan};
pub use tensor::Tensor;
pub use tolerance::{ulp_distance, Tolerance, ToleranceError, ToleranceReport};
