//! Dense f32 tensors in row-major NHWC layout.

use pimflow_ir::Shape;
use std::fmt;

/// A dense f32 tensor.
///
/// Data is stored row-major over the shape's dimensions, so a 4-D NHWC
/// tensor is laid out exactly as the paper's memory optimizer (§4.3.2)
/// assumes: slicing along H yields a contiguous sub-buffer.
///
/// # Examples
///
/// ```
/// use pimflow_kernels::Tensor;
/// use pimflow_ir::Shape;
///
/// let t = Tensor::from_fn(Shape::nhwc(1, 2, 2, 3), |i| i as f32);
/// assert_eq!(t.get(&[0, 1, 0, 2]), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor by evaluating `f` at each linear index.
    pub fn from_fn(shape: Shape, f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Flat read-only view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer — the handoff
    /// point into the executor's arena, which recycles freed buffers
    /// instead of letting the allocator see them.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Resident size of the tensor's payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Linear index of a multi-dimensional coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.rank(), "index rank mismatch");
        let mut off = 0;
        for (axis, &i) in idx.iter().enumerate() {
            let extent = self.shape.dim(axis);
            assert!(
                i < extent,
                "index {i} out of bounds for axis {axis} (extent {extent})"
            );
            off = off * extent + i;
        }
        off
    }

    /// Reads the element at a multi-dimensional coordinate.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Writes the element at a multi-dimensional coordinate.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Zero-copy view of rows `[begin, end)` of a 4-D NHWC batch-1 tensor —
    /// the contiguity property the memory-layout optimizer (§4.3.2) builds
    /// on: an H-slice *is* a sub-slice of the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D batch-1 or the range is invalid.
    pub fn h_rows(&self, begin: usize, end: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 4, "h_rows requires NHWC");
        assert_eq!(self.shape.n(), 1, "h_rows requires batch 1");
        assert!(begin <= end && end <= self.shape.h(), "invalid row range");
        let row = self.shape.w() * self.shape.c();
        &self.data[begin * row..end * row]
    }

    /// Maximum absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if every element is within `tol` of `other`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_row_major() {
        let t = Tensor::from_fn(Shape::nhwc(1, 2, 3, 4), |i| i as f32);
        assert_eq!(t.offset(&[0, 0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 0, 1, 0]), 4);
        assert_eq!(t.offset(&[0, 1, 0, 0]), 12);
    }

    #[test]
    fn h_slices_are_contiguous() {
        // The invariant the memory optimizer (§4.3.2) relies on.
        let t = Tensor::from_fn(Shape::nhwc(1, 4, 2, 3), |i| i as f32);
        let row_elems = 2 * 3;
        let start = t.offset(&[0, 2, 0, 0]);
        assert_eq!(start, 2 * row_elems);
        let slice = &t.data()[start..start + 2 * row_elems];
        assert_eq!(slice[0], (2 * row_elems) as f32);
        assert_eq!(slice.len(), 2 * row_elems);
    }

    #[test]
    fn h_rows_view_equals_slice_op() {
        let t = Tensor::from_fn(Shape::nhwc(1, 6, 3, 2), |i| i as f32);
        let view = t.h_rows(2, 5);
        assert_eq!(view.len(), 3 * 3 * 2);
        assert_eq!(view[0], (2 * 3 * 2) as f32);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::rf(2, 3));
        t.set(&[1, 2], 7.5);
        assert_eq!(t.get(&[1, 2]), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        Tensor::zeros(Shape::rf(2, 3)).get(&[2, 0]);
    }

    #[test]
    fn into_data_and_size_bytes_round_trip() {
        let t = Tensor::from_fn(Shape::nhwc(1, 2, 2, 3), |i| i as f32);
        assert_eq!(t.size_bytes(), 12 * 4);
        let data = t.into_data();
        assert_eq!(data.len(), 12);
        assert_eq!(data[7], 7.0);
    }

    #[test]
    fn allclose_tolerates_small_diffs() {
        let a = Tensor::from_fn(Shape::rf(1, 4), |i| i as f32);
        let mut b = a.clone();
        b.data_mut()[2] += 1e-6;
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
    }
}
