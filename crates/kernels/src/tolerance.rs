//! ULP- and relative-tolerance comparison for fast-path kernel outputs.
//!
//! The micro-kernel ([`crate::microkernel`]) reassociates the bias addition
//! relative to the bias-seeded scalar oracle, so the old byte-identity
//! assertions become *tolerance-checked* assertions: outputs must agree to
//! within a documented combined bound. This module is that bound.
//!
//! A comparison passes when **either** criterion holds per element:
//!
//! * absolute/relative: `|a - b| <= max(abs, rel * max(|a|, |b|))`, the
//!   classic `allclose` shape — robust near zero via the absolute floor;
//! * ULP distance: the two bit patterns are at most `max_ulps` ordered
//!   float representations apart — scale-free, robust far from zero.
//!
//! NaNs never compare equal; two infinities of the same sign do.

use std::fmt;

/// A combined absolute / relative / ULP tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute floor: differences below this always pass.
    pub abs: f32,
    /// Relative bound, scaled by the larger magnitude.
    pub rel: f32,
    /// Maximum ULP distance that passes regardless of the bounds above.
    pub max_ulps: u32,
}

impl Tolerance {
    /// The documented fast-path contract: what the micro-kernel GEMM and
    /// conv paths may deviate from the scalar oracle by. One reassociated
    /// bias addition moves a sum at most a few ULPs, so the budget is tight
    /// (16 ULPs) with small floors for near-zero sums.
    pub fn kernel_default() -> Self {
        Tolerance {
            abs: 1e-6,
            rel: 1e-5,
            max_ulps: 16,
        }
    }

    /// The whole-graph contract for fast-vs-exact executor comparisons:
    /// one reassociated bias addition per conv/dense layer compounds
    /// through network depth and through nonlinearities (softmax/swish
    /// exponentials amplify input deltas), so the end-to-end budget is a
    /// couple of orders looser than the per-kernel one. Measured drift on
    /// the zoo (mobilenet-v2, unet, bert-like) stays around `1e-5`
    /// relative; the bound leaves one order of headroom.
    pub fn end_to_end() -> Self {
        Tolerance {
            abs: 1e-5,
            rel: 1e-4,
            max_ulps: 4096,
        }
    }

    /// Exact comparison: bit equality only (signed zeros differ).
    pub fn exact() -> Self {
        Tolerance {
            abs: 0.0,
            rel: 0.0,
            max_ulps: 0,
        }
    }

    /// True when `a` and `b` agree within this tolerance. NaNs never match
    /// (even bitwise); with every bound at zero this degenerates to bit
    /// equality, so [`Tolerance::exact`] distinguishes `0.0` from `-0.0`.
    pub fn matches(&self, a: f32, b: f32) -> bool {
        if a.is_nan() || b.is_nan() {
            return false;
        }
        if a.to_bits() == b.to_bits() {
            return true;
        }
        let bound = self.abs.max(self.rel * a.abs().max(b.abs()));
        // `bound > 0.0` keeps the degenerate all-zero tolerance from
        // accepting 0.0 vs -0.0 through `diff <= 0.0`.
        if bound > 0.0 && (a - b).abs() <= bound {
            return true;
        }
        self.max_ulps > 0 && ulp_distance(a, b) <= self.max_ulps as u64
    }

    /// Compares two slices, returning the first violation as
    /// `Err(`[`ToleranceError`]`)`.
    ///
    /// # Errors
    ///
    /// Returns [`ToleranceError`] describing the worst offending element if
    /// lengths differ or any element pair violates the tolerance.
    pub fn check(&self, got: &[f32], want: &[f32]) -> Result<ToleranceReport, ToleranceError> {
        if got.len() != want.len() {
            return Err(ToleranceError {
                index: usize::MAX,
                got: f32::NAN,
                want: f32::NAN,
                ulps: u64::MAX,
                message: format!("length mismatch: {} vs {}", got.len(), want.len()),
            });
        }
        let mut report = ToleranceReport::default();
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            if !self.matches(g, w) {
                return Err(ToleranceError {
                    index: i,
                    got: g,
                    want: w,
                    ulps: ulp_distance(g, w),
                    message: format!(
                        "element {i}: {g} vs {w} ({} ulps, |diff| {})",
                        ulp_distance(g, w),
                        (g - w).abs()
                    ),
                });
            }
            report.observe(g, w);
        }
        Ok(report)
    }
}

/// The worst deviations seen by a passing [`Tolerance::check`] — what the
/// bench artifacts record so the tolerance contract is auditable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ToleranceReport {
    /// Largest absolute difference observed.
    pub max_abs_diff: f32,
    /// Largest ULP distance observed.
    pub max_ulps: u64,
}

impl ToleranceReport {
    fn observe(&mut self, a: f32, b: f32) {
        if a.to_bits() == b.to_bits() {
            return;
        }
        self.max_abs_diff = self.max_abs_diff.max((a - b).abs());
        self.max_ulps = self.max_ulps.max(ulp_distance(a, b));
    }

    /// Folds another report into this one (per-config aggregation).
    pub fn merge(&mut self, other: &ToleranceReport) {
        self.max_abs_diff = self.max_abs_diff.max(other.max_abs_diff);
        self.max_ulps = self.max_ulps.max(other.max_ulps);
    }
}

/// A tolerance violation: which element, by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceError {
    /// Index of the offending element (`usize::MAX` for length mismatch).
    pub index: usize,
    /// Fast-path value.
    pub got: f32,
    /// Oracle value.
    pub want: f32,
    /// ULP distance between the two.
    pub ulps: u64,
    message: String,
}

impl fmt::Display for ToleranceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tolerance violation: {}", self.message)
    }
}

impl std::error::Error for ToleranceError {}

/// Distance between two floats in units of least precision: how many
/// representable `f32` values lie between them on the ordered number line.
/// `+0.0` and `-0.0` are one apart in this metric (their lexicographic
/// bit encodings are adjacent); NaN against anything is `u64::MAX`.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the float bit pattern onto a monotone integer line: positive
    // floats keep their bits, negative floats are mirrored below zero
    // (`-0.0` lands at -1, adjacent to `+0.0` at 0).
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -1 - (bits & 0x7fff_ffff) as i64
        } else {
            bits as i64
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 9)), 9);
        // Signed zeros are adjacent on the ordered line.
        assert_eq!(ulp_distance(0.0, -0.0), 1);
        // Crossing zero accumulates both sides.
        let tiny = f32::from_bits(3); // 3 ulps above +0.0
        let neg_tiny = -tiny;
        assert_eq!(ulp_distance(tiny, neg_tiny), 7);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn kernel_tolerance_accepts_reassociation_noise() {
        let tol = Tolerance::kernel_default();
        let a = 123.456f32;
        let b = f32::from_bits(a.to_bits() + 3);
        assert!(tol.matches(a, b));
        assert!(tol.matches(0.0, 1e-7)); // under the absolute floor
        assert!(tol.matches(0.0, -0.0));
        assert!(!tol.matches(1.0, 1.001)); // 0.1% is far outside
        assert!(!tol.matches(f32::NAN, f32::NAN));
    }

    #[test]
    fn exact_tolerance_is_bit_equality() {
        let tol = Tolerance::exact();
        assert!(tol.matches(2.5, 2.5));
        assert!(tol.matches(f32::INFINITY, f32::INFINITY));
        assert!(!tol.matches(0.0, -0.0), "signed zeros differ bitwise");
    }

    #[test]
    fn check_reports_worst_case_and_first_violation() {
        let tol = Tolerance::kernel_default();
        let want = [1.0f32, 2.0, 3.0];
        let close = [
            1.0,
            f32::from_bits(2.0f32.to_bits() + 2),
            f32::from_bits(3.0f32.to_bits() + 5),
        ];
        let report = tol.check(&close, &want).unwrap();
        assert_eq!(report.max_ulps, 5);
        assert!(report.max_abs_diff > 0.0);

        let far = [1.0f32, 2.5, 3.0];
        let err = tol.check(&far, &want).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("element 1"));

        assert!(tol.check(&[1.0], &want).is_err());
    }
}
