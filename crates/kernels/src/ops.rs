//! Reference implementations of every operator in the IR.
//!
//! These are deliberately straightforward loop nests: they are the
//! correctness oracle for the transformation passes, not a fast runtime.

use crate::im2col::{gemm_accumulate, im2col, lowered_dims};
use crate::tensor::Tensor;
use pimflow_ir::{ActivationKind, Conv2dAttrs, PadAttrs, PoolAttrs, PoolKind, Shape, SliceAttrs};

/// 2-D convolution over an NHWC input.
///
/// Weight layout: `[kh][kw][ic_per_group][oc]` flattened row-major for
/// regular convolution and `[kh][kw][c]` for depthwise.
///
/// Regular (groups = 1) convolutions take the im2col + blocked-GEMM fast
/// path: the lowered row layout `(ky, kx, ci)` matches the weight layout,
/// and the GEMM accumulates `k` in ascending order, so the accumulation
/// sequence per output element is exactly the direct loop nest's
/// ([`conv2d_direct`] stays available as the oracle). Depthwise
/// convolutions fall through to the direct nest.
///
/// # Panics
///
/// Panics if shapes/lengths are inconsistent with `attrs`.
pub fn conv2d(x: &Tensor, weights: &[f32], bias: &[f32], attrs: &Conv2dAttrs) -> Tensor {
    if attrs.groups > 1 {
        return conv2d_direct(x, weights, bias, attrs);
    }
    let (n, ic) = (x.shape().n(), x.shape().c());
    let oc = attrs.out_channels;
    assert_eq!(
        weights.len(),
        attrs.kernel.h * attrs.kernel.w * ic * oc,
        "conv weight length"
    );
    assert_eq!(bias.len(), oc, "bias length");
    let dims = lowered_dims(x.shape(), attrs);
    let oh = (x.shape().h() + 2 * attrs.padding.h - attrs.kernel.h) / attrs.stride.h + 1;
    let ow = (x.shape().w() + 2 * attrs.padding.w - attrs.kernel.w) / attrs.stride.w + 1;
    let lowered = im2col(x, attrs).expect("groups == 1 is the supported case");
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, oc));
    let od = out.data_mut();
    // Direct conv starts each accumulator at the bias; seed the output
    // rows the same way so the fast path reproduces it bit for bit.
    for row in od.chunks_exact_mut(oc) {
        row.copy_from_slice(bias);
    }
    gemm_accumulate(lowered.data(), weights, od, dims.k_elems, oc);
    out
}

/// Direct (naive loop nest) 2-D convolution — the numerical oracle the
/// im2col fast path in [`conv2d`] is validated against.
///
/// # Panics
///
/// Panics if shapes/lengths are inconsistent with `attrs`.
pub fn conv2d_direct(x: &Tensor, weights: &[f32], bias: &[f32], attrs: &Conv2dAttrs) -> Tensor {
    let (n, ih, iw, ic) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (kh, kw) = (attrs.kernel.h, attrs.kernel.w);
    let (sh, sw) = (attrs.stride.h, attrs.stride.w);
    let (ph, pw) = (attrs.padding.h, attrs.padding.w);
    let oc = attrs.out_channels;
    let depthwise = attrs.groups > 1;
    if depthwise {
        assert!(attrs.is_depthwise_for(ic), "unsupported grouped conv");
        assert_eq!(weights.len(), kh * kw * ic, "depthwise weight length");
    } else {
        assert_eq!(weights.len(), kh * kw * ic * oc, "conv weight length");
    }
    assert_eq!(bias.len(), oc, "bias length");

    let oh = (ih + 2 * ph - kh) / sh + 1;
    let ow = (iw + 2 * pw - kw) / sw + 1;
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, oc));
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for co in 0..oc {
                    let mut acc = bias[co];
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy as usize >= ih {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix as usize >= iw {
                                continue;
                            }
                            let in_base = ((b * ih + iy as usize) * iw + ix as usize) * ic;
                            if depthwise {
                                let w = weights[(ky * kw + kx) * ic + co];
                                acc += xd[in_base + co] * w;
                            } else {
                                let w_base = ((ky * kw + kx) * ic) * oc + co;
                                for ci in 0..ic {
                                    acc += xd[in_base + ci] * weights[w_base + ci * oc];
                                }
                            }
                        }
                    }
                    od[((b * oh + oy) * ow + ox) * oc + co] = acc;
                }
            }
        }
    }
    out
}

/// Fully-connected layer: `y = x W + b` with `W` laid out `[in][out]`.
///
/// # Panics
///
/// Panics if shapes/lengths are inconsistent.
pub fn dense(x: &Tensor, weights: &[f32], bias: &[f32], out_features: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "dense input must be 2-D");
    let (rows, in_f) = (x.shape().n(), x.shape().c());
    assert_eq!(weights.len(), in_f * out_features, "dense weight length");
    assert_eq!(bias.len(), out_features, "bias length");
    let mut out = Tensor::zeros(Shape::rf(rows, out_features));
    let xd = x.data();
    let od = out.data_mut();
    for r in 0..rows {
        for o in 0..out_features {
            let mut acc = bias[o];
            for i in 0..in_f {
                acc += xd[r * in_f + i] * weights[i * out_features + o];
            }
            od[r * out_features + o] = acc;
        }
    }
    out
}

/// Applies a unary activation element-wise (softmax is applied row-wise over
/// the last dimension).
pub fn activation(x: &Tensor, kind: ActivationKind) -> Tensor {
    let mut out = x.clone();
    match kind {
        ActivationKind::Relu => {
            for v in out.data_mut() {
                *v = v.max(0.0);
            }
        }
        ActivationKind::Relu6 => {
            for v in out.data_mut() {
                *v = v.clamp(0.0, 6.0);
            }
        }
        ActivationKind::Sigmoid => {
            for v in out.data_mut() {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        ActivationKind::Swish => {
            for v in out.data_mut() {
                *v *= 1.0 / (1.0 + (-*v).exp());
            }
        }
        ActivationKind::Gelu => {
            for v in out.data_mut() {
                // tanh approximation of GELU.
                let x3 = *v * *v * *v;
                *v = 0.5 * *v * (1.0 + ((0.797_884_6) * (*v + 0.044715 * x3)).tanh());
            }
        }
        ActivationKind::Tanh => {
            for v in out.data_mut() {
                *v = v.tanh();
            }
        }
        ActivationKind::Softmax => {
            let c = x.shape().c();
            let rows = x.shape().numel() / c;
            let d = out.data_mut();
            for r in 0..rows {
                let row = &mut d[r * c..(r + 1) * c];
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }
    out
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut out = a.clone();
    for (o, &v) in out.data_mut().iter_mut().zip(b.data()) {
        *o += v;
    }
    out
}

/// Element-wise multiplication with optional `[N,1,1,C]` broadcast of `b`.
///
/// # Panics
///
/// Panics if shapes are incompatible.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    if a.shape() == b.shape() {
        let mut out = a.clone();
        for (o, &v) in out.data_mut().iter_mut().zip(b.data()) {
            *o *= v;
        }
        return out;
    }
    // Broadcast path: b is [N,1,1,C].
    assert_eq!(a.shape().rank(), 4, "broadcast mul needs NHWC");
    assert_eq!(b.shape().rank(), 4, "broadcast mul needs NHWC");
    assert_eq!(
        (b.shape().h(), b.shape().w()),
        (1, 1),
        "mul operand not broadcastable"
    );
    assert_eq!(a.shape().c(), b.shape().c(), "mul channel mismatch");
    assert_eq!(a.shape().n(), b.shape().n(), "mul batch mismatch");
    let c = a.shape().c();
    let mut out = a.clone();
    let bd = b.data();
    let (n, h, w) = (a.shape().n(), a.shape().h(), a.shape().w());
    let od = out.data_mut();
    for bi in 0..n {
        for i in 0..h * w {
            for ci in 0..c {
                od[(bi * h * w + i) * c + ci] *= bd[bi * c + ci];
            }
        }
    }
    out
}

/// Inference-mode batch normalization: `y = x * scale[c] + shift[c]`.
///
/// # Panics
///
/// Panics if parameter lengths do not match the channel count.
pub fn batch_norm(x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let c = x.shape().c();
    assert_eq!(scale.len(), c, "bn scale length");
    assert_eq!(shift.len(), c, "bn shift length");
    let mut out = x.clone();
    for (i, v) in out.data_mut().iter_mut().enumerate() {
        let ci = i % c;
        *v = *v * scale[ci] + shift[ci];
    }
    out
}

/// Spatial pooling.
pub fn pool(x: &Tensor, attrs: &PoolAttrs) -> Tensor {
    let (n, ih, iw, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (kh, kw) = (attrs.kernel.h, attrs.kernel.w);
    let (sh, sw) = (attrs.stride.h, attrs.stride.w);
    let (ph, pw) = (attrs.padding.h, attrs.padding.w);
    let oh = (ih + 2 * ph - kh) / sh + 1;
    let ow = (iw + 2 * pw - kw) / sw + 1;
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let mut acc = match attrs.kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0;
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy as usize >= ih {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix as usize >= iw {
                                continue;
                            }
                            let v = xd[((b * ih + iy as usize) * iw + ix as usize) * c + ci];
                            match attrs.kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    od[((b * oh + oy) * ow + ox) * c + ci] = match attrs.kind {
                        PoolKind::Max => acc,
                        // Count-includes-padding=false semantics.
                        PoolKind::Avg => {
                            if count > 0 {
                                acc / count as f32
                            } else {
                                0.0
                            }
                        }
                    };
                }
            }
        }
    }
    out
}

/// Global average pooling: NHWC -> `[N,1,1,C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let mut out = Tensor::zeros(Shape::nhwc(n, 1, 1, c));
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for i in 0..h * w {
            for ci in 0..c {
                od[b * c + ci] += xd[(b * h * w + i) * c + ci];
            }
        }
    }
    let inv = 1.0 / (h * w) as f32;
    for v in od {
        *v *= inv;
    }
    out
}

/// Zero-pads the spatial dimensions of an NHWC tensor.
pub fn pad(x: &Tensor, attrs: &PadAttrs) -> Tensor {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (oh, ow) = (h + attrs.extra_h(), w + attrs.extra_w());
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    for b in 0..n {
        for y in 0..h {
            for xx in 0..w {
                for ci in 0..c {
                    let v = x.get(&[b, y, xx, ci]);
                    out.set(&[b, y + attrs.top, xx + attrs.left, ci], v);
                }
            }
        }
    }
    out
}

/// Slices along a single axis.
///
/// # Panics
///
/// Panics if the slice range is invalid.
pub fn slice(x: &Tensor, attrs: &SliceAttrs) -> Tensor {
    let shape = x.shape();
    assert!(attrs.axis < shape.rank(), "slice axis out of range");
    assert!(
        attrs.end <= shape.dim(attrs.axis) && !attrs.is_empty(),
        "invalid slice range"
    );
    let out_shape = shape.with_dim(attrs.axis, attrs.len());
    let mut out = Tensor::zeros(out_shape.clone());
    let mut idx = vec![0usize; shape.rank()];
    let total = out_shape.numel();
    for lin in 0..total {
        // Decode lin into out-coordinates.
        let mut rem = lin;
        for ax in (0..out_shape.rank()).rev() {
            idx[ax] = rem % out_shape.dim(ax);
            rem /= out_shape.dim(ax);
        }
        let mut src = idx.clone();
        src[attrs.axis] += attrs.begin;
        out.data_mut()[lin] = x.get(&src);
    }
    out
}

/// Concatenates tensors along a single axis.
///
/// # Panics
///
/// Panics if fewer than one input is given or shapes are incompatible.
pub fn concat(inputs: &[&Tensor], axis: usize) -> Tensor {
    assert!(!inputs.is_empty(), "concat needs inputs");
    let first = inputs[0].shape();
    let total_axis: usize = inputs.iter().map(|t| t.shape().dim(axis)).sum();
    let out_shape = first.with_dim(axis, total_axis);
    let mut out = Tensor::zeros(out_shape.clone());
    let rank = out_shape.rank();
    let mut axis_offset = 0;
    for t in inputs {
        let s = t.shape();
        let n = s.numel();
        let mut idx = vec![0usize; rank];
        for lin in 0..n {
            let mut rem = lin;
            for ax in (0..rank).rev() {
                idx[ax] = rem % s.dim(ax);
                rem /= s.dim(ax);
            }
            let mut dst = idx.clone();
            dst[axis] += axis_offset;
            let v = t.data()[lin];
            out.set(&dst, v);
        }
        axis_offset += s.dim(axis);
    }
    out
}

/// Nearest-neighbour upsampling of an NHWC tensor by `factor`.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn upsample(x: &Tensor, factor: usize) -> Tensor {
    assert!(factor >= 1, "upsample factor must be >= 1");
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let mut out = Tensor::zeros(Shape::nhwc(n, h * factor, w * factor, c));
    for b in 0..n {
        for oy in 0..h * factor {
            for ox in 0..w * factor {
                for ci in 0..c {
                    let v = x.get(&[b, oy / factor, ox / factor, ci]);
                    out.set(&[b, oy, ox, ci], v);
                }
            }
        }
    }
    out
}

/// Flattens to `[N, rest]`.
pub fn flatten(x: &Tensor) -> Tensor {
    let n = x.shape().n();
    let rest = x.shape().numel() / n;
    Tensor::from_vec(Shape::rf(n, rest), x.data().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::Hw;

    fn seq_tensor(shape: Shape) -> Tensor {
        Tensor::from_fn(shape, |i| (i % 13) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weight matrix preserves input channels.
        let x = seq_tensor(Shape::nhwc(1, 3, 3, 2));
        let w = vec![1.0, 0.0, 0.0, 1.0]; // [ic=2][oc=2] identity
        let b = vec![0.0, 0.0];
        let y = conv2d(&x, &w, &b, &Conv2dAttrs::pointwise(2));
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn conv_matches_hand_computation() {
        // 2x2 input, 2x2 kernel, single channel: one output element.
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 4.0]);
        let w = vec![0.5, -1.0, 2.0, 0.25];
        let attrs = Conv2dAttrs {
            out_channels: 1,
            kernel: Hw::square(2),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 1,
        };
        let y = conv2d(&x, &w, &[1.0], &attrs);
        let expect = 1.0 * 0.5 + -2.0 + 3.0 * 2.0 + 4.0 * 0.25 + 1.0;
        assert!((y.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn conv_padding_zero_extends() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, 1), vec![3.0]);
        let attrs = Conv2dAttrs {
            out_channels: 1,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let w = vec![1.0; 9];
        let y = conv2d(&x, &w, &[0.0], &attrs);
        assert_eq!(y.shape(), &Shape::nhwc(1, 1, 1, 1));
        assert!((y.data()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn depthwise_scales_channels_independently() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, 2), vec![2.0, 5.0]);
        let attrs = Conv2dAttrs {
            out_channels: 2,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 2,
        };
        let y = conv2d(&x, &[10.0, 100.0], &[0.0, 0.0], &attrs);
        assert_eq!(y.data(), &[20.0, 500.0]);
    }

    #[test]
    fn conv_fast_path_matches_direct_oracle() {
        // im2col + blocked GEMM vs the naive loop nest, across batch,
        // stride, padding, and kernel-size variations.
        for (batch, h, w, ic, oc, k, s, p) in [
            (1, 6, 6, 3, 4, 3, 1, 1),
            (2, 9, 7, 3, 5, 3, 2, 1),
            (3, 5, 5, 2, 3, 1, 1, 0),
            (1, 8, 8, 4, 6, 5, 2, 2),
        ] {
            let attrs = Conv2dAttrs {
                out_channels: oc,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: 1,
            };
            let x = seq_tensor(Shape::nhwc(batch, h, w, ic));
            let wts: Vec<f32> = (0..k * k * ic * oc)
                .map(|i| ((i * 7 + 3) % 13) as f32 * 0.1 - 0.6)
                .collect();
            let bias: Vec<f32> = (0..oc).map(|i| i as f32 * 0.5 - 1.0).collect();
            let fast = conv2d(&x, &wts, &bias, &attrs);
            let direct = conv2d_direct(&x, &wts, &bias, &attrs);
            assert_eq!(fast.shape(), direct.shape());
            assert!(
                fast.allclose(&direct, 0.0),
                "fast path must be bit-compatible: max diff {}",
                fast.max_abs_diff(&direct)
            );
        }
    }

    #[test]
    fn dense_matches_matvec() {
        let x = Tensor::from_vec(Shape::rf(1, 3), vec![1.0, 2.0, 3.0]);
        // W [3][2] row-major by input.
        let w = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let y = dense(&x, &w, &[0.5, -0.5], 2);
        assert_eq!(y.data(), &[1.0 + 3.0 + 0.5, 2.0 + 3.0 - 0.5]);
    }

    #[test]
    fn activations_clamp() {
        let x = Tensor::from_vec(Shape::rf(1, 3), vec![-1.0, 3.0, 9.0]);
        assert_eq!(
            activation(&x, ActivationKind::Relu).data(),
            &[0.0, 3.0, 9.0]
        );
        assert_eq!(
            activation(&x, ActivationKind::Relu6).data(),
            &[0.0, 3.0, 6.0]
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = seq_tensor(Shape::rf(3, 5));
        let y = activation(&x, ActivationKind::Softmax);
        for r in 0..3 {
            let s: f32 = y.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mul_broadcasts_se_scale() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let s = Tensor::from_vec(Shape::nhwc(1, 1, 1, 2), vec![10.0, 0.5]);
        let y = mul(&x, &s);
        assert_eq!(y.data(), &[10.0, 1.0, 30.0, 2.0]);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 6.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn maxpool_picks_max() {
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 7.0, 3.0, 2.0]);
        let attrs = PoolAttrs {
            kind: PoolKind::Max,
            kernel: Hw::square(2),
            stride: Hw::square(2),
            padding: Hw::square(0),
        };
        assert_eq!(pool(&x, &attrs).data(), &[7.0]);
    }

    #[test]
    fn slice_concat_roundtrip() {
        let x = seq_tensor(Shape::nhwc(1, 6, 2, 3));
        let a = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 0,
                end: 2,
            },
        );
        let b = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 2,
                end: 6,
            },
        );
        let y = concat(&[&a, &b], 1);
        assert!(y.allclose(&x, 0.0));
    }

    #[test]
    fn pad_then_slice_recovers_input() {
        let x = seq_tensor(Shape::nhwc(1, 3, 3, 2));
        let p = pad(
            &x,
            &PadAttrs {
                top: 1,
                bottom: 2,
                left: 1,
                right: 1,
            },
        );
        let inner = slice(
            &p,
            &SliceAttrs {
                axis: 1,
                begin: 1,
                end: 4,
            },
        );
        let inner = slice(
            &inner,
            &SliceAttrs {
                axis: 2,
                begin: 1,
                end: 4,
            },
        );
        assert!(inner.allclose(&x, 0.0));
    }

    #[test]
    fn bn_is_per_channel_affine() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 2), vec![1.0, 1.0, 2.0, 2.0]);
        let y = batch_norm(&x, &[2.0, 3.0], &[0.0, 1.0]);
        assert_eq!(y.data(), &[2.0, 4.0, 4.0, 7.0]);
    }

    #[test]
    fn upsample_replicates_nearest() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 1), vec![1.0, 2.0]);
        let y = upsample(&x, 2);
        assert_eq!(y.shape(), &Shape::nhwc(1, 2, 4, 1));
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn flatten_preserves_data() {
        let x = seq_tensor(Shape::nhwc(2, 2, 2, 2));
        let y = flatten(&x);
        assert_eq!(y.shape(), &Shape::rf(2, 8));
        assert_eq!(y.data(), x.data());
    }
}
