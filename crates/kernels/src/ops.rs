//! Reference implementations of every operator in the IR.
//!
//! These are deliberately straightforward loop nests: they are the
//! correctness oracle for the transformation passes, not a fast runtime.
//!
//! Each operator comes in up to three flavours:
//!
//! * the plain allocating form (`conv2d`, `pool`, ...) — validates its
//!   operands and returns `Result`, the public oracle API;
//! * an `_into` form writing into a caller-provided (zero-filled) output —
//!   what the executor's tensor arena calls so freed buffers get recycled
//!   instead of reallocated;
//! * for the heavy kernels, a *sharded* form over a row or channel range
//!   ([`conv2d_rows_into`], [`conv2d_direct_channels_into`],
//!   [`dense_rows_into`]) — the unit of intra-op parallelism. Each output
//!   element's floating-point accumulation order is independent of the
//!   sharding, so any split produces bit-identical results.

use crate::im2col::{gemm_accumulate, im2col_rows, lowered_dims, KernelError};
use crate::microkernel::{self, Epilogue, GemmPath, PackedB};
use crate::probe::{self, ProbePoint};
use crate::tensor::Tensor;
use pimflow_ir::shape_infer::conv_out_extent;
use pimflow_ir::{ActivationKind, Conv2dAttrs, PadAttrs, PoolAttrs, PoolKind, Shape, SliceAttrs};
use std::ops::Range;

/// Lowered rows streamed through the GEMM per block: bounds the im2col
/// scratch to `CONV_ROW_BLOCK * k_elems` floats instead of the whole
/// lowered matrix, while keeping each GEMM call large enough to amortize
/// its k-blocking.
pub const CONV_ROW_BLOCK: usize = 128;

fn shape_err(msg: impl Into<String>) -> KernelError {
    KernelError::ShapeMismatch(msg.into())
}

/// Output shape of a convolution over `in_shape`, with the operand
/// validation that used to live in asserts.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if the input is not 4-D or the
/// kernel does not fit, and [`KernelError::Unsupported`] for grouped
/// convolutions that are not depthwise.
pub fn conv2d_out_shape(in_shape: &Shape, attrs: &Conv2dAttrs) -> Result<Shape, KernelError> {
    if in_shape.rank() != 4 {
        return Err(shape_err(format!(
            "conv input must be NHWC, got {in_shape}"
        )));
    }
    if attrs.out_channels == 0 {
        // Downstream GEMM cores divide by the column count; a zero-channel
        // conv is a malformed graph, not a valid empty computation.
        return Err(shape_err("conv out_channels must be non-zero"));
    }
    let ic = in_shape.c();
    if attrs.groups > 1 && !attrs.is_depthwise_for(ic) {
        return Err(KernelError::Unsupported(format!(
            "grouped conv (groups = {}, ic = {ic}, oc = {}) is not depthwise",
            attrs.groups, attrs.out_channels
        )));
    }
    let oh = conv_out_extent(
        in_shape.h(),
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .ok_or_else(|| {
        shape_err(format!(
            "kernel {} does not fit input {in_shape}",
            attrs.kernel
        ))
    })?;
    let ow = conv_out_extent(
        in_shape.w(),
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .ok_or_else(|| {
        shape_err(format!(
            "kernel {} does not fit input {in_shape}",
            attrs.kernel
        ))
    })?;
    Ok(Shape::nhwc(in_shape.n(), oh, ow, attrs.out_channels))
}

/// Output shape of a spatial pooling over `in_shape`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if the input is not 4-D or the
/// window does not fit.
pub fn pool_out_shape(in_shape: &Shape, attrs: &PoolAttrs) -> Result<Shape, KernelError> {
    if in_shape.rank() != 4 {
        return Err(shape_err(format!(
            "pool input must be NHWC, got {in_shape}"
        )));
    }
    let oh = conv_out_extent(
        in_shape.h(),
        attrs.kernel.h,
        attrs.stride.h,
        attrs.padding.h,
    )
    .ok_or_else(|| {
        shape_err(format!(
            "window {} does not fit input {in_shape}",
            attrs.kernel
        ))
    })?;
    let ow = conv_out_extent(
        in_shape.w(),
        attrs.kernel.w,
        attrs.stride.w,
        attrs.padding.w,
    )
    .ok_or_else(|| {
        shape_err(format!(
            "window {} does not fit input {in_shape}",
            attrs.kernel
        ))
    })?;
    Ok(Shape::nhwc(in_shape.n(), oh, ow, in_shape.c()))
}

fn check_conv_params(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
) -> Result<Shape, KernelError> {
    let out_shape = conv2d_out_shape(x.shape(), attrs)?;
    let ic = x.shape().c();
    let expect_w = if attrs.groups > 1 {
        attrs.kernel.h * attrs.kernel.w * ic
    } else {
        attrs.kernel.h * attrs.kernel.w * ic * attrs.out_channels
    };
    if weights.len() != expect_w {
        return Err(shape_err(format!(
            "conv weight length {} (expected {expect_w})",
            weights.len()
        )));
    }
    if bias.len() != attrs.out_channels {
        return Err(shape_err(format!(
            "conv bias length {} (expected {})",
            bias.len(),
            attrs.out_channels
        )));
    }
    Ok(out_shape)
}

/// 2-D convolution over an NHWC input.
///
/// Weight layout: `[kh][kw][ic_per_group][oc]` flattened row-major for
/// regular convolution and `[kh][kw][c]` for depthwise.
///
/// Regular (groups = 1) convolutions stream [`CONV_ROW_BLOCK`]-row blocks
/// of the lowered input through a GEMM. The path is chosen by
/// [`GemmPath`] (read from `PIMFLOW_EXACT_KERNELS`; pin it with
/// [`conv2d_with`]): [`GemmPath::Fast`] packs the weight matrix once and
/// runs the register-blocked micro-kernel with a fused bias epilogue
/// ([`conv2d_rows_packed`]) — within
/// [`crate::tolerance::Tolerance::kernel_default`] of the oracle, the bias
/// joining after the products instead of seeding them; [`GemmPath::Exact`]
/// bias-seeds and runs the scalar loop ([`conv2d_rows_into`]),
/// bit-identical to [`conv2d_direct`]. Both paths are bit-identical to
/// themselves at any intra-op row sharding. Depthwise convolutions take
/// the per-channel direct nest ([`conv2d_direct_channels_into`]) on either
/// path.
///
/// # Errors
///
/// Returns [`KernelError`] if shapes/lengths are inconsistent with `attrs`.
pub fn conv2d(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
) -> Result<Tensor, KernelError> {
    conv2d_with(x, weights, bias, attrs, GemmPath::from_env())
}

/// [`conv2d`] with an explicit [`GemmPath`] instead of the environment
/// lookup.
///
/// # Errors
///
/// Same contract as [`conv2d`].
pub fn conv2d_with(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
    path: GemmPath,
) -> Result<Tensor, KernelError> {
    let out_shape = check_conv_params(x, weights, bias, attrs)?;
    let mut out = Tensor::zeros(out_shape);
    conv2d_into(x, weights, bias, attrs, path, &mut out)?;
    Ok(out)
}

/// Fills a pre-allocated, correctly-shaped output (validation already done
/// by [`check_conv_params`] / the executor's shape pass).
pub(crate) fn conv2d_into(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
    path: GemmPath,
    out: &mut Tensor,
) -> Result<(), KernelError> {
    if attrs.groups > 1 {
        // The full channel range writes the output layout directly.
        let c = x.shape().c();
        conv2d_direct_channels_into(x, weights, bias, attrs, 0..c, out.data_mut());
        Ok(())
    } else {
        let rows = out.shape().n() * out.shape().h() * out.shape().w();
        let mut scratch = Vec::new();
        match path {
            GemmPath::Fast => {
                let dims = lowered_dims(x.shape(), attrs);
                let packed = microkernel::pack_b(weights, dims.k_elems, dims.out_channels);
                conv2d_rows_packed(
                    x,
                    &packed,
                    bias,
                    attrs,
                    0..rows,
                    &mut scratch,
                    out.data_mut(),
                )
            }
            GemmPath::Exact => conv2d_rows_into(
                x,
                weights,
                bias,
                attrs,
                0..rows,
                &mut scratch,
                out.data_mut(),
            ),
        }
    }
}

/// Computes lowered rows `rows` of a regular (groups = 1) convolution into
/// `out` (length `rows.len() * out_channels`, the contiguous slice of the
/// NHWC output covering those rows). `scratch` is the caller's reusable
/// im2col buffer — per-worker scratch under intra-op sharding.
///
/// Streams [`CONV_ROW_BLOCK`] rows at a time: bias-seed, lower, GEMM. The
/// per-element accumulation order (`k` ascending) is independent of both
/// the block size and the row range, so any sharding of the row space is
/// bit-identical to the unsharded run.
///
/// # Errors
///
/// Returns [`KernelError::Unsupported`] for grouped attrs.
///
/// # Panics
///
/// Panics if `out` does not match the row range or the range is out of
/// bounds.
pub fn conv2d_rows_into(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
    rows: Range<usize>,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) -> Result<(), KernelError> {
    let _probe = probe::span(ProbePoint::ConvRowsExact);
    let dims = lowered_dims(x.shape(), attrs);
    let oc = attrs.out_channels;
    assert_eq!(out.len(), rows.len() * oc, "conv output slice length");
    let mut begin = rows.start;
    while begin < rows.end {
        let end = (begin + CONV_ROW_BLOCK).min(rows.end);
        im2col_rows(x, attrs, begin, end, scratch)?;
        let block = &mut out[(begin - rows.start) * oc..(end - rows.start) * oc];
        // Direct conv starts each accumulator at the bias; seed the output
        // rows the same way so this path reproduces it bit for bit.
        for row in block.chunks_exact_mut(oc) {
            row.copy_from_slice(bias);
        }
        gemm_accumulate(scratch, weights, block, dims.k_elems, oc);
        begin = end;
    }
    Ok(())
}

/// Fast-path counterpart of [`conv2d_rows_into`]: streams the same
/// [`CONV_ROW_BLOCK`]-row im2col blocks through the register-blocked
/// micro-kernel against a pre-packed weight matrix
/// ([`microkernel::pack_b`] of the `[k_elems, oc]` filter), with the bias
/// fused into the store epilogue.
///
/// The pack is taken by reference so the executor builds it **once per
/// node** at staging time and shares it across every row block and every
/// sharded worker. Per output element the products accumulate in ascending
/// `k` order and the bias joins last — independent of the row range, so
/// sharding stays bit-identical; relative to the bias-seeded oracle the
/// one reassociated addition is bounded by
/// [`crate::tolerance::Tolerance::kernel_default`].
///
/// # Errors
///
/// Returns [`KernelError::Unsupported`] for grouped attrs.
///
/// # Panics
///
/// Panics if the pack's dimensions disagree with `attrs`, `out` does not
/// match the row range, or the range is out of bounds.
pub fn conv2d_rows_packed(
    x: &Tensor,
    packed: &PackedB,
    bias: &[f32],
    attrs: &Conv2dAttrs,
    rows: Range<usize>,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) -> Result<(), KernelError> {
    let _probe = probe::span(ProbePoint::ConvRowsFast);
    let dims = lowered_dims(x.shape(), attrs);
    let oc = attrs.out_channels;
    assert_eq!(packed.k(), dims.k_elems, "packed weight k dimension");
    assert_eq!(packed.n(), oc, "packed weight column count");
    assert_eq!(out.len(), rows.len() * oc, "conv output slice length");
    let mut begin = rows.start;
    while begin < rows.end {
        let end = (begin + CONV_ROW_BLOCK).min(rows.end);
        im2col_rows(x, attrs, begin, end, scratch)?;
        let block = &mut out[(begin - rows.start) * oc..(end - rows.start) * oc];
        microkernel::gemm_packed(scratch, packed, block, Epilogue::Bias(bias));
        begin = end;
    }
    Ok(())
}

/// Computes channels `channels` of a depthwise convolution into `out`, laid
/// out `[n * oh * ow, channels.len()]` (channel-local). For the full
/// channel range this *is* the NHWC output layout; for a sub-range the
/// caller scatters the chunk into the final tensor. Each output element is
/// accumulated independently (`ky`, `kx` ascending), so channel sharding is
/// bit-identical to the full nest.
///
/// # Panics
///
/// Panics if `out` does not match the channel range, the range is out of
/// bounds, or `attrs` is not depthwise for the input.
pub fn conv2d_direct_channels_into(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
    channels: Range<usize>,
    out: &mut [f32],
) {
    let _probe = probe::span(ProbePoint::DepthwiseDirect);
    let (n, ih, iw, ic) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (kh, kw) = (attrs.kernel.h, attrs.kernel.w);
    let (sh, sw) = (attrs.stride.h, attrs.stride.w);
    let (ph, pw) = (attrs.padding.h, attrs.padding.w);
    assert!(
        attrs.is_depthwise_for(ic),
        "channel sharding is depthwise-only"
    );
    assert!(channels.end <= ic, "channel range out of bounds");
    let oh = (ih + 2 * ph - kh) / sh + 1;
    let ow = (iw + 2 * pw - kw) / sw + 1;
    let width = channels.len();
    assert_eq!(
        out.len(),
        n * oh * ow * width,
        "depthwise output slice length"
    );
    let xd = x.data();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let out_base = ((b * oh + oy) * ow + ox) * width;
                for (local, co) in channels.clone().enumerate() {
                    let mut acc = bias[co];
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy as usize >= ih {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix as usize >= iw {
                                continue;
                            }
                            let in_base = ((b * ih + iy as usize) * iw + ix as usize) * ic;
                            acc += xd[in_base + co] * weights[(ky * kw + kx) * ic + co];
                        }
                    }
                    out[out_base + local] = acc;
                }
            }
        }
    }
}

/// Direct (naive loop nest) 2-D convolution — the numerical oracle the
/// streaming im2col path in [`conv2d`] is validated against.
///
/// # Errors
///
/// Returns [`KernelError`] if shapes/lengths are inconsistent with `attrs`.
pub fn conv2d_direct(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    attrs: &Conv2dAttrs,
) -> Result<Tensor, KernelError> {
    let out_shape = check_conv_params(x, weights, bias, attrs)?;
    let (n, ih, iw, ic) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (kh, kw) = (attrs.kernel.h, attrs.kernel.w);
    let (sh, sw) = (attrs.stride.h, attrs.stride.w);
    let (ph, pw) = (attrs.padding.h, attrs.padding.w);
    let oc = attrs.out_channels;
    let depthwise = attrs.groups > 1;
    let (oh, ow) = (out_shape.h(), out_shape.w());
    let mut out = Tensor::zeros(out_shape);
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for co in 0..oc {
                    let mut acc = bias[co];
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy as usize >= ih {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix as usize >= iw {
                                continue;
                            }
                            let in_base = ((b * ih + iy as usize) * iw + ix as usize) * ic;
                            if depthwise {
                                let w = weights[(ky * kw + kx) * ic + co];
                                acc += xd[in_base + co] * w;
                            } else {
                                let w_base = ((ky * kw + kx) * ic) * oc + co;
                                for ci in 0..ic {
                                    acc += xd[in_base + ci] * weights[w_base + ci * oc];
                                }
                            }
                        }
                    }
                    od[((b * oh + oy) * ow + ox) * oc + co] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Fully-connected layer: `y = x W + b` with `W` laid out `[in][out]`.
///
/// Routed by [`GemmPath`] (read from `PIMFLOW_EXACT_KERNELS`; pin it with
/// [`dense_with`]): [`GemmPath::Fast`] packs `W` and runs the
/// register-blocked micro-kernel with the bias fused into the epilogue
/// ([`dense_rows_packed`]); [`GemmPath::Exact`] runs the bias-seeded
/// scalar nest ([`dense_rows_into`]).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if shapes/lengths are
/// inconsistent or `out_features` is zero.
pub fn dense(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
) -> Result<Tensor, KernelError> {
    dense_with(x, weights, bias, out_features, GemmPath::from_env())
}

/// [`dense`] with an explicit [`GemmPath`] instead of the environment
/// lookup.
///
/// # Errors
///
/// Same contract as [`dense`].
pub fn dense_with(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    path: GemmPath,
) -> Result<Tensor, KernelError> {
    if x.shape().rank() != 2 {
        return Err(shape_err(format!(
            "dense input must be 2-D, got {}",
            x.shape()
        )));
    }
    if out_features == 0 {
        return Err(shape_err("dense out_features must be non-zero"));
    }
    let (rows, in_f) = (x.shape().n(), x.shape().c());
    if weights.len() != in_f * out_features {
        return Err(shape_err(format!(
            "dense weight length {} (expected {})",
            weights.len(),
            in_f * out_features
        )));
    }
    if bias.len() != out_features {
        return Err(shape_err(format!(
            "dense bias length {} (expected {out_features})",
            bias.len()
        )));
    }
    let mut out = Tensor::zeros(Shape::rf(rows, out_features));
    match path {
        GemmPath::Fast => {
            let packed = microkernel::pack_b(weights, in_f, out_features);
            dense_rows_packed(x, &packed, bias, 0..rows, out.data_mut());
        }
        GemmPath::Exact => dense_rows_into(x, weights, bias, out_features, 0..rows, out.data_mut()),
    }
    Ok(out)
}

/// Computes output rows `rows` of a dense layer into `out` (length
/// `rows.len() * out_features`, the contiguous slice of the `[rows, out]`
/// output). Accumulation per element ascends the input features, identical
/// at any row sharding.
///
/// # Panics
///
/// Panics if `out` does not match the row range.
pub fn dense_rows_into(
    x: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let _probe = probe::span(ProbePoint::DenseRowsExact);
    let in_f = x.shape().c();
    assert_eq!(
        out.len(),
        rows.len() * out_features,
        "dense output slice length"
    );
    let xd = x.data();
    for (local, r) in rows.enumerate() {
        for o in 0..out_features {
            let mut acc = bias[o];
            for i in 0..in_f {
                acc += xd[r * in_f + i] * weights[i * out_features + o];
            }
            out[local * out_features + o] = acc;
        }
    }
}

/// Fast-path counterpart of [`dense_rows_into`] over a pre-packed weight
/// matrix: the register-blocked micro-kernel with the bias fused into the
/// store epilogue. Same sharding contract (per-element accumulation order
/// independent of the row range); same tolerance contract vs the
/// bias-seeded oracle as [`conv2d_rows_packed`].
///
/// # Panics
///
/// Panics if the pack's `k` differs from the input feature count or `out`
/// does not match the row range.
pub fn dense_rows_packed(
    x: &Tensor,
    packed: &PackedB,
    bias: &[f32],
    rows: Range<usize>,
    out: &mut [f32],
) {
    let _probe = probe::span(ProbePoint::DenseRowsFast);
    let in_f = x.shape().c();
    let out_features = packed.n();
    assert_eq!(packed.k(), in_f, "packed weight k dimension");
    assert_eq!(
        out.len(),
        rows.len() * out_features,
        "dense output slice length"
    );
    let xd = &x.data()[rows.start * in_f..rows.end * in_f];
    microkernel::gemm_packed(xd, packed, out, Epilogue::Bias(bias));
}

/// Applies a unary activation element-wise, in place (softmax is applied
/// row-wise over the last dimension). The executor uses this to overwrite a
/// dying input buffer instead of allocating a fresh one.
pub fn activation_inplace(out: &mut Tensor, kind: ActivationKind) {
    match kind {
        ActivationKind::Relu => {
            for v in out.data_mut() {
                *v = v.max(0.0);
            }
        }
        ActivationKind::Relu6 => {
            for v in out.data_mut() {
                *v = v.clamp(0.0, 6.0);
            }
        }
        ActivationKind::Sigmoid => {
            for v in out.data_mut() {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        ActivationKind::Swish => {
            for v in out.data_mut() {
                *v *= 1.0 / (1.0 + (-*v).exp());
            }
        }
        ActivationKind::Gelu => {
            for v in out.data_mut() {
                // tanh approximation of GELU.
                let x3 = *v * *v * *v;
                *v = 0.5 * *v * (1.0 + ((0.797_884_6) * (*v + 0.044715 * x3)).tanh());
            }
        }
        ActivationKind::Tanh => {
            for v in out.data_mut() {
                *v = v.tanh();
            }
        }
        ActivationKind::Softmax => {
            let c = out.shape().c();
            let rows = out.shape().numel() / c;
            let d = out.data_mut();
            for r in 0..rows {
                let row = &mut d[r * c..(r + 1) * c];
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }
}

/// Applies a unary activation element-wise (softmax is applied row-wise over
/// the last dimension).
pub fn activation(x: &Tensor, kind: ActivationKind) -> Tensor {
    let mut out = x.clone();
    activation_inplace(&mut out, kind);
    out
}

/// Element-wise addition, accumulating `b` into `a`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if shapes differ.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<(), KernelError> {
    if a.shape() != b.shape() {
        return Err(shape_err(format!(
            "add operands {} vs {}",
            a.shape(),
            b.shape()
        )));
    }
    for (o, &v) in a.data_mut().iter_mut().zip(b.data()) {
        *o += v;
    }
    Ok(())
}

/// Element-wise addition.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    let mut out = a.clone();
    add_assign(&mut out, b)?;
    Ok(out)
}

/// Element-wise multiplication of `b` into `a`, with optional `[N,1,1,C]`
/// broadcast of `b`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if shapes are incompatible.
pub fn mul_assign(a: &mut Tensor, b: &Tensor) -> Result<(), KernelError> {
    if a.shape() == b.shape() {
        for (o, &v) in a.data_mut().iter_mut().zip(b.data()) {
            *o *= v;
        }
        return Ok(());
    }
    // Broadcast path: b is [N,1,1,C].
    if a.shape().rank() != 4
        || b.shape().rank() != 4
        || (b.shape().h(), b.shape().w()) != (1, 1)
        || a.shape().c() != b.shape().c()
        || a.shape().n() != b.shape().n()
    {
        return Err(shape_err(format!(
            "mul operands {} vs {} (not equal, not [N,1,1,C] broadcast)",
            a.shape(),
            b.shape()
        )));
    }
    let (n, h, w, c) = (a.shape().n(), a.shape().h(), a.shape().w(), a.shape().c());
    let bd = b.data();
    let od = a.data_mut();
    for bi in 0..n {
        for i in 0..h * w {
            for ci in 0..c {
                od[(bi * h * w + i) * c + ci] *= bd[bi * c + ci];
            }
        }
    }
    Ok(())
}

/// Element-wise multiplication with optional `[N,1,1,C]` broadcast of `b`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if shapes are incompatible.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    let mut out = a.clone();
    mul_assign(&mut out, b)?;
    Ok(out)
}

/// Inference-mode batch normalization in place:
/// `x[i] = x[i] * scale[c] + shift[c]`.
///
/// # Panics
///
/// Panics if parameter lengths do not match the channel count.
pub fn batch_norm_assign(x: &mut Tensor, scale: &[f32], shift: &[f32]) {
    let c = x.shape().c();
    assert_eq!(scale.len(), c, "bn scale length");
    assert_eq!(shift.len(), c, "bn shift length");
    for (i, v) in x.data_mut().iter_mut().enumerate() {
        let ci = i % c;
        *v = *v * scale[ci] + shift[ci];
    }
}

/// Inference-mode batch normalization: `y = x * scale[c] + shift[c]`.
///
/// # Panics
///
/// Panics if parameter lengths do not match the channel count.
pub fn batch_norm(x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let mut out = x.clone();
    batch_norm_assign(&mut out, scale, shift);
    out
}

/// Spatial pooling.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if the input is not 4-D or the
/// window does not fit.
pub fn pool(x: &Tensor, attrs: &PoolAttrs) -> Result<Tensor, KernelError> {
    let mut out = Tensor::zeros(pool_out_shape(x.shape(), attrs)?);
    pool_into(x, attrs, &mut out);
    Ok(out)
}

/// Fills a pre-allocated pooling output (shape already validated).
pub(crate) fn pool_into(x: &Tensor, attrs: &PoolAttrs, out: &mut Tensor) {
    let (n, ih, iw, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (kh, kw) = (attrs.kernel.h, attrs.kernel.w);
    let (sh, sw) = (attrs.stride.h, attrs.stride.w);
    let (ph, pw) = (attrs.padding.h, attrs.padding.w);
    let (oh, ow) = (out.shape().h(), out.shape().w());
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let mut acc = match attrs.kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0;
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy as usize >= ih {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix < 0 || ix as usize >= iw {
                                continue;
                            }
                            let v = xd[((b * ih + iy as usize) * iw + ix as usize) * c + ci];
                            match attrs.kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    od[((b * oh + oy) * ow + ox) * c + ci] = match attrs.kind {
                        PoolKind::Max => acc,
                        // Count-includes-padding=false semantics.
                        PoolKind::Avg => {
                            if count > 0 {
                                acc / count as f32
                            } else {
                                0.0
                            }
                        }
                    };
                }
            }
        }
    }
}

/// Global average pooling: NHWC -> `[N,1,1,C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c) = (x.shape().n(), x.shape().c());
    let mut out = Tensor::zeros(Shape::nhwc(n, 1, 1, c));
    gap_into(x, &mut out);
    out
}

/// Fills a pre-allocated, **zero-filled** GAP output (it accumulates).
pub(crate) fn gap_into(x: &Tensor, out: &mut Tensor) {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for i in 0..h * w {
            for ci in 0..c {
                od[b * c + ci] += xd[(b * h * w + i) * c + ci];
            }
        }
    }
    let inv = 1.0 / (h * w) as f32;
    for v in od {
        *v *= inv;
    }
}

/// Zero-pads the spatial dimensions of an NHWC tensor.
pub fn pad(x: &Tensor, attrs: &PadAttrs) -> Tensor {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let (oh, ow) = (h + attrs.extra_h(), w + attrs.extra_w());
    let mut out = Tensor::zeros(Shape::nhwc(n, oh, ow, c));
    pad_into(x, attrs, &mut out);
    out
}

/// Fills a pre-allocated, **zero-filled** pad output (borders stay zero).
pub(crate) fn pad_into(x: &Tensor, attrs: &PadAttrs, out: &mut Tensor) {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    for b in 0..n {
        for y in 0..h {
            for xx in 0..w {
                for ci in 0..c {
                    let v = x.get(&[b, y, xx, ci]);
                    out.set(&[b, y + attrs.top, xx + attrs.left, ci], v);
                }
            }
        }
    }
}

/// Slices along a single axis.
///
/// # Panics
///
/// Panics if the slice range is invalid.
pub fn slice(x: &Tensor, attrs: &SliceAttrs) -> Tensor {
    let shape = x.shape();
    assert!(attrs.axis < shape.rank(), "slice axis out of range");
    assert!(
        attrs.end <= shape.dim(attrs.axis) && !attrs.is_empty(),
        "invalid slice range"
    );
    let mut out = Tensor::zeros(shape.with_dim(attrs.axis, attrs.len()));
    slice_into(x, attrs, &mut out);
    out
}

/// Fills a pre-allocated slice output.
pub(crate) fn slice_into(x: &Tensor, attrs: &SliceAttrs, out: &mut Tensor) {
    let out_shape = out.shape().clone();
    let mut idx = vec![0usize; out_shape.rank()];
    let total = out_shape.numel();
    for lin in 0..total {
        // Decode lin into out-coordinates.
        let mut rem = lin;
        for ax in (0..out_shape.rank()).rev() {
            idx[ax] = rem % out_shape.dim(ax);
            rem /= out_shape.dim(ax);
        }
        let mut src = idx.clone();
        src[attrs.axis] += attrs.begin;
        out.data_mut()[lin] = x.get(&src);
    }
}

/// Shape of the concatenation of `shapes` along `axis`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if no inputs are given, the axis
/// is out of range, or the inputs disagree on any other dimension.
pub fn concat_out_shape(shapes: &[&Shape], axis: usize) -> Result<Shape, KernelError> {
    let first = *shapes
        .first()
        .ok_or_else(|| shape_err("concat needs inputs"))?;
    if axis >= first.rank() {
        return Err(shape_err(format!(
            "concat axis {axis} out of range for {first}"
        )));
    }
    let mut total_axis = 0;
    for s in shapes {
        if s.rank() != first.rank() {
            return Err(shape_err(format!("concat rank mismatch: {first} vs {s}")));
        }
        for ax in 0..first.rank() {
            if ax != axis && s.dim(ax) != first.dim(ax) {
                return Err(shape_err(format!(
                    "concat inputs {first} vs {s} differ outside axis {axis}"
                )));
            }
        }
        total_axis += s.dim(axis);
    }
    Ok(first.with_dim(axis, total_axis))
}

/// Concatenates tensors along a single axis.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if no inputs are given or shapes
/// are incompatible.
pub fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor, KernelError> {
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let mut out = Tensor::zeros(concat_out_shape(&shapes, axis)?);
    concat_into(inputs, axis, &mut out);
    Ok(out)
}

/// Fills a pre-allocated concat output (shape already validated).
pub(crate) fn concat_into(inputs: &[&Tensor], axis: usize, out: &mut Tensor) {
    let rank = out.shape().rank();
    let mut axis_offset = 0;
    for t in inputs {
        let s = t.shape();
        let n = s.numel();
        let mut idx = vec![0usize; rank];
        for lin in 0..n {
            let mut rem = lin;
            for ax in (0..rank).rev() {
                idx[ax] = rem % s.dim(ax);
                rem /= s.dim(ax);
            }
            let mut dst = idx.clone();
            dst[axis] += axis_offset;
            let v = t.data()[lin];
            out.set(&dst, v);
        }
        axis_offset += s.dim(axis);
    }
}

/// Nearest-neighbour upsampling of an NHWC tensor by `factor`.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn upsample(x: &Tensor, factor: usize) -> Tensor {
    assert!(factor >= 1, "upsample factor must be >= 1");
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    let mut out = Tensor::zeros(Shape::nhwc(n, h * factor, w * factor, c));
    upsample_into(x, factor, &mut out);
    out
}

/// Fills a pre-allocated upsample output.
pub(crate) fn upsample_into(x: &Tensor, factor: usize, out: &mut Tensor) {
    let (n, h, w, c) = (x.shape().n(), x.shape().h(), x.shape().w(), x.shape().c());
    for b in 0..n {
        for oy in 0..h * factor {
            for ox in 0..w * factor {
                for ci in 0..c {
                    let v = x.get(&[b, oy / factor, ox / factor, ci]);
                    out.set(&[b, oy, ox, ci], v);
                }
            }
        }
    }
}

/// Flattens to `[N, rest]`.
pub fn flatten(x: &Tensor) -> Tensor {
    let n = x.shape().n();
    let rest = x.shape().numel() / n;
    Tensor::from_vec(Shape::rf(n, rest), x.data().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::Hw;

    fn seq_tensor(shape: Shape) -> Tensor {
        Tensor::from_fn(shape, |i| (i % 13) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weight matrix preserves input channels.
        let x = seq_tensor(Shape::nhwc(1, 3, 3, 2));
        let w = vec![1.0, 0.0, 0.0, 1.0]; // [ic=2][oc=2] identity
        let b = vec![0.0, 0.0];
        let y = conv2d(&x, &w, &b, &Conv2dAttrs::pointwise(2)).unwrap();
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn conv_matches_hand_computation() {
        // 2x2 input, 2x2 kernel, single channel: one output element.
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 4.0]);
        let w = vec![0.5, -1.0, 2.0, 0.25];
        let attrs = Conv2dAttrs {
            out_channels: 1,
            kernel: Hw::square(2),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 1,
        };
        let y = conv2d(&x, &w, &[1.0], &attrs).unwrap();
        let expect = 1.0 * 0.5 + -2.0 + 3.0 * 2.0 + 4.0 * 0.25 + 1.0;
        assert!((y.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn conv_padding_zero_extends() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, 1), vec![3.0]);
        let attrs = Conv2dAttrs {
            out_channels: 1,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let w = vec![1.0; 9];
        let y = conv2d(&x, &w, &[0.0], &attrs).unwrap();
        assert_eq!(y.shape(), &Shape::nhwc(1, 1, 1, 1));
        assert!((y.data()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn depthwise_scales_channels_independently() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 1, 2), vec![2.0, 5.0]);
        let attrs = Conv2dAttrs {
            out_channels: 2,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 2,
        };
        let y = conv2d(&x, &[10.0, 100.0], &[0.0, 0.0], &attrs).unwrap();
        assert_eq!(y.data(), &[20.0, 500.0]);
    }

    #[test]
    fn conv_fast_path_matches_direct_oracle() {
        // Streaming im2col + GEMM vs the naive loop nest, across batch,
        // stride, padding, and kernel-size variations (one case spans
        // multiple CONV_ROW_BLOCKs). The exact path must be bit-identical;
        // the micro-kernel path reassociates the bias addition and must be
        // within the documented kernel tolerance.
        let tol = crate::tolerance::Tolerance::kernel_default();
        for (batch, h, w, ic, oc, k, s, p) in [
            (1, 6, 6, 3, 4, 3, 1, 1),
            (2, 9, 7, 3, 5, 3, 2, 1),
            (3, 5, 5, 2, 3, 1, 1, 0),
            (1, 8, 8, 4, 6, 5, 2, 2),
            (2, 17, 13, 3, 4, 3, 1, 1), // 2*17*13 = 442 rows > CONV_ROW_BLOCK
        ] {
            let attrs = Conv2dAttrs {
                out_channels: oc,
                kernel: Hw::square(k),
                stride: Hw::square(s),
                padding: Hw::square(p),
                groups: 1,
            };
            let x = seq_tensor(Shape::nhwc(batch, h, w, ic));
            let wts: Vec<f32> = (0..k * k * ic * oc)
                .map(|i| ((i * 7 + 3) % 13) as f32 * 0.1 - 0.6)
                .collect();
            let bias: Vec<f32> = (0..oc).map(|i| i as f32 * 0.5 - 1.0).collect();
            let direct = conv2d_direct(&x, &wts, &bias, &attrs).unwrap();

            let exact = conv2d_with(&x, &wts, &bias, &attrs, GemmPath::Exact).unwrap();
            assert_eq!(exact.shape(), direct.shape());
            assert!(
                exact.allclose(&direct, 0.0),
                "exact path must be bit-identical: max diff {}",
                exact.max_abs_diff(&direct)
            );

            let fast = conv2d_with(&x, &wts, &bias, &attrs, GemmPath::Fast).unwrap();
            assert_eq!(fast.shape(), direct.shape());
            tol.check(fast.data(), direct.data())
                .unwrap_or_else(|e| panic!("fast path outside tolerance: {e}"));
        }
    }

    #[test]
    fn conv_fast_path_row_sharding_is_bit_identical() {
        // The micro-kernel path must keep the sharding contract the scalar
        // path had: any split of the row space reproduces the unsharded
        // run byte for byte, sharing one packed weight matrix.
        let attrs = Conv2dAttrs {
            out_channels: 5,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let x = seq_tensor(Shape::nhwc(1, 11, 9, 3));
        let wts: Vec<f32> = (0..3 * 3 * 3 * 5)
            .map(|i| ((i * 5 + 1) % 17) as f32 * 0.07 - 0.5)
            .collect();
        let bias = vec![0.25; 5];
        let whole = conv2d_with(&x, &wts, &bias, &attrs, GemmPath::Fast).unwrap();
        let dims = lowered_dims(x.shape(), &attrs);
        let packed = microkernel::pack_b(&wts, dims.k_elems, dims.out_channels);
        let rows = 11 * 9;
        let oc = 5;
        for shards in [2, 3, 7] {
            let mut sharded = vec![0.0f32; rows * oc];
            let mut scratch = Vec::new();
            for r in pimflow_pool::chunk_ranges(rows, shards) {
                let out = &mut sharded[r.start * oc..r.end * oc];
                conv2d_rows_packed(&x, &packed, &bias, &attrs, r, &mut scratch, out).unwrap();
            }
            assert_eq!(whole.data(), &sharded[..], "{shards} shards");
        }
    }

    #[test]
    fn dense_fast_path_matches_oracle_and_shards_identically() {
        let x = seq_tensor(Shape::rf(13, 21));
        let wts: Vec<f32> = (0..21 * 9)
            .map(|i| ((i * 3 + 2) % 9) as f32 * 0.11 - 0.4)
            .collect();
        let bias: Vec<f32> = (0..9).map(|i| i as f32 * 0.2 - 0.7).collect();
        let exact = dense_with(&x, &wts, &bias, 9, GemmPath::Exact).unwrap();
        let fast = dense_with(&x, &wts, &bias, 9, GemmPath::Fast).unwrap();
        crate::tolerance::Tolerance::kernel_default()
            .check(fast.data(), exact.data())
            .unwrap_or_else(|e| panic!("dense fast path outside tolerance: {e}"));
        let packed = microkernel::pack_b(&wts, 21, 9);
        let mut sharded = vec![0.0f32; 13 * 9];
        for r in pimflow_pool::chunk_ranges(13, 4) {
            let out = &mut sharded[r.start * 9..r.end * 9];
            dense_rows_packed(&x, &packed, &bias, r, out);
        }
        assert_eq!(fast.data(), &sharded[..]);
    }

    #[test]
    fn conv_rejects_zero_out_channels() {
        let x = seq_tensor(Shape::nhwc(1, 4, 4, 3));
        let attrs = Conv2dAttrs::pointwise(0);
        let err = conv2d(&x, &[], &[], &attrs).unwrap_err();
        assert!(
            matches!(&err, KernelError::ShapeMismatch(m) if m.contains("non-zero")),
            "{err}"
        );
        assert!(dense(&seq_tensor(Shape::rf(2, 3)), &[], &[], 0).is_err());
    }

    #[test]
    fn conv_row_sharding_is_bit_identical() {
        let attrs = Conv2dAttrs {
            out_channels: 5,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let x = seq_tensor(Shape::nhwc(1, 11, 9, 3));
        let wts: Vec<f32> = (0..3 * 3 * 3 * 5)
            .map(|i| ((i * 5 + 1) % 17) as f32 * 0.07 - 0.5)
            .collect();
        let bias = vec![0.25; 5];
        let whole = conv2d_with(&x, &wts, &bias, &attrs, GemmPath::Exact).unwrap();
        let rows = 11 * 9;
        let oc = 5;
        let mut sharded = vec![0.0f32; rows * oc];
        let mut scratch = Vec::new();
        for r in pimflow_pool::chunk_ranges(rows, 3) {
            let out = &mut sharded[r.start * oc..r.end * oc];
            conv2d_rows_into(&x, &wts, &bias, &attrs, r, &mut scratch, out).unwrap();
        }
        assert_eq!(whole.data(), &sharded[..]);
    }

    #[test]
    fn depthwise_channel_sharding_is_bit_identical() {
        let attrs = Conv2dAttrs {
            out_channels: 6,
            kernel: Hw::square(3),
            stride: Hw::square(2),
            padding: Hw::square(1),
            groups: 6,
        };
        let x = seq_tensor(Shape::nhwc(2, 9, 7, 6));
        let wts: Vec<f32> = (0..3 * 3 * 6)
            .map(|i| ((i * 11 + 3) % 7) as f32 * 0.2 - 0.6)
            .collect();
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
        let whole = conv2d(&x, &wts, &bias, &attrs).unwrap();
        let (oh, ow) = (whole.shape().h(), whole.shape().w());
        let spatial = 2 * oh * ow;
        let mut scattered = vec![0.0f32; spatial * 6];
        for r in pimflow_pool::chunk_ranges(6, 4) {
            let width = r.len();
            let mut chunk = vec![0.0f32; spatial * width];
            conv2d_direct_channels_into(&x, &wts, &bias, &attrs, r.clone(), &mut chunk);
            for row in 0..spatial {
                for (local, co) in r.clone().enumerate() {
                    scattered[row * 6 + co] = chunk[row * width + local];
                }
            }
        }
        assert_eq!(whole.data(), &scattered[..]);
    }

    #[test]
    fn dense_row_sharding_is_bit_identical() {
        let x = seq_tensor(Shape::rf(7, 12));
        let wts: Vec<f32> = (0..12 * 5)
            .map(|i| ((i * 3 + 2) % 9) as f32 * 0.11 - 0.4)
            .collect();
        let bias = vec![0.5; 5];
        let whole = dense_with(&x, &wts, &bias, 5, GemmPath::Exact).unwrap();
        let mut sharded = [0.0f32; 7 * 5];
        for r in pimflow_pool::chunk_ranges(7, 2) {
            let out = &mut sharded[r.start * 5..r.end * 5];
            dense_rows_into(&x, &wts, &bias, 5, r, out);
        }
        assert_eq!(whole.data(), &sharded[..]);
    }

    #[test]
    fn conv_rejects_bad_operands() {
        let x = seq_tensor(Shape::nhwc(1, 4, 4, 3));
        let attrs = Conv2dAttrs::pointwise(2);
        // Wrong weight length.
        assert!(matches!(
            conv2d(&x, &[0.0; 5], &[0.0; 2], &attrs),
            Err(KernelError::ShapeMismatch(_))
        ));
        // Wrong bias length.
        assert!(matches!(
            conv2d(&x, &[0.0; 6], &[0.0; 3], &attrs),
            Err(KernelError::ShapeMismatch(_))
        ));
        // Kernel larger than padded input.
        let big = Conv2dAttrs {
            out_channels: 2,
            kernel: Hw::square(9),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 1,
        };
        assert!(matches!(
            conv2d(&x, &[0.0; 9 * 9 * 3 * 2], &[0.0; 2], &big),
            Err(KernelError::ShapeMismatch(_))
        ));
        // Grouped but not depthwise.
        let grouped = Conv2dAttrs {
            out_channels: 6,
            kernel: Hw::square(1),
            stride: Hw::square(1),
            padding: Hw::square(0),
            groups: 3,
        };
        assert!(matches!(
            conv2d(&x, &[0.0; 3], &[0.0; 6], &grouped),
            Err(KernelError::Unsupported(_))
        ));
        // Non-NHWC input.
        let flat = seq_tensor(Shape::rf(2, 8));
        assert!(matches!(
            conv2d(&flat, &[0.0; 6], &[0.0; 2], &attrs),
            Err(KernelError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let x = seq_tensor(Shape::nhwc(1, 4, 4, 2));
        let attrs = PoolAttrs {
            kind: PoolKind::Max,
            kernel: Hw::square(7),
            stride: Hw::square(1),
            padding: Hw::square(0),
        };
        assert!(matches!(
            pool(&x, &attrs),
            Err(KernelError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = seq_tensor(Shape::rf(2, 3));
        let b = seq_tensor(Shape::rf(3, 2));
        assert!(matches!(add(&a, &b), Err(KernelError::ShapeMismatch(_))));
    }

    #[test]
    fn mul_rejects_non_broadcastable() {
        let a = seq_tensor(Shape::nhwc(1, 2, 2, 3));
        let b = seq_tensor(Shape::nhwc(1, 2, 1, 3));
        assert!(matches!(mul(&a, &b), Err(KernelError::ShapeMismatch(_))));
    }

    #[test]
    fn concat_rejects_incompatible_inputs() {
        let a = seq_tensor(Shape::nhwc(1, 2, 2, 3));
        let b = seq_tensor(Shape::nhwc(1, 3, 2, 3));
        // Inputs differ on a non-concat axis.
        assert!(matches!(
            concat(&[&a, &b], 3),
            Err(KernelError::ShapeMismatch(_))
        ));
        // Empty input list.
        assert!(matches!(concat(&[], 0), Err(KernelError::ShapeMismatch(_))));
    }

    #[test]
    fn dense_matches_matvec() {
        let x = Tensor::from_vec(Shape::rf(1, 3), vec![1.0, 2.0, 3.0]);
        // W [3][2] row-major by input.
        let w = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let y = dense(&x, &w, &[0.5, -0.5], 2).unwrap();
        assert_eq!(y.data(), &[1.0 + 3.0 + 0.5, 2.0 + 3.0 - 0.5]);
    }

    #[test]
    fn activations_clamp() {
        let x = Tensor::from_vec(Shape::rf(1, 3), vec![-1.0, 3.0, 9.0]);
        assert_eq!(
            activation(&x, ActivationKind::Relu).data(),
            &[0.0, 3.0, 9.0]
        );
        assert_eq!(
            activation(&x, ActivationKind::Relu6).data(),
            &[0.0, 3.0, 6.0]
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = seq_tensor(Shape::rf(3, 5));
        let y = activation(&x, ActivationKind::Softmax);
        for r in 0..3 {
            let s: f32 = y.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mul_broadcasts_se_scale() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let s = Tensor::from_vec(Shape::nhwc(1, 1, 1, 2), vec![10.0, 0.5]);
        let y = mul(&x, &s).unwrap();
        assert_eq!(y.data(), &[10.0, 1.0, 30.0, 2.0]);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 2.0, 3.0, 6.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn maxpool_picks_max() {
        let x = Tensor::from_vec(Shape::nhwc(1, 2, 2, 1), vec![1.0, 7.0, 3.0, 2.0]);
        let attrs = PoolAttrs {
            kind: PoolKind::Max,
            kernel: Hw::square(2),
            stride: Hw::square(2),
            padding: Hw::square(0),
        };
        assert_eq!(pool(&x, &attrs).unwrap().data(), &[7.0]);
    }

    #[test]
    fn slice_concat_roundtrip() {
        let x = seq_tensor(Shape::nhwc(1, 6, 2, 3));
        let a = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 0,
                end: 2,
            },
        );
        let b = slice(
            &x,
            &SliceAttrs {
                axis: 1,
                begin: 2,
                end: 6,
            },
        );
        let y = concat(&[&a, &b], 1).unwrap();
        assert!(y.allclose(&x, 0.0));
    }

    #[test]
    fn pad_then_slice_recovers_input() {
        let x = seq_tensor(Shape::nhwc(1, 3, 3, 2));
        let p = pad(
            &x,
            &PadAttrs {
                top: 1,
                bottom: 2,
                left: 1,
                right: 1,
            },
        );
        let inner = slice(
            &p,
            &SliceAttrs {
                axis: 1,
                begin: 1,
                end: 4,
            },
        );
        let inner = slice(
            &inner,
            &SliceAttrs {
                axis: 2,
                begin: 1,
                end: 4,
            },
        );
        assert!(inner.allclose(&x, 0.0));
    }

    #[test]
    fn bn_is_per_channel_affine() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 2), vec![1.0, 1.0, 2.0, 2.0]);
        let y = batch_norm(&x, &[2.0, 3.0], &[0.0, 1.0]);
        assert_eq!(y.data(), &[2.0, 4.0, 4.0, 7.0]);
    }

    #[test]
    fn upsample_replicates_nearest() {
        let x = Tensor::from_vec(Shape::nhwc(1, 1, 2, 1), vec![1.0, 2.0]);
        let y = upsample(&x, 2);
        assert_eq!(y.shape(), &Shape::nhwc(1, 2, 4, 1));
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn flatten_preserves_data() {
        let x = seq_tensor(Shape::nhwc(2, 2, 2, 2));
        let y = flatten(&x);
        assert_eq!(y.shape(), &Shape::rf(2, 8));
        assert_eq!(y.data(), x.data());
    }
}
