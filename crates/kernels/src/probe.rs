//! Per-function timing counters (counts + µs/call) for the kernel layer.
//!
//! Compiled in only under the `probes` cargo feature (enabled by
//! `pimflow-bench`; the bare library carries zero probe code), and gated at
//! runtime by a relaxed [`AtomicBool`] that defaults to **off** — a
//! disabled probe site costs one relaxed load. Enabled sites record call
//! counts and cumulative nanoseconds into global atomics, so a bench run
//! can print the oar-scheduler-style per-function table
//! (`Function X called N times, took T (t µs on average)`) and embed it in
//! `BENCH_kernels.json`.
//!
//! Counters are process-global: [`reset`] + run + [`snapshot`] must not be
//! interleaved with other kernel work if exact counts matter. The executor
//! itself never touches the flag.

#[cfg(feature = "probes")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A probed kernel-layer function. The discriminant indexes the counter
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProbePoint {
    /// Lowered-row materialization ([`crate::im2col::im2col_rows`]).
    Im2colRows,
    /// Packed-B construction ([`crate::microkernel::pack_b`]).
    PackB,
    /// Register-blocked GEMM ([`crate::microkernel::gemm_packed`]).
    GemmMicrokernel,
    /// Scalar oracle GEMM core (`gemm_accumulate`).
    GemmScalar,
    /// Fast conv row kernel ([`crate::ops::conv2d_rows_packed`]).
    ConvRowsFast,
    /// Exact conv row kernel ([`crate::ops::conv2d_rows_into`]).
    ConvRowsExact,
    /// Depthwise direct kernel
    /// ([`crate::ops::conv2d_direct_channels_into`]).
    DepthwiseDirect,
    /// Fast dense kernel ([`crate::ops::dense_rows_packed`]).
    DenseRowsFast,
    /// Exact dense kernel ([`crate::ops::dense_rows_into`]).
    DenseRowsExact,
}

/// Number of probe points (counter table size).
const POINTS: usize = 9;

impl ProbePoint {
    /// Stable display name, used in stdout tables and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ProbePoint::Im2colRows => "im2col_rows",
            ProbePoint::PackB => "pack_b",
            ProbePoint::GemmMicrokernel => "gemm_microkernel",
            ProbePoint::GemmScalar => "gemm_scalar",
            ProbePoint::ConvRowsFast => "conv2d_rows_fast",
            ProbePoint::ConvRowsExact => "conv2d_rows_exact",
            ProbePoint::DepthwiseDirect => "depthwise_direct",
            ProbePoint::DenseRowsFast => "dense_rows_fast",
            ProbePoint::DenseRowsExact => "dense_rows_exact",
        }
    }

    /// All probe points, in counter-table order.
    pub fn all() -> [ProbePoint; POINTS] {
        [
            ProbePoint::Im2colRows,
            ProbePoint::PackB,
            ProbePoint::GemmMicrokernel,
            ProbePoint::GemmScalar,
            ProbePoint::ConvRowsFast,
            ProbePoint::ConvRowsExact,
            ProbePoint::DepthwiseDirect,
            ProbePoint::DenseRowsFast,
            ProbePoint::DenseRowsExact,
        ]
    }
}

/// One function's accumulated timings, as returned by [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStat {
    /// Probed function name.
    pub function: String,
    /// Times the function ran while the probe was enabled.
    pub calls: u64,
    /// Total wall time across those calls, microseconds.
    pub total_us: f64,
    /// Mean microseconds per call (0 when never called).
    pub us_per_call: f64,
}

#[cfg(feature = "probes")]
mod imp {
    use super::*;
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    struct Counter {
        calls: AtomicU64,
        nanos: AtomicU64,
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: Counter = Counter {
        calls: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    };
    static COUNTERS: [Counter; POINTS] = [ZERO; POINTS];

    /// Turns recording on or off (global, off by default).
    pub fn enable(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// True when probes are currently recording.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Zeroes every counter.
    pub fn reset() {
        for c in &COUNTERS {
            c.calls.store(0, Ordering::Relaxed);
            c.nanos.store(0, Ordering::Relaxed);
        }
    }

    /// Counters for every probe point, in [`ProbePoint::all`] order.
    pub fn snapshot() -> Vec<ProbeStat> {
        ProbePoint::all()
            .into_iter()
            .map(|p| {
                let c = &COUNTERS[p as usize];
                let calls = c.calls.load(Ordering::Relaxed);
                let total_us = c.nanos.load(Ordering::Relaxed) as f64 / 1e3;
                ProbeStat {
                    function: p.name().to_string(),
                    calls,
                    total_us,
                    us_per_call: if calls == 0 {
                        0.0
                    } else {
                        total_us / calls as f64
                    },
                }
            })
            .collect()
    }

    /// An RAII timing span: records one call and its wall time on drop.
    #[derive(Debug)]
    pub struct ProbeSpan(Option<(ProbePoint, Instant)>);

    impl Drop for ProbeSpan {
        fn drop(&mut self) {
            if let Some((point, start)) = self.0.take() {
                let c = &COUNTERS[point as usize];
                c.calls.fetch_add(1, Ordering::Relaxed);
                c.nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Opens a timing span for `point`; a no-op value when disabled.
    #[inline]
    pub fn span(point: ProbePoint) -> ProbeSpan {
        if ENABLED.load(Ordering::Relaxed) {
            ProbeSpan(Some((point, Instant::now())))
        } else {
            ProbeSpan(None)
        }
    }
}

#[cfg(not(feature = "probes"))]
mod imp {
    use super::*;

    /// No-op without the `probes` feature.
    pub fn enable(_on: bool) {}

    /// Always false without the `probes` feature.
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `probes` feature.
    pub fn reset() {}

    /// Empty without the `probes` feature.
    pub fn snapshot() -> Vec<ProbeStat> {
        Vec::new()
    }

    /// Zero-sized no-op span.
    #[derive(Debug)]
    pub struct ProbeSpan;

    /// Compiles to nothing without the `probes` feature.
    #[inline(always)]
    pub fn span(_point: ProbePoint) -> ProbeSpan {
        ProbeSpan
    }
}

pub use imp::{enable, enabled, reset, snapshot, span, ProbeSpan};

/// Renders the oar-scheduler-style per-function table (one line per
/// function that ran).
pub fn render_table(stats: &[ProbeStat]) -> String {
    let mut out = String::new();
    for s in stats.iter().filter(|s| s.calls > 0) {
        out.push_str(&format!(
            "Function {:<20} called {:>9} times, took {:>10.1}ms ({:>8.2}µs on average)\n",
            s.function,
            s.calls,
            s.total_us / 1e3,
            s.us_per_call
        ));
    }
    out
}

#[cfg(all(test, feature = "probes"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing_and_enabled_probe_counts() {
        // Serialized in one test: the counters are process-global.
        reset();
        enable(false);
        drop(span(ProbePoint::PackB));
        assert!(snapshot().iter().all(|s| s.calls == 0));

        enable(true);
        drop(span(ProbePoint::PackB));
        drop(span(ProbePoint::PackB));
        enable(false);
        let stats = snapshot();
        let pack = stats.iter().find(|s| s.function == "pack_b").unwrap();
        assert!(pack.calls >= 2, "both spans recorded");
        let table = render_table(&stats);
        assert!(table.contains("pack_b"));
        reset();
        assert!(snapshot().iter().all(|s| s.calls == 0 && s.total_us == 0.0));
    }
}
