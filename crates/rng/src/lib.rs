//! # pimflow-rng
//!
//! A small, deterministic, dependency-free pseudo-random number generator
//! for the PIMFlow workspace. Three distinct consumers share it:
//!
//! * **parameter generation** ([`pimflow-kernels`]) — every node's weights
//!   are regenerated from a 64-bit key, so the generator must be seedable
//!   and stable across platforms and releases;
//! * **request streams** (`pimflow-serve`) — Poisson arrivals need
//!   exponential inter-arrival sampling with replayable seeds;
//! * **property tests** — the workspace runs with zero network access, so
//!   randomized tests draw their cases from here instead of `proptest`.
//!
//! The core is xoshiro256++ seeded through splitmix64 (the seeding scheme
//! recommended by the xoshiro authors). Both algorithms are public domain.
//!
//! [`pimflow-kernels`]: ../pimflow_kernels/index.html

#![warn(missing_docs)]

/// The splitmix64 mixer: advances `state` and returns the next value.
///
/// Used standalone for cheap stateless hashing of seeds/keys and internally
/// to expand a 64-bit seed into the 256-bit xoshiro state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use pimflow_rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the generator by `n` steps without producing values.
    ///
    /// Equivalent to calling [`next_u64`](Rng::next_u64) `n` times and
    /// discarding the results, but skips the result computation — the
    /// parameter generator uses this to jump over the columns of a weight
    /// matrix it does not need while staying on the exact same stream.
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
        }
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` (24 random mantissa bits).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        let mut wide = (self.next_u64() as u128) * (bound as u128);
        let mut lo = wide as u64;
        if lo < bound {
            // Reject the short residue window to keep the mapping unbiased.
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                wide = (self.next_u64() as u128) * (bound as u128);
                lo = wide as u64;
            }
        }
        (wide >> 64) as u64
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_f32() * (hi - lo)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An exponentially distributed value with the given `rate` (mean
    /// `1/rate`) — the inter-arrival time of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential() requires a positive rate");
        // 1 - U is in (0, 1], so the log is finite.
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_honor_bounds() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.range_usize(3, 17);
            assert!((3..17).contains(&v));
            let f = r.range_f32(-2.5, 2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = Rng::seed_from_u64(6);
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} should approximate {}",
            1.0 / rate
        );
    }

    #[test]
    fn skip_matches_discarded_draws() {
        let mut a = Rng::seed_from_u64(21);
        let mut b = Rng::seed_from_u64(21);
        a.skip(7);
        for _ in 0..7 {
            b.next_u64();
        }
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // skip(0) is a no-op.
        let before = a.clone();
        a.skip(0);
        assert_eq!(a, before);
    }

    #[test]
    fn splitmix_is_stateless_hashable() {
        let mut s1 = 99u64;
        let mut s2 = 99u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        assert_eq!(s1, s2);
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
