//! # pimflow-json
//!
//! A small, dependency-free JSON library standing in for `serde` +
//! `serde_json`: the workspace builds with zero network access, so the
//! structs we actually round-trip (graphs, execution plans, evaluation
//! suites, serving metrics) serialize through the [`ToJson`] / [`FromJson`]
//! traits here instead of derive macros.
//!
//! * [`Json`] — the value tree (objects keep insertion order, so output is
//!   deterministic);
//! * [`Json::parse`] — a recursive-descent parser for the full JSON grammar;
//! * [`Json::to_string_compact`] / [`Json::to_string_pretty`] — writers;
//! * [`json_struct!`] / [`json_unit_enum!`] — derive-like macros covering
//!   plain structs and C-like enums; enums with payloads write their two
//!   impls by hand (externally tagged, serde-compatible shape).
//!
//! # Examples
//!
//! ```
//! use pimflow_json::{json_struct, FromJson, Json, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point { x: f64, y: f64 }
//! json_struct!(Point { x, y });
//!
//! let p = Point { x: 1.0, y: -2.5 };
//! let text = p.to_json().to_string_compact();
//! assert_eq!(text, r#"{"x":1,"y":-2.5}"#);
//! let back = Point::from_json(&Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(back, p);
//! ```

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// A parsed or constructed JSON value.
///
/// Objects are ordered lists of `(key, value)` pairs rather than maps: the
/// writer emits fields in insertion order, which keeps serialized artifacts
/// byte-stable across runs (a hard requirement for the serving runtime's
/// determinism guarantee).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for conversion errors).
    pub offset: usize,
}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for JsonError {}

impl Json {
    /// Builds an object from field pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value of field `name`.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::msg(format!("missing field `{name}`"))),
            other => Err(JsonError::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements, if `self` is an array.
    ///
    /// # Errors
    ///
    /// Returns an error otherwise.
    pub fn elements(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The number, if `self` is one.
    ///
    /// # Errors
    ///
    /// Returns an error otherwise.
    pub fn number(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::msg(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The string, if `self` is one.
    ///
    /// # Errors
    ///
    /// Returns an error otherwise.
    pub fn string(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parses `text` as one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Serializes without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (the `serde_json` pretty shape).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..depth * w {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; null is the least-bad representation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    self.pos += 1;
                                    self.pos -= 1; // eat consumed `u`
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so it is valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.string().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_json_float {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                Ok(json.number()? as $ty)
            }
        }
    )+};
}

impl_json_float!(f32, f64);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = json.number()?;
                if n.trunc() != n {
                    return Err(JsonError::msg(format!("expected integer, got {n}")));
                }
                if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return Err(JsonError::msg(format!(
                        "{n} out of range for {}", stringify!($ty)
                    )));
                }
                Ok(n as $ty)
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.elements()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.elements()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            other => Err(JsonError::msg(format!(
                "expected 2-tuple, got {} items",
                other.len()
            ))),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.elements()? {
            [a, b, c] => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            other => Err(JsonError::msg(format!(
                "expected 3-tuple, got {} items",
                other.len()
            ))),
        }
    }
}

/// Serializes any [`ToJson`] value to a pretty string (the `serde_json::
/// to_string_pretty` replacement).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Serializes any [`ToJson`] value to a compact string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_compact()
}

/// Parses `text` and converts it into `T` (the `serde_json::from_str`
/// replacement).
///
/// # Errors
///
/// Returns a [`JsonError`] from either the parse or the conversion.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Implements [`ToJson`] and [`FromJson`] for a plain struct, serializing
/// it as an object with one field per listed member (in order).
///
/// Must be invoked in a scope with access to the listed fields.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(json.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for a C-like enum, serializing
/// each variant as its name string (the serde externally-tagged shape for
/// unit variants).
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::Json::Str(name.to_string())
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match json.string()? {
                    $(s if s == stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::JsonError::msg(format!(
                        "unknown {} variant `{other}`", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":"x\ny","e":[true,false]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
    }

    #[test]
    fn pretty_matches_compact_semantically() {
        let text = r#"{"a":[1,2],"b":{"c":"d"}}"#;
        let v = Json::parse(text).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600} ctrl\u{1}";
        let v = Json::Str(original.to_string());
        let parsed = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for text in [
            "{not json",
            "[1,2",
            "\"open",
            "01x",
            "{\"a\":}",
            "nul",
            "[1,]",
            "",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn trailing_data_is_rejected() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(Json::Num(5.0).to_string_compact(), "5");
        assert_eq!(Json::Num(-2.5).to_string_compact(), "-2.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MAX] {
            let text = Json::Num(x).to_string_compact();
            let back = Json::parse(&text).unwrap().number().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn primitive_trait_roundtrips() {
        let xs: Vec<(String, u32)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string(&xs);
        let back: Vec<(String, u32)> = from_str(&text).unwrap();
        assert_eq!(back, xs);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt), "null");
        let back: Option<f64> = from_str("2.5").unwrap();
        assert_eq!(back, Some(2.5));
    }

    #[test]
    fn integer_conversion_rejects_fractions_and_overflow() {
        assert!(from_str::<u32>("1.5").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert_eq!(from_str::<i32>("-5").unwrap(), -5);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: usize,
        ratio: Option<f64>,
    }
    json_struct!(Demo { name, count, ratio });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    json_unit_enum!(Mode { Fast, Slow });

    #[test]
    fn struct_macro_roundtrips() {
        let d = Demo {
            name: "x".into(),
            count: 3,
            ratio: Some(0.5),
        };
        let text = to_string(&d);
        assert_eq!(text, r#"{"name":"x","count":3,"ratio":0.5}"#);
        assert_eq!(from_str::<Demo>(&text).unwrap(), d);
        let none = Demo {
            name: "y".into(),
            count: 0,
            ratio: None,
        };
        assert_eq!(from_str::<Demo>(&to_string(&none)).unwrap(), none);
    }

    #[test]
    fn unit_enum_macro_roundtrips() {
        assert_eq!(to_string(&Mode::Fast), r#""Fast""#);
        assert_eq!(from_str::<Mode>(r#""Slow""#).unwrap(), Mode::Slow);
        assert!(from_str::<Mode>(r#""Medium""#).is_err());
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let err = from_str::<Demo>(r#"{"name":"x","count":1}"#).unwrap_err();
        assert!(err.message.contains("ratio"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let text = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&text).is_err());
    }
}
