//! The program validation pass.
//!
//! Checks the same buffer/activation/drain protocol the trace validator of
//! `pimflow-pimsim` enforces, but over typed programs and against an
//! abstract [`MachineSpec`] instead of a concrete DRAM config — plus the
//! whole-program barrier-balance property no single channel can see.

use crate::inst::{IsaProgram, PimInst, ProgramError};
use std::error::Error;
use std::fmt;

/// The buffer resources a program is validated against, abstracted from
/// any one backend's config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// Number of addressable staging buffers per channel.
    pub num_buffers: usize,
    /// Capacity of one staging buffer in bytes.
    pub buffer_bytes: usize,
}

impl MachineSpec {
    /// The Newton++ staging resources (4 × 4 KiB global buffers).
    pub fn newton_plus_plus() -> Self {
        MachineSpec {
            num_buffers: 4,
            buffer_bytes: 4096,
        }
    }
}

/// Protocol violations a program can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaViolation {
    /// A buffer index exceeds the machine's buffer count.
    BufferOutOfRange {
        /// Channel of the offending instruction.
        channel: usize,
        /// Instruction position within the channel.
        index: usize,
        /// Offending buffer.
        buffer: u8,
    },
    /// A BUFWRITE payload exceeds the buffer capacity.
    BufWriteOverflow {
        /// Channel of the offending instruction.
        channel: usize,
        /// Instruction position within the channel.
        index: usize,
        /// Payload size.
        bytes: u32,
    },
    /// MACBURST issued before any ROWACT selected a row.
    MacBeforeActivate {
        /// Channel of the offending instruction.
        channel: usize,
        /// Instruction position within the channel.
        index: usize,
    },
    /// MACBURST reads a buffer no BUFWRITE ever staged.
    MacFromEmptyBuffer {
        /// Channel of the offending instruction.
        channel: usize,
        /// Instruction position within the channel.
        index: usize,
        /// Offending buffer.
        buffer: u8,
    },
    /// DRAIN issued before any MACBURST produced results.
    DrainBeforeMac {
        /// Channel of the offending instruction.
        channel: usize,
        /// Instruction position within the channel.
        index: usize,
    },
    /// Channels disagree on barrier counts (no rendezvous possible).
    UnbalancedBarriers {
        /// First channel whose barrier count differs from channel 0's.
        channel: usize,
        /// Barriers on that channel.
        have: usize,
        /// Barriers on channel 0.
        want: usize,
    },
    /// Channels disagree on overlap-barrier counts: the relaxed member
    /// separators of a fused region must mark the same member boundaries
    /// on every channel, or the per-member accounting is meaningless.
    UnbalancedOverlapBarriers {
        /// First channel whose overlap-barrier count differs from
        /// channel 0's.
        channel: usize,
        /// Overlap barriers on that channel.
        have: usize,
        /// Overlap barriers on channel 0.
        want: usize,
    },
}

impl fmt::Display for IsaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaViolation::BufferOutOfRange {
                channel,
                index,
                buffer,
            } => write!(
                f,
                "channel {channel}, inst {index}: buffer {buffer} out of range"
            ),
            IsaViolation::BufWriteOverflow {
                channel,
                index,
                bytes,
            } => write!(
                f,
                "channel {channel}, inst {index}: BUFWRITE of {bytes} B overflows the buffer"
            ),
            IsaViolation::MacBeforeActivate { channel, index } => {
                write!(
                    f,
                    "channel {channel}, inst {index}: MACBURST before any ROWACT"
                )
            }
            IsaViolation::MacFromEmptyBuffer {
                channel,
                index,
                buffer,
            } => write!(
                f,
                "channel {channel}, inst {index}: MACBURST reads never-staged buffer {buffer}"
            ),
            IsaViolation::DrainBeforeMac { channel, index } => {
                write!(
                    f,
                    "channel {channel}, inst {index}: DRAIN before any MACBURST"
                )
            }
            IsaViolation::UnbalancedBarriers {
                channel,
                have,
                want,
            } => write!(
                f,
                "channel {channel} has {have} barriers, channel 0 has {want}"
            ),
            IsaViolation::UnbalancedOverlapBarriers {
                channel,
                have,
                want,
            } => write!(
                f,
                "channel {channel} has {have} overlap barriers, channel 0 has {want}"
            ),
        }
    }
}

impl Error for IsaViolation {}

impl From<ProgramError> for IsaViolation {
    fn from(e: ProgramError) -> Self {
        match e {
            ProgramError::UnbalancedBarriers {
                channel,
                have,
                want,
            } => IsaViolation::UnbalancedBarriers {
                channel,
                have,
                want,
            },
        }
    }
}

/// Validates a program against `spec`: buffers in range and staged before
/// read, a row activated before MAC bursts, results computed before
/// drains, payloads within capacity, and barriers — hard and overlap —
/// balanced across channels. Barriers synchronize but do not reset
/// channel state — a row activated before a barrier stays activated after
/// it — and overlap barriers neither synchronize nor reset: a fused
/// consumer's staging may legally precede its producer's drain on another
/// channel, which is exactly the overlap they exist to express.
///
/// # Errors
///
/// Returns the first [`IsaViolation`] found (barrier balance first, then
/// overlap-barrier balance, then channels in order).
pub fn validate_program(program: &IsaProgram, spec: &MachineSpec) -> Result<(), IsaViolation> {
    program.epochs().map_err(IsaViolation::from)?;
    let overlap_count = |ch: &[PimInst]| {
        ch.iter()
            .filter(|i| matches!(i, PimInst::OverlapBarrier))
            .count()
    };
    let want = program
        .channels()
        .first()
        .map(|c| overlap_count(c))
        .unwrap_or(0);
    for (channel, ch) in program.channels().iter().enumerate() {
        let have = overlap_count(ch);
        if have != want {
            return Err(IsaViolation::UnbalancedOverlapBarriers {
                channel,
                have,
                want,
            });
        }
    }
    let buffers = spec.num_buffers.max(1);
    for (channel, stream) in program.channels().iter().enumerate() {
        let mut staged = vec![false; buffers];
        let mut row_open = false;
        let mut results_pending = false;
        for (index, inst) in stream.iter().enumerate() {
            match *inst {
                PimInst::BufWrite { buffer, bytes } => {
                    if buffer as usize >= buffers {
                        return Err(IsaViolation::BufferOutOfRange {
                            channel,
                            index,
                            buffer,
                        });
                    }
                    if bytes as usize > spec.buffer_bytes {
                        return Err(IsaViolation::BufWriteOverflow {
                            channel,
                            index,
                            bytes,
                        });
                    }
                    staged[buffer as usize] = true;
                }
                PimInst::BankFeed { buffer, .. } => {
                    // Fused hand-off: stages the destination buffer like a
                    // BUFWRITE, but a producer-side feed may batch more
                    // bytes than one buffer holds (it never crosses the
                    // bus), so capacity is not checked.
                    if buffer as usize >= buffers {
                        return Err(IsaViolation::BufferOutOfRange {
                            channel,
                            index,
                            buffer,
                        });
                    }
                    staged[buffer as usize] = true;
                }
                PimInst::RowActivate { .. } => row_open = true,
                PimInst::MacBurst { buffer, .. } => {
                    if buffer as usize >= buffers {
                        return Err(IsaViolation::BufferOutOfRange {
                            channel,
                            index,
                            buffer,
                        });
                    }
                    if !row_open {
                        return Err(IsaViolation::MacBeforeActivate { channel, index });
                    }
                    if !staged[buffer as usize] {
                        return Err(IsaViolation::MacFromEmptyBuffer {
                            channel,
                            index,
                            buffer,
                        });
                    }
                    results_pending = true;
                }
                PimInst::Drain { .. } => {
                    if !results_pending {
                        return Err(IsaViolation::DrainBeforeMac { channel, index });
                    }
                    results_pending = false;
                }
                PimInst::HostBurst { .. } | PimInst::Barrier | PimInst::OverlapBarrier => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::newton_plus_plus()
    }

    #[test]
    fn canonical_sequence_validates() {
        let p = IsaProgram::from_channels(vec![vec![
            PimInst::BufWrite {
                buffer: 0,
                bytes: 128,
            },
            PimInst::RowActivate { row: 0 },
            PimInst::MacBurst {
                buffer: 0,
                repeat: 16,
            },
            PimInst::Barrier,
            PimInst::MacBurst {
                buffer: 0,
                repeat: 4,
            },
            PimInst::Drain { bytes: 64 },
        ]]);
        validate_program(&p, &spec()).unwrap();
    }

    #[test]
    fn protocol_violations_are_caught() {
        let mac_first = IsaProgram::from_channels(vec![vec![PimInst::MacBurst {
            buffer: 0,
            repeat: 1,
        }]]);
        assert!(matches!(
            validate_program(&mac_first, &spec()),
            Err(IsaViolation::MacBeforeActivate { .. })
        ));

        let unstaged = IsaProgram::from_channels(vec![vec![
            PimInst::RowActivate { row: 0 },
            PimInst::MacBurst {
                buffer: 1,
                repeat: 1,
            },
        ]]);
        assert!(matches!(
            validate_program(&unstaged, &spec()),
            Err(IsaViolation::MacFromEmptyBuffer { buffer: 1, .. })
        ));

        let drain_first = IsaProgram::from_channels(vec![vec![PimInst::Drain { bytes: 8 }]]);
        assert!(matches!(
            validate_program(&drain_first, &spec()),
            Err(IsaViolation::DrainBeforeMac { .. })
        ));

        let overflow = IsaProgram::from_channels(vec![vec![PimInst::BufWrite {
            buffer: 0,
            bytes: 1 << 20,
        }]]);
        assert!(matches!(
            validate_program(&overflow, &spec()),
            Err(IsaViolation::BufWriteOverflow { .. })
        ));

        let bad_buffer = IsaProgram::from_channels(vec![vec![PimInst::BufWrite {
            buffer: 200,
            bytes: 8,
        }]]);
        assert!(matches!(
            validate_program(&bad_buffer, &spec()),
            Err(IsaViolation::BufferOutOfRange { buffer: 200, .. })
        ));

        let unbalanced = IsaProgram::from_channels(vec![vec![PimInst::Barrier], vec![]]);
        assert!(matches!(
            validate_program(&unbalanced, &spec()),
            Err(IsaViolation::UnbalancedBarriers { channel: 1, .. })
        ));

        let overlap_unbalanced =
            IsaProgram::from_channels(vec![vec![PimInst::OverlapBarrier], vec![]]);
        assert!(matches!(
            validate_program(&overlap_unbalanced, &spec()),
            Err(IsaViolation::UnbalancedOverlapBarriers { channel: 1, .. })
        ));
    }

    #[test]
    fn overlap_linked_members_validate_with_carried_state() {
        // Head member stages/activates/computes and hands off near the
        // banks; the overlap-linked tail member's staging arrives via
        // BANKFEED and its MACBURST reuses the carried channel state —
        // legal precisely because OverlapBarrier resets nothing.
        let mut head = IsaProgram::from_channels(vec![vec![
            PimInst::BufWrite {
                buffer: 0,
                bytes: 128,
            },
            PimInst::RowActivate { row: 0 },
            PimInst::MacBurst {
                buffer: 0,
                repeat: 8,
            },
            PimInst::BankFeed {
                buffer: 0,
                bytes: 64,
            },
        ]]);
        let tail = IsaProgram::from_channels(vec![vec![
            PimInst::BankFeed {
                buffer: 1,
                bytes: 0,
            },
            PimInst::RowActivate { row: 1 },
            PimInst::MacBurst {
                buffer: 1,
                repeat: 4,
            },
            PimInst::Drain { bytes: 32 },
        ]]);
        head.append_overlapped(&tail);
        validate_program(&head, &spec()).unwrap();
    }
}
