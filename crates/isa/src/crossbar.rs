//! Crossbar compute-in-array backend model (PIMCOMP-style).
//!
//! The cost structure is deliberately the opposite of Newton's DRAM-PIM:
//! weights are programmed into resistive crossbar tiles ahead of time
//! (weight-stationary), so nothing streams per reduction tile — there is
//! no GWRITE traffic at all. An input row applies through DACs in one
//! shot, every tile computes its partial matrix-vector product in a single
//! analog cycle, and ADCs dominate the latency. The result: time is
//! (nearly) independent of the reduction depth `k` within a tile wave, so
//! crossbars crush few-rows/deep-reduction layers (FC/GEMV) and lose badly
//! on many-rows/shallow layers where Newton's tCCD-paced MAC bursts fly.
//!
//! The model interprets the same [`IsaProgram`]s as every backend:
//! `BUFWRITE` is DAC input staging, `MACBURST repeat=w` is `w` analog tile
//! waves, `DRAIN` is ADC readout over the channel bus. Costs are linear
//! per instruction, so the lowering may batch rows without changing the
//! interpreted time.

use crate::backend::{BackendKind, Interpreter};
use crate::inst::{FusedRole, IsaProgram, PimInst};

/// Rows batched into one `BUFWRITE`/`MACBURST`/`DRAIN` triple by
/// [`lower_shape`]. Per-instruction costs are linear in `bytes`/`repeat`,
/// so batching only bounds program size — interpreted time is identical.
const ROW_CHUNK: usize = 64;

/// One crossbar channel's array and converter resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Wordlines per crossbar tile (reduction elements a tile folds).
    pub xbar_rows: usize,
    /// Bitlines per crossbar tile (output columns a tile produces).
    pub xbar_cols: usize,
    /// Crossbar tiles operating in parallel per channel.
    pub xbars_per_channel: usize,
    /// DAC settle + apply latency per tile wave, nanoseconds.
    pub dac_ns: f64,
    /// ADC sample + convert latency per tile wave, nanoseconds (the
    /// dominant term: ADCs are shared per tile column group).
    pub adc_ns: f64,
    /// Input staging bandwidth into the DAC registers, bytes/ns.
    pub input_bytes_per_ns: f64,
    /// Result drain bandwidth over the channel bus, bytes/ns.
    pub drain_bytes_per_ns: f64,
    /// Fixed latency per DRAIN instruction, nanoseconds.
    pub drain_latency_ns: f64,
    /// Wordline select latency charged per ROWACT, nanoseconds (only paid
    /// when interpreting Newton-shaped programs; native crossbar programs
    /// activate once).
    pub row_select_ns: f64,
}

impl CrossbarConfig {
    /// A PIMCOMP-like ReRAM substrate: 128x128 tiles, 16 per channel,
    /// ~100 ns per analog wave (ADC-bound).
    pub fn pimcomp_like() -> Self {
        CrossbarConfig {
            xbar_rows: 128,
            xbar_cols: 128,
            xbars_per_channel: 16,
            dac_ns: 8.0,
            adc_ns: 96.0,
            input_bytes_per_ns: 32.0,
            drain_bytes_per_ns: 32.0,
            drain_latency_ns: 100.0,
            row_select_ns: 2.0,
        }
    }

    /// FNV-1a fingerprint over every field's bit pattern, for cost-cache
    /// keys (mirrors `PimConfig::fingerprint`).
    pub fn fingerprint(&self) -> u64 {
        let words = [
            self.xbar_rows as u64,
            self.xbar_cols as u64,
            self.xbars_per_channel as u64,
            self.dac_ns.to_bits(),
            self.adc_ns.to_bits(),
            self.input_bytes_per_ns.to_bits(),
            self.drain_bytes_per_ns.to_bits(),
            self.drain_latency_ns.to_bits(),
            self.row_select_ns.to_bits(),
            // Version tag: bump when the cost model changes meaning.
            1,
        ];
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for w in words {
            for byte in w.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Analog tile waves one input row needs for a `k x cols` weight
    /// panel: tiles to cover the panel, issued `xbars_per_channel` at a
    /// time.
    fn waves(&self, k_elems: usize, cols: usize) -> u32 {
        let row_tiles = k_elems.div_ceil(self.xbar_rows.max(1)).max(1);
        let col_tiles = cols.div_ceil(self.xbar_cols.max(1)).max(1);
        (row_tiles * col_tiles).div_ceil(self.xbars_per_channel.max(1)) as u32
    }
}

/// The GEMM view of a workload the crossbar lowering needs: `rows` input
/// rows, each reducing `k_elems` elements into `out_channels` outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulShape {
    /// Input rows (batch x spatial positions).
    pub rows: usize,
    /// Reduction depth per output element.
    pub k_elems: usize,
    /// Output columns.
    pub out_channels: usize,
}

/// Lowers a GEMM shape to a crossbar program over `channels` channels:
/// output columns split across channels, each channel streaming input-row
/// chunks through its stationary weight tiles (f16 payloads, 2 B/elem).
/// No per-`k`-tile input streaming is emitted — that is the point of the
/// backend.
pub fn lower_shape(shape: &MatmulShape, channels: usize, cfg: &CrossbarConfig) -> IsaProgram {
    let channels = channels.max(1);
    let oc_per_channel = shape.out_channels.div_ceil(channels);
    let mut program = IsaProgram::new(channels);
    if shape.rows == 0 || shape.k_elems == 0 || shape.out_channels == 0 {
        return program;
    }
    let input_bytes = (shape.k_elems * 2).min(u32::MAX as usize) as u32;
    for ch in 0..channels {
        let oc_start = (ch * oc_per_channel).min(shape.out_channels);
        let oc_here = oc_per_channel.min(shape.out_channels - oc_start);
        if oc_here == 0 {
            continue;
        }
        let waves = cfg.waves(shape.k_elems, oc_here);
        // One activation selects the stationary weight panel for the whole
        // layer; the protocol validator requires it before any MAC burst.
        program.push(ch, PimInst::RowActivate { row: 0 });
        let mut remaining = shape.rows;
        while remaining > 0 {
            let chunk = remaining.min(ROW_CHUNK);
            program.push(
                ch,
                PimInst::BufWrite {
                    buffer: 0,
                    bytes: input_bytes.saturating_mul(chunk as u32),
                },
            );
            program.push(
                ch,
                PimInst::MacBurst {
                    buffer: 0,
                    repeat: waves.saturating_mul(chunk as u32),
                },
            );
            program.push(
                ch,
                PimInst::Drain {
                    bytes: ((chunk * oc_here * 2).min(u32::MAX as usize)) as u32,
                },
            );
            remaining -= chunk;
        }
    }
    program
}

/// Times [`IsaProgram`]s on a crossbar channel set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarInterpreter {
    cfg: CrossbarConfig,
}

impl CrossbarInterpreter {
    /// An interpreter over `cfg`'s arrays.
    pub fn new(cfg: CrossbarConfig) -> Self {
        CrossbarInterpreter { cfg }
    }

    fn inst_ns(&self, inst: &PimInst) -> f64 {
        let c = &self.cfg;
        match *inst {
            PimInst::BufWrite { bytes, .. } => bytes as f64 / c.input_bytes_per_ns.max(1e-9),
            PimInst::RowActivate { .. } => c.row_select_ns,
            PimInst::MacBurst { repeat, .. } => repeat as f64 * (c.dac_ns + c.adc_ns),
            PimInst::Drain { bytes } => {
                c.drain_latency_ns + bytes as f64 / c.drain_bytes_per_ns.max(1e-9)
            }
            // Near-bank hand-off: pays the move, not the per-DRAIN fixed
            // ADC-readout latency or any bus contention.
            PimInst::BankFeed { bytes, .. } => bytes as f64 / c.drain_bytes_per_ns.max(1e-9),
            PimInst::HostBurst { bytes } => bytes as f64 / c.drain_bytes_per_ns.max(1e-9),
            // Barriers are structure, not work: the hard barrier splits
            // epochs before costs are summed, and the overlap barrier is a
            // free member separator inside one epoch (per-instruction
            // costs are linear, so overlap-linked members sum per channel
            // and overlap only across channel imbalance — the max).
            PimInst::Barrier | PimInst::OverlapBarrier => 0.0,
        }
    }

    /// Simulated nanoseconds to execute `program`: channels run in
    /// parallel within an epoch (max), epochs run back to back (sum).
    ///
    /// # Panics
    ///
    /// Panics when the program's barriers are unbalanced across channels.
    pub fn interpret_ns(&self, program: &IsaProgram) -> f64 {
        let epochs = program
            .epochs()
            .unwrap_or_else(|e| panic!("crossbar interpreter: {e}"));
        epochs
            .iter()
            .map(|per_channel| {
                per_channel
                    .iter()
                    .map(|insts| insts.iter().map(|i| self.inst_ns(i)).sum::<f64>())
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }
}

impl Interpreter for CrossbarInterpreter {
    fn backend(&self) -> BackendKind {
        BackendKind::Crossbar
    }

    fn interpret_us(&self, program: &IsaProgram) -> f64 {
        self.interpret_ns(program) * 1e-3
    }
}

/// Lower-then-interpret shorthand: microseconds `shape` takes on
/// `channels` crossbar channels. This is the pure cost function the
/// compiler's cost cache stores per [`BackendKind::Crossbar`] key.
pub fn estimate_shape_us(shape: &MatmulShape, channels: usize, cfg: &CrossbarConfig) -> f64 {
    estimate_shape_us_fused(shape, channels, cfg, FusedRole::Standalone)
}

/// Role-aware variant of [`estimate_shape_us`]: the bus crossings a fused
/// placement elides are rewritten to [`PimInst::BankFeed`]s before
/// interpreting, so a fusion-group member's cost reflects activations
/// staying near the banks. `Standalone` is exactly [`estimate_shape_us`].
pub fn estimate_shape_us_fused(
    shape: &MatmulShape,
    channels: usize,
    cfg: &CrossbarConfig,
    role: FusedRole,
) -> f64 {
    let program = role.rewrite_program(&lower_shape(shape, channels, cfg));
    CrossbarInterpreter::new(*cfg).interpret_us(&program)
}

/// Overlap-linked fused-chain estimate: each member is lowered under its
/// [`FusedRole`], the members are concatenated with
/// [`IsaProgram::append_overlapped`] (relaxed separators, no rendezvous),
/// and the single resulting epoch is interpreted. Per-instruction costs
/// are linear, so a channel's time is the sum of its member streams and
/// the chain time is the max over channels — max-of-sums, against the
/// back-to-back composition's sum-of-maxes. The overlapped estimate is
/// therefore structurally never above the sum of the per-member
/// [`estimate_shape_us_fused`] costs: cross-channel imbalance hides under
/// other members' work instead of being paid once per member.
pub fn estimate_chain_us_overlapped(
    members: &[(MatmulShape, FusedRole)],
    channels: usize,
    cfg: &CrossbarConfig,
) -> f64 {
    let channels = channels.max(1);
    let mut linked: Option<IsaProgram> = None;
    for (shape, role) in members {
        let p = role.rewrite_program(&lower_shape(shape, channels, cfg));
        match &mut linked {
            Some(chain) => chain.append_overlapped(&p),
            None => linked = Some(p),
        }
    }
    match linked {
        Some(chain) => CrossbarInterpreter::new(*cfg).interpret_us(&chain),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_program, MachineSpec};

    fn cfg() -> CrossbarConfig {
        CrossbarConfig::pimcomp_like()
    }

    #[test]
    fn lowered_programs_validate() {
        let shape = MatmulShape {
            rows: 196,
            k_elems: 256,
            out_channels: 1024,
        };
        let p = lower_shape(&shape, 16, &cfg());
        let spec = MachineSpec {
            num_buffers: 1,
            buffer_bytes: usize::MAX,
        };
        validate_program(&p, &spec).unwrap();
        assert_eq!(p.num_channels(), 16);
    }

    #[test]
    fn row_batching_does_not_change_cost() {
        // Per-instruction costs are linear in bytes/repeat, so a shape of
        // two full chunks must cost exactly twice one full chunk's
        // streaming time (BUFWRITE + MACBURST + DRAIN per chunk); only the
        // single upfront activation is shared.
        let one = MatmulShape {
            rows: ROW_CHUNK,
            k_elems: 512,
            out_channels: 64,
        };
        let two = MatmulShape {
            rows: 2 * ROW_CHUNK,
            k_elems: 512,
            out_channels: 64,
        };
        let c = cfg();
        let t1 = estimate_shape_us(&one, 4, &c);
        let t2 = estimate_shape_us(&two, 4, &c);
        let activation = c.row_select_ns * 1e-3;
        assert!(
            (t2 - (2.0 * (t1 - activation) + activation)).abs() < 1e-9,
            "t1 {t1} t2 {t2}"
        );
    }

    #[test]
    fn deep_reduction_is_cheap_many_rows_are_not() {
        let c = cfg();
        // FC-style: 1 row, deep reduction. Newton streams ~100k COMPs for
        // this; the crossbar does 25 waves.
        let fc = MatmulShape {
            rows: 1,
            k_elems: 25088,
            out_channels: 4096,
        };
        // Early pointwise conv: shallow reduction, a sea of rows.
        let pw = MatmulShape {
            rows: 12544,
            k_elems: 32,
            out_channels: 16,
        };
        let fc_us = estimate_shape_us(&fc, 16, &c);
        let pw_us = estimate_shape_us(&pw, 16, &c);
        assert!(fc_us < 10.0, "FC should be a few us, got {fc_us}");
        assert!(
            pw_us > 100.0 * fc_us,
            "row-streaming must dominate: fc {fc_us} pw {pw_us}"
        );
    }

    #[test]
    fn empty_shapes_cost_nothing() {
        let z = MatmulShape {
            rows: 0,
            k_elems: 128,
            out_channels: 128,
        };
        assert_eq!(estimate_shape_us(&z, 16, &cfg()), 0.0);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = cfg();
        let mut b = a;
        b.adc_ns = 50.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), cfg().fingerprint());
    }

    #[test]
    fn overlapped_chain_never_exceeds_member_sum() {
        // Deliberately imbalanced members: out_channels not divisible by
        // the channel count, so per-member channel loads differ and the
        // overlap has imbalance to hide.
        let c = cfg();
        let members = [
            (
                MatmulShape {
                    rows: 196,
                    k_elems: 96,
                    out_channels: 17,
                },
                FusedRole::Head,
            ),
            (
                MatmulShape {
                    rows: 196,
                    k_elems: 17,
                    out_channels: 530,
                },
                FusedRole::Tail,
            ),
        ];
        for channels in [1, 4, 16] {
            let sum: f64 = members
                .iter()
                .map(|(s, r)| estimate_shape_us_fused(s, channels, &c, *r))
                .sum();
            let overlapped = estimate_chain_us_overlapped(&members, channels, &c);
            assert!(
                overlapped <= sum + 1e-9,
                "{channels}ch: overlapped {overlapped} > sum {sum}"
            );
            assert!(overlapped > 0.0);
        }
        assert_eq!(estimate_chain_us_overlapped(&[], 4, &c), 0.0);
    }

    #[test]
    fn interpreter_reports_its_backend() {
        assert_eq!(
            CrossbarInterpreter::new(cfg()).backend(),
            BackendKind::Crossbar
        );
    }
}
