//! Text round-trip for ISA programs.
//!
//! The format extends the command-trace interchange of `pimflow-pimsim`
//! (same line discipline, own header and mnemonics) so programs can be
//! dumped, diffed, and replayed as files:
//!
//! ```text
//! # pimflow pim-isa v1 channel=0
//! BUFWRITE buf=0 bytes=128
//! ROWACT row=3
//! MACBURST buf=0 repeat=16
//! DRAIN bytes=64
//! HOSTBURST bytes=512
//! BARRIER
//! OBARRIER
//! ```
//!
//! [`parse_program`] inverts [`program_to_text`] exactly; the golden test
//! in the workspace suite pins every mnemonic.

use crate::inst::{IsaProgram, PimInst};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Header line marking a program file, its format version, and a channel
/// section.
pub const PROGRAM_HEADER: &str = "# pimflow pim-isa v1";

/// Errors produced while parsing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ISA parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

/// Renders one instruction as a program line.
pub fn inst_to_line(inst: &PimInst) -> String {
    match *inst {
        PimInst::BufWrite { buffer, bytes } => format!("BUFWRITE buf={buffer} bytes={bytes}"),
        PimInst::RowActivate { row } => format!("ROWACT row={row}"),
        PimInst::MacBurst { buffer, repeat } => format!("MACBURST buf={buffer} repeat={repeat}"),
        PimInst::Drain { bytes } => format!("DRAIN bytes={bytes}"),
        PimInst::BankFeed { buffer, bytes } => format!("BANKFEED buf={buffer} bytes={bytes}"),
        PimInst::HostBurst { bytes } => format!("HOSTBURST bytes={bytes}"),
        PimInst::Barrier => "BARRIER".into(),
        PimInst::OverlapBarrier => "OBARRIER".into(),
    }
}

/// Renders a program into the text format (one section per channel).
pub fn program_to_text(program: &IsaProgram) -> String {
    let mut out = String::new();
    for (ch, stream) in program.channels().iter().enumerate() {
        let _ = writeln!(out, "{PROGRAM_HEADER} channel={ch}");
        for inst in stream {
            out.push_str(&inst_to_line(inst));
            out.push('\n');
        }
    }
    out
}

fn parse_field(token: &str, key: &str, line: usize) -> Result<u64, ParseProgramError> {
    let value = token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| ParseProgramError {
            line,
            message: format!("expected `{key}=<n>`, got `{token}`"),
        })?;
    value.parse().map_err(|_| ParseProgramError {
        line,
        message: format!("invalid number in `{token}`"),
    })
}

/// Parses the text format back into a program.
///
/// # Errors
///
/// Returns [`ParseProgramError`] on any malformed line. Blank lines are
/// ignored; comment lines other than the channel header are ignored too.
pub fn parse_program(text: &str) -> Result<IsaProgram, ParseProgramError> {
    let mut channels: Vec<Vec<PimInst>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with(PROGRAM_HEADER) {
            channels.push(Vec::new());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let current = channels.last_mut().ok_or_else(|| ParseProgramError {
            line: line_no,
            message: "instruction before any channel header".into(),
        })?;
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let inst = match op {
            "BUFWRITE" => {
                let buf = parse_field(parts.next().unwrap_or(""), "buf", line_no)?;
                let bytes = parse_field(parts.next().unwrap_or(""), "bytes", line_no)?;
                PimInst::BufWrite {
                    buffer: buf as u8,
                    bytes: bytes as u32,
                }
            }
            "ROWACT" => {
                let row = parse_field(parts.next().unwrap_or(""), "row", line_no)?;
                PimInst::RowActivate { row: row as u32 }
            }
            "MACBURST" => {
                let buf = parse_field(parts.next().unwrap_or(""), "buf", line_no)?;
                let repeat = parse_field(parts.next().unwrap_or(""), "repeat", line_no)?;
                PimInst::MacBurst {
                    buffer: buf as u8,
                    repeat: repeat as u32,
                }
            }
            "DRAIN" => {
                let bytes = parse_field(parts.next().unwrap_or(""), "bytes", line_no)?;
                PimInst::Drain {
                    bytes: bytes as u32,
                }
            }
            "BANKFEED" => {
                let buf = parse_field(parts.next().unwrap_or(""), "buf", line_no)?;
                let bytes = parse_field(parts.next().unwrap_or(""), "bytes", line_no)?;
                PimInst::BankFeed {
                    buffer: buf as u8,
                    bytes: bytes as u32,
                }
            }
            "HOSTBURST" => {
                let bytes = parse_field(parts.next().unwrap_or(""), "bytes", line_no)?;
                PimInst::HostBurst {
                    bytes: bytes as u32,
                }
            }
            "BARRIER" => PimInst::Barrier,
            "OBARRIER" => PimInst::OverlapBarrier,
            other => {
                return Err(ParseProgramError {
                    line: line_no,
                    message: format!("unknown instruction `{other}`"),
                })
            }
        };
        if parts.next().is_some() {
            return Err(ParseProgramError {
                line: line_no,
                message: "trailing tokens".into(),
            });
        }
        current.push(inst);
    }
    Ok(IsaProgram::from_channels(channels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IsaProgram {
        IsaProgram::from_channels(vec![
            vec![
                PimInst::BufWrite {
                    buffer: 0,
                    bytes: 128,
                },
                PimInst::RowActivate { row: 3 },
                PimInst::MacBurst {
                    buffer: 0,
                    repeat: 16,
                },
                PimInst::Barrier,
                PimInst::OverlapBarrier,
                PimInst::Drain { bytes: 64 },
            ],
            vec![PimInst::HostBurst { bytes: 512 }, PimInst::Barrier],
        ])
    }

    #[test]
    fn roundtrip_is_exact() {
        let p = sample();
        assert_eq!(parse_program(&program_to_text(&p)).unwrap(), p);
    }

    #[test]
    fn parse_rejects_garbage() {
        let text = format!("{PROGRAM_HEADER} channel=0\nFROB bytes=1\n");
        let err = parse_program(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown instruction"));
    }

    #[test]
    fn parse_rejects_bad_numbers_and_trailing_tokens() {
        let bad = format!("{PROGRAM_HEADER} channel=0\nROWACT row=banana\n");
        assert!(parse_program(&bad).is_err());
        let trailing = format!("{PROGRAM_HEADER} channel=0\nBARRIER extra\n");
        assert!(parse_program(&trailing).is_err());
    }

    #[test]
    fn parse_rejects_headerless_instructions() {
        assert!(parse_program("ROWACT row=0\n").is_err());
    }

    #[test]
    fn blank_lines_and_comments_are_ignored() {
        let text = format!("{PROGRAM_HEADER} channel=0\n\n# a comment\nROWACT row=1\n");
        let p = parse_program(&text).unwrap();
        assert_eq!(p.channels(), &[vec![PimInst::RowActivate { row: 1 }]][..]);
    }
}
