//! Backend identity and the interpreter contract.

use crate::inst::IsaProgram;
use std::fmt;

/// Which hardware model interprets a program.
///
/// This is the discriminant the compiler keys on: the cost cache separates
/// entries per backend, and the per-layer search records which backend a
/// split decision priced. The default is [`BackendKind::Newton`], the
/// paper's GDDR6 DRAM-PIM — plans that never mention a backend mean
/// Newton, which keeps historical plan serializations byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Newton-style GDDR6 DRAM-PIM: inputs stream over the bus (GWRITE),
    /// MACs run at tCCD against activated DRAM rows.
    #[default]
    Newton,
    /// Crossbar compute-in-array (PIMCOMP-style): weights are programmed
    /// into resistive arrays once, inputs apply through DACs, a whole
    /// matrix-vector product costs one analog cycle per tile wave.
    Crossbar,
}

impl BackendKind {
    /// Stable lower-case name used in serialized plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Newton => "newton",
            BackendKind::Crossbar => "crossbar",
        }
    }

    /// Inverse of [`name`](BackendKind::name).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "newton" => Some(BackendKind::Newton),
            "crossbar" => Some(BackendKind::Crossbar),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware model that can execute (time) an [`IsaProgram`].
///
/// Interpreters are pure: the same program yields the same time on every
/// call and every platform, which is what lets interpreted costs live in
/// the cross-search cost cache.
pub trait Interpreter {
    /// The backend this interpreter models.
    fn backend(&self) -> BackendKind;

    /// Simulated wall-clock microseconds to execute `program`.
    fn interpret_us(&self, program: &IsaProgram) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in [BackendKind::Newton, BackendKind::Crossbar] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(BackendKind::from_name("tpu"), None);
    }

    #[test]
    fn default_is_newton() {
        assert_eq!(BackendKind::default(), BackendKind::Newton);
    }
}
