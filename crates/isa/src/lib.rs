//! # pimflow-isa
//!
//! A small typed PIM instruction set sitting between the compiler and the
//! hardware models. Plans lower to [`IsaProgram`]s — per-channel streams of
//! [`PimInst`]s for buffer writes, row activations, MAC bursts, result
//! drains, and inter-op barriers — and each hardware model is an
//! [`Interpreter`] that assigns the program a simulated execution time.
//! PIMSIM-NN frames exactly this boundary as the right cut for simulating
//! heterogeneous PIM devices: new hardware means a new interpreter, not a
//! new compiler path.
//!
//! The crate is hardware-neutral on purpose. The Newton-style DRAM-PIM
//! interpreter lives in `pimflow-pimsim` (it needs the cycle-level channel
//! engine); the crossbar compute-in-array model ([`crossbar`]) is simple
//! enough to live here. Both are named by [`BackendKind`], the discriminant
//! the compiler's cost cache and per-layer backend search key on.
//!
//! Programs have an exact text round-trip ([`text`], mirroring the command
//! trace format of `pimflow-pimsim`) and a machine-checkable protocol
//! ([`validate`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod crossbar;
pub mod inst;
pub mod text;
pub mod validate;

pub use backend::{BackendKind, Interpreter};
pub use crossbar::{CrossbarConfig, CrossbarInterpreter, MatmulShape};
pub use inst::{FusedRole, IsaProgram, PimInst, ProgramError};
pub use text::{inst_to_line, parse_program, program_to_text, ParseProgramError, PROGRAM_HEADER};
pub use validate::{validate_program, IsaViolation, MachineSpec};
