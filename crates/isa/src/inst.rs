//! The instruction set and the per-channel program container.

use std::error::Error;
use std::fmt;

/// One typed PIM instruction.
///
/// The vocabulary is the greatest common divisor of the DRAM-PIM devices
/// the workspace models: stage an input tile near the banks, select a
/// weight row, burst multiply-accumulates against a staged buffer, drain
/// accumulated results, and synchronize channels between ops. Every
/// backend interprets the same five data-path ops; only their costs (and
/// which ones are free) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimInst {
    /// Stage `bytes` of input into near-bank buffer `buffer`.
    ///
    /// Newton lowers this to a GWRITE over the channel bus; a crossbar
    /// backend loads the DAC input registers instead (weights stay
    /// stationary in the array).
    BufWrite {
        /// Destination buffer index.
        buffer: u8,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Activate weight row `row` for the following MAC bursts.
    RowActivate {
        /// Row index within the bank group.
        row: u32,
    },
    /// Issue `repeat` back-to-back MAC operations reading buffer `buffer`.
    MacBurst {
        /// Source buffer of the staged inputs.
        buffer: u8,
        /// Number of consecutive MAC operations.
        repeat: u32,
    },
    /// Drain `bytes` of accumulated results back over the channel bus.
    Drain {
        /// Result payload size in bytes.
        bytes: u32,
    },
    /// Move `bytes` of results into near-bank buffer `buffer` without
    /// crossing the channel bus — the fused-dataflow hand-off between a
    /// producer layer and its consumer on the same channels. Replaces a
    /// producer's `Drain`/consumer's `BufWrite` pair when the
    /// intermediate activation stays resident near the banks. The
    /// producer's side carries the payload; the consumer's side is a
    /// zero-byte staging marker (the move already happened), so the
    /// hand-off is priced and counted exactly once.
    BankFeed {
        /// Destination buffer index of the consumer's staged inputs.
        buffer: u8,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Ordinary host (GPU) memory traffic occupying the channel bus — the
    /// contention term, not a PIM operation.
    HostBurst {
        /// Burst size in bytes.
        bytes: u32,
    },
    /// Inter-op barrier: instructions after it start only once every
    /// channel has finished the instructions before it.
    Barrier,
    /// Relaxed member separator inside one fused region: a marker between
    /// consecutive group members' instruction streams that imposes **no
    /// cross-channel rendezvous and no engine-state reset**. Each channel
    /// flows straight from the producer's tail into the consumer's
    /// staging, so a consumer's `RowActivate`/`BankFeed` epoch overlaps
    /// the producer's MAC/drain tail on other channels — the fused-epoch
    /// overlap the group pricing exploits. Backends treat it as free
    /// (barriers are structure, not work); only [`PimInst::Barrier`]
    /// splits epochs.
    OverlapBarrier,
}

/// Where a layer sits inside a fusion group — the discriminant that
/// selects which bus crossings of its program a fused lowering elides.
///
/// A fusion group keeps inter-layer activations near the banks: the
/// producer's result [`PimInst::Drain`] and the consumer's input
/// [`PimInst::BufWrite`] both become [`PimInst::BankFeed`]s, so neither
/// payload occupies the channel bus. The hand-off is one physical move,
/// and the producer's side pays for it: its `BankFeed` carries the
/// payload bytes, while the consumer's staging rewrites to a zero-byte
/// `BankFeed` — the data is already resident near the banks, so the
/// instruction only marks the buffer staged (and its bytes are not
/// counted again by the timing, traffic, or energy models). `Standalone`
/// is the identity — the unfused lowering every existing path uses, bit
/// for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FusedRole {
    /// Not part of any fusion group (the unfused lowering, unchanged).
    #[default]
    Standalone,
    /// First layer of a group: inputs arrive from the host, outputs feed
    /// the next member near the banks (Drain → BankFeed).
    Head,
    /// Interior layer: both input staging and result drain stay near the
    /// banks (BufWrite → BankFeed and Drain → BankFeed).
    Middle,
    /// Last layer of a group: inputs arrive near the banks
    /// (BufWrite → BankFeed), results drain to the host as usual.
    Tail,
}

impl FusedRole {
    /// Whether this role receives its inputs from the previous group
    /// member near the banks (consumer side of a fused edge).
    pub fn feeds_in(self) -> bool {
        matches!(self, FusedRole::Middle | FusedRole::Tail)
    }

    /// Whether this role hands its outputs to the next group member near
    /// the banks (producer side of a fused edge).
    pub fn feeds_out(self) -> bool {
        matches!(self, FusedRole::Head | FusedRole::Middle)
    }

    /// Rewrites one instruction for this role: the bus crossings a fused
    /// placement elides become [`PimInst::BankFeed`]s. The producer side
    /// keeps the payload bytes (it pays the one near-bank move); the
    /// consumer side stages for free — its inputs were delivered by the
    /// upstream member's `BankFeed`, so a second priced move would double
    /// count the hand-off. `Standalone` is the identity.
    pub fn rewrite(self, inst: PimInst) -> PimInst {
        match inst {
            PimInst::BufWrite { buffer, .. } if self.feeds_in() => {
                PimInst::BankFeed { buffer, bytes: 0 }
            }
            PimInst::Drain { bytes } if self.feeds_out() => PimInst::BankFeed { buffer: 0, bytes },
            other => other,
        }
    }

    /// Rewrites every instruction of `program` for this role (see
    /// [`FusedRole::rewrite`]).
    pub fn rewrite_program(self, program: &IsaProgram) -> IsaProgram {
        if self == FusedRole::Standalone {
            return program.clone();
        }
        IsaProgram::from_channels(
            program
                .channels()
                .iter()
                .map(|ch| ch.iter().map(|&i| self.rewrite(i)).collect())
                .collect(),
        )
    }
}

/// Structural errors of a program as a whole (single instructions are
/// checked by [`crate::validate::validate_program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// Channels disagree on how many [`PimInst::Barrier`]s they contain,
    /// so the rendezvous the barriers describe cannot happen.
    UnbalancedBarriers {
        /// First channel whose barrier count differs from channel 0's.
        channel: usize,
        /// Barriers on that channel.
        have: usize,
        /// Barriers on channel 0.
        want: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnbalancedBarriers {
                channel,
                have,
                want,
            } => write!(
                f,
                "channel {channel} has {have} barriers, channel 0 has {want}"
            ),
        }
    }
}

impl Error for ProgramError {}

/// A typed PIM program: one instruction stream per memory channel.
///
/// A program is the unit a backend compiles and an [`Interpreter`] times.
/// Within a channel, instructions execute in order; across channels, only
/// [`PimInst::Barrier`]s order execution.
///
/// [`Interpreter`]: crate::backend::Interpreter
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IsaProgram {
    channels: Vec<Vec<PimInst>>,
}

impl IsaProgram {
    /// An empty program over `channels` channels.
    pub fn new(channels: usize) -> Self {
        IsaProgram {
            channels: vec![Vec::new(); channels],
        }
    }

    /// Wraps per-channel instruction streams into a program.
    pub fn from_channels(channels: Vec<Vec<PimInst>>) -> Self {
        IsaProgram { channels }
    }

    /// The per-channel instruction streams, in channel order.
    pub fn channels(&self) -> &[Vec<PimInst>] {
        &self.channels
    }

    /// Number of channels the program spans.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Total instruction count over all channels.
    pub fn len(&self) -> usize {
        self.channels.iter().map(Vec::len).sum()
    }

    /// Whether the program contains no instructions at all.
    pub fn is_empty(&self) -> bool {
        self.channels.iter().all(Vec::is_empty)
    }

    /// Appends one instruction to `channel`'s stream.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    pub fn push(&mut self, channel: usize, inst: PimInst) {
        self.channels[channel].push(inst);
    }

    /// Appends a [`PimInst::Barrier`] to every channel.
    pub fn barrier(&mut self) {
        for ch in &mut self.channels {
            ch.push(PimInst::Barrier);
        }
    }

    /// Links `other` after this program with a separating barrier — the
    /// inter-op composition: the next op's instructions wait for every
    /// channel to finish the current op's.
    ///
    /// # Panics
    ///
    /// Panics when the channel counts differ.
    pub fn append(&mut self, other: &IsaProgram) {
        assert_eq!(
            self.num_channels(),
            other.num_channels(),
            "cannot link programs over different channel counts"
        );
        self.barrier();
        for (ch, stream) in self.channels.iter_mut().zip(other.channels.iter()) {
            ch.extend_from_slice(stream);
        }
    }

    /// Links `other` after this program with a relaxed
    /// [`PimInst::OverlapBarrier`] on every channel — the intra-group
    /// composition: each channel runs straight from this program's tail
    /// into `other`'s head with no rendezvous and no state reset, so the
    /// two members' epochs overlap wherever the channels are imbalanced.
    ///
    /// # Panics
    ///
    /// Panics when the channel counts differ.
    pub fn append_overlapped(&mut self, other: &IsaProgram) {
        assert_eq!(
            self.num_channels(),
            other.num_channels(),
            "cannot link programs over different channel counts"
        );
        for (ch, stream) in self.channels.iter_mut().zip(other.channels.iter()) {
            ch.push(PimInst::OverlapBarrier);
            ch.extend_from_slice(stream);
        }
    }

    /// Shifts every [`PimInst::RowActivate`] row index by `delta`
    /// (saturating). Overlap-linked group members share one continuous
    /// engine run, so without distinct row ranges a consumer's activations
    /// would spuriously hit the producer's open row; offsetting each
    /// member past its predecessor's rows keeps the row-buffer behaviour
    /// physical.
    pub fn offset_rows(&mut self, delta: u32) {
        for ch in &mut self.channels {
            for inst in ch.iter_mut() {
                if let PimInst::RowActivate { row } = inst {
                    *row = row.saturating_add(delta);
                }
            }
        }
    }

    /// The largest [`PimInst::RowActivate`] row index in the program, if
    /// any rows are activated at all.
    pub fn max_row(&self) -> Option<u32> {
        self.channels
            .iter()
            .flatten()
            .filter_map(|i| match i {
                PimInst::RowActivate { row } => Some(*row),
                _ => None,
            })
            .max()
    }

    /// Splits each channel's stream at its barriers: element `e` of the
    /// result holds, per channel, the instruction slice of epoch `e`
    /// (barriers themselves excluded). A barrier-free program is a single
    /// epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnbalancedBarriers`] when the channels
    /// disagree on the number of barriers.
    pub fn epochs(&self) -> Result<Vec<Vec<&[PimInst]>>, ProgramError> {
        let count = |ch: &[PimInst]| ch.iter().filter(|i| matches!(i, PimInst::Barrier)).count();
        let want = self.channels.first().map(|c| count(c)).unwrap_or(0);
        for (channel, ch) in self.channels.iter().enumerate() {
            let have = count(ch);
            if have != want {
                return Err(ProgramError::UnbalancedBarriers {
                    channel,
                    have,
                    want,
                });
            }
        }
        let mut epochs: Vec<Vec<&[PimInst]>> = vec![Vec::new(); want + 1];
        for ch in &self.channels {
            let mut start = 0usize;
            let mut epoch = 0usize;
            for (i, inst) in ch.iter().enumerate() {
                if matches!(inst, PimInst::Barrier) {
                    epochs[epoch].push(&ch[start..i]);
                    start = i + 1;
                    epoch += 1;
                }
            }
            epochs[epoch].push(&ch[start..]);
        }
        Ok(epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut p = IsaProgram::new(2);
        p.push(0, PimInst::RowActivate { row: 1 });
        p.push(1, PimInst::Drain { bytes: 4 });
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.num_channels(), 2);
    }

    #[test]
    fn append_inserts_barrier_between_ops() {
        let mut a = IsaProgram::from_channels(vec![vec![PimInst::RowActivate { row: 0 }]]);
        let b = IsaProgram::from_channels(vec![vec![PimInst::Drain { bytes: 8 }]]);
        a.append(&b);
        assert_eq!(
            a.channels()[0],
            vec![
                PimInst::RowActivate { row: 0 },
                PimInst::Barrier,
                PimInst::Drain { bytes: 8 },
            ]
        );
    }

    #[test]
    fn epochs_split_at_barriers() {
        let mut p = IsaProgram::new(2);
        p.push(0, PimInst::RowActivate { row: 0 });
        p.barrier();
        p.push(1, PimInst::Drain { bytes: 8 });
        let epochs = p.epochs().unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0][0], &[PimInst::RowActivate { row: 0 }][..]);
        assert!(epochs[0][1].is_empty());
        assert!(epochs[1][0].is_empty());
        assert_eq!(epochs[1][1], &[PimInst::Drain { bytes: 8 }][..]);
    }

    #[test]
    fn overlap_links_stay_in_one_epoch() {
        let mut a = IsaProgram::from_channels(vec![vec![PimInst::RowActivate { row: 0 }]]);
        let b = IsaProgram::from_channels(vec![vec![PimInst::Drain { bytes: 8 }]]);
        a.append_overlapped(&b);
        assert_eq!(
            a.channels()[0],
            vec![
                PimInst::RowActivate { row: 0 },
                PimInst::OverlapBarrier,
                PimInst::Drain { bytes: 8 },
            ]
        );
        // Only hard barriers split epochs: the overlap-linked program is
        // still a single epoch, which is what lets the channels flow
        // through member boundaries.
        let epochs = a.epochs().unwrap();
        assert_eq!(epochs.len(), 1);
    }

    #[test]
    fn offset_rows_shifts_activations_only() {
        let mut p = IsaProgram::from_channels(vec![vec![
            PimInst::RowActivate { row: 3 },
            PimInst::MacBurst {
                buffer: 0,
                repeat: 2,
            },
            PimInst::RowActivate { row: 7 },
        ]]);
        assert_eq!(p.max_row(), Some(7));
        p.offset_rows(10);
        assert_eq!(
            p.channels()[0],
            vec![
                PimInst::RowActivate { row: 13 },
                PimInst::MacBurst {
                    buffer: 0,
                    repeat: 2,
                },
                PimInst::RowActivate { row: 17 },
            ]
        );
        assert_eq!(p.max_row(), Some(17));
        assert_eq!(IsaProgram::new(1).max_row(), None);
    }

    #[test]
    fn unbalanced_barriers_detected() {
        let p = IsaProgram::from_channels(vec![vec![PimInst::Barrier], vec![]]);
        assert_eq!(
            p.epochs(),
            Err(ProgramError::UnbalancedBarriers {
                channel: 1,
                have: 0,
                want: 1
            })
        );
    }
}
