//! End-to-end test of the `pimflow` CLI: the artifact's three-step workflow
//! (profile -> solve -> run) against the Toy network.

use std::process::Command;

fn pimflow(args: &[&str], dir: &std::path::Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimflow"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn artifact_workflow_profile_solve_run() {
    let dir = std::env::temp_dir().join(format!("pimflow-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Step 1: profile with both transformation passes.
    let (ok, out) = pimflow(&["-m=profile", "-t=split", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("MD-DP candidate layers"), "{out}");
    let (ok, out) = pimflow(&["-m=profile", "-t=pipeline", "-n=toy"], &dir);
    assert!(ok, "{out}");

    // Step 2: compute the optimal graph.
    let (ok, out) = pimflow(&["-m=solve", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("optimal plan"), "{out}");
    assert!(dir.join("pimflow-out/plans/toy.json").exists());

    // Step 3: run, both GPU-only and with the saved plan.
    let (ok, out) = pimflow(&["-m=run", "-n=toy", "--gpu_only"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("GPU baseline"), "{out}");
    let (ok, out) = pimflow(&["-m=run", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("using saved plan"), "{out}");
    assert!(out.contains("PIMFlow"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_mode_writes_parseable_traces() {
    let dir = std::env::temp_dir().join(format!("pimflow-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, out) = pimflow(&["-m=trace", "-n=toy"], &dir);
    assert!(ok, "{out}");
    let trace_dir = dir.join("pimflow-out/traces/toy");
    let mut found = 0;
    for entry in std::fs::read_dir(&trace_dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let traces = pimflow_pimsim::parse_traces(&text).expect("trace parses");
        assert!(!traces.is_empty());
        found += 1;
    }
    assert!(
        found >= 4,
        "expected traces for every candidate layer, got {found}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn info_mode_prints_summary_and_writes_dot() {
    let dir = std::env::temp_dir().join(format!("pimflow-info-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, out) = pimflow(&["-m=info", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("MMACs"), "{out}");
    let dot = std::fs::read_to_string(dir.join("pimflow-out/dot/toy.dot")).unwrap();
    assert!(dot.starts_with("digraph"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_model_fails_cleanly() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["-m=run", "-n=alexnet"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown network"), "{out}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["--frobnicate"], &dir);
    assert!(!ok);
    assert!(out.contains("usage"), "{out}");
}

#[test]
fn policy_selection_works() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["-m=run", "-n=toy", "--policy=Newton++"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("Newton++"), "{out}");
}

#[test]
fn serve_runs_and_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("pimflow-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let args = [
        "serve",
        "--model",
        "toy",
        "--policy",
        "pimflow",
        "--arrival",
        "poisson",
        "--rps",
        "2000",
        "--duration",
        "0.05",
        "--seed",
        "42",
        "--events-out",
        "events.jsonl",
        "--report-out",
        "report.json",
    ];
    let (ok, out1) = pimflow(&args, &dir);
    assert!(ok, "{out1}");
    assert!(out1.contains("p50"), "{out1}");
    assert!(out1.contains("hit rate"), "{out1}");
    assert!(out1.contains("pim channel utilization"), "{out1}");
    let events1 = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    assert!(events1.lines().count() > 10);
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert!(report.contains("throughput_rps"), "{report}");

    // Same seed: byte-identical summary and event trace.
    let (ok, out2) = pimflow(&args, &dir);
    assert!(ok, "{out2}");
    assert_eq!(out1, out2, "serve output must be deterministic");
    let events2 = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    assert_eq!(events1, events2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_normalizes_model_aliases() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(
        &[
            "serve",
            "--model",
            "resnet50",
            "--rps",
            "200",
            "--duration",
            "0.01",
        ],
        &dir,
    );
    assert!(ok, "{out}");
    assert!(out.contains("resnet-50"), "{out}");
}

#[test]
fn serve_accepts_equals_style_flags() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(
        &[
            "serve",
            "--model=toy",
            "--policy=baseline",
            "--rps=1000",
            "--duration=0.01",
        ],
        &dir,
    );
    assert!(ok, "{out}");
    assert!(out.contains("Baseline"), "{out}");
}

#[test]
fn serve_replays_a_trace_file() {
    let dir = std::env::temp_dir().join(format!("pimflow-servetrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("arrivals.txt"), "# three requests\n0\n100\n250\n").unwrap();
    let (ok, out) = pimflow(
        &[
            "serve",
            "--model",
            "toy",
            "--arrival",
            "trace",
            "--trace-file",
            "arrivals.txt",
            "--duration",
            "1",
        ],
        &dir,
    );
    assert!(ok, "{out}");
    assert!(out.contains("3 arrived, 3 completed"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["serve", "--model", "toy", "--rps", "-5"], &dir);
    assert!(!ok);
    assert!(out.contains("--rps must be positive"), "{out}");
    let (ok, out) = pimflow(&["serve"], &dir);
    assert!(!ok);
    assert!(out.contains("missing --model"), "{out}");
    let (ok, out) = pimflow(&["serve", "--model", "toy", "--frobnicate"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown serve argument"), "{out}");
    let (ok, out) = pimflow(&["serve", "--model", "gpt-5"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown model"), "{out}");
}

#[test]
fn fleet_runs_and_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("pimflow-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let args = [
        "fleet",
        "--model",
        "toy",
        "--nodes",
        "3",
        "--tenants",
        "3",
        "--rps",
        "3000",
        "--router",
        "slo",
        "--duration",
        "0.05",
        "--seed",
        "7",
        "--events-out",
        "fleet-events.jsonl",
        "--report-out",
        "fleet-report.json",
    ];
    let (ok, out1) = pimflow(&args, &dir);
    assert!(ok, "{out1}");
    assert!(out1.contains("slo-aware"), "{out1}");
    assert!(out1.contains("0 dropped"), "{out1}");
    assert!(out1.contains("tenant"), "{out1}");
    let events1 = std::fs::read_to_string(dir.join("fleet-events.jsonl")).unwrap();
    assert!(events1.lines().count() > 10);
    let report = std::fs::read_to_string(dir.join("fleet-report.json")).unwrap();
    assert!(report.contains("fleet_utilization"), "{report}");
    assert!(report.contains("\"dropped\": 0"), "{report}");

    // Same seed: byte-identical summary and event trace.
    let (ok, out2) = pimflow(&args, &dir);
    assert!(ok, "{out2}");
    assert_eq!(out1, out2, "fleet output must be deterministic");
    let events2 = std::fs::read_to_string(dir.join("fleet-events.jsonl")).unwrap();
    assert_eq!(events1, events2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_survives_node_faults_without_drops() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(
        &[
            "fleet",
            "--model=toy",
            "--nodes=3",
            "--tenants=2",
            "--rps=2000",
            "--duration=0.03",
            "--faults=0.5",
            "--fault-seed=11",
        ],
        &dir,
    );
    assert!(ok, "{out}");
    assert!(out.contains("node transitions"), "{out}");
    assert!(out.contains("0 dropped"), "{out}");
}

#[test]
fn fleet_rejects_bad_flags() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["fleet", "--model", "toy", "--rps", "-5"], &dir);
    assert!(!ok);
    assert!(out.contains("--rps must be positive"), "{out}");
    let (ok, out) = pimflow(&["fleet"], &dir);
    assert!(!ok);
    assert!(out.contains("missing --model"), "{out}");
    let (ok, out) = pimflow(&["fleet", "--model", "toy", "--frobnicate"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown fleet argument"), "{out}");
    let (ok, out) = pimflow(&["fleet", "--model", "toy", "--router", "random"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown router"), "{out}");
    let (ok, out) = pimflow(&["fleet", "--model", "toy", "--plan-cache-cap", "0"], &dir);
    assert!(!ok);
    assert!(out.contains("--plan-cache-cap must be at least 1"), "{out}");
}

#[test]
fn serve_plan_cache_cap_flag_works() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(
        &[
            "serve",
            "--model=toy",
            "--rps=1000",
            "--duration=0.02",
            "--plan-cache-cap=1",
        ],
        &dir,
    );
    assert!(ok, "{out}");
    assert!(out.contains("hit rate"), "{out}");
    let (ok, out) = pimflow(&["serve", "--model=toy", "--plan-cache-cap=0"], &dir);
    assert!(!ok);
    assert!(out.contains("--plan-cache-cap must be at least 1"), "{out}");
}
