//! Request routing across fleet nodes.
//!
//! The router is a pure function from a load snapshot to a node choice, so
//! each policy is unit-testable without running a simulation, and the event
//! loop stays deterministic: candidates are always presented in ascending
//! node-id order and every tie breaks toward the lower id.

use crate::config::RouterPolicy;

/// Load snapshot of one eligible (active, accepting) node at routing time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Node id.
    pub node: usize,
    /// Requests queued across all of the node's model queues.
    pub queue_depth: usize,
    /// Predicted time until the node would finish one more request:
    /// remaining in-flight execution plus a per-class service-time
    /// estimate for everything queued, microseconds. Only the SLO-aware
    /// policy reads it.
    pub est_finish_us: f64,
}

/// Picks a node for one request from `candidates` (non-empty, ascending
/// node id). `rr_cursor` is the round-robin rotation state, advanced only
/// by [`RouterPolicy::RoundRobin`].
///
/// # Panics
///
/// Panics if `candidates` is empty — eligibility is the caller's job.
pub fn route(policy: RouterPolicy, rr_cursor: &mut usize, candidates: &[NodeLoad]) -> usize {
    assert!(
        !candidates.is_empty(),
        "route() needs at least one candidate"
    );
    match policy {
        RouterPolicy::RoundRobin => {
            let pick = candidates[*rr_cursor % candidates.len()].node;
            *rr_cursor += 1;
            pick
        }
        RouterPolicy::LeastLoaded => {
            candidates
                .iter()
                .min_by_key(|c| (c.queue_depth, c.node))
                .expect("non-empty")
                .node
        }
        RouterPolicy::SloAware => {
            candidates
                .iter()
                .min_by(|a, b| {
                    a.est_finish_us
                        .partial_cmp(&b.est_finish_us)
                        .expect("finite estimates")
                        .then(a.node.cmp(&b.node))
                })
                .expect("non-empty")
                .node
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> Vec<NodeLoad> {
        vec![
            NodeLoad {
                node: 0,
                queue_depth: 5,
                est_finish_us: 900.0,
            },
            NodeLoad {
                node: 2,
                queue_depth: 1,
                est_finish_us: 1_500.0,
            },
            NodeLoad {
                node: 3,
                queue_depth: 1,
                est_finish_us: 200.0,
            },
        ]
    }

    #[test]
    fn round_robin_rotates_through_candidates() {
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| route(RouterPolicy::RoundRobin, &mut cursor, &loads()))
            .collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn least_loaded_picks_shallowest_queue_lowest_id() {
        let mut cursor = 0;
        // Nodes 2 and 3 tie on depth 1: the lower id wins.
        assert_eq!(route(RouterPolicy::LeastLoaded, &mut cursor, &loads()), 2);
        assert_eq!(cursor, 0, "only round-robin advances the cursor");
    }

    #[test]
    fn slo_aware_picks_earliest_predicted_finish() {
        let mut cursor = 0;
        // Node 3 finishes soonest even though node 2 ties it on depth.
        assert_eq!(route(RouterPolicy::SloAware, &mut cursor, &loads()), 3);
        // A deep-queued fast node can beat a shallow slow node — that is
        // the point of predicting latency instead of counting requests.
        let hetero = vec![
            NodeLoad {
                node: 0,
                queue_depth: 4,
                est_finish_us: 400.0,
            },
            NodeLoad {
                node: 1,
                queue_depth: 1,
                est_finish_us: 2_000.0,
            },
        ];
        assert_eq!(route(RouterPolicy::SloAware, &mut cursor, &hetero), 0);
        assert_eq!(route(RouterPolicy::LeastLoaded, &mut cursor, &hetero), 1);
    }

    #[test]
    fn single_candidate_always_wins() {
        let solo = vec![NodeLoad {
            node: 7,
            queue_depth: 100,
            est_finish_us: 1e9,
        }];
        let mut cursor = 3;
        for p in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::SloAware,
        ] {
            assert_eq!(route(p, &mut cursor, &solo), 7);
        }
    }
}
