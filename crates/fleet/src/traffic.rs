//! Seeded traffic generators for fleet simulations.
//!
//! A fleet run is driven by per-tenant arrival streams. On top of the
//! fixed-rate and Poisson streams the single-node simulator already has
//! ([`pimflow_serve::arrival`]), fleets need the shapes that actually
//! stress routing and autoscaling: a diurnal sinusoid (load follows the
//! day), Markov-modulated bursts (an MMPP flipping between a quiet and a
//! storm state), and heavy-tailed tenant mixes (a few tenants dominate the
//! offered load, Zipf-style). Everything is drawn from the workspace's
//! seeded PRNG, so streams are byte-reproducible from `(spec, duration,
//! seed)` alone.
//!
//! The time-varying generators use Lewis–Shedler thinning: candidate
//! arrivals are drawn from a homogeneous Poisson process at the peak rate
//! and accepted with probability `rate(t) / rate_max`, which keeps the
//! generator exact for any bounded rate function while staying a single
//! sequential pass over one RNG.

use pimflow_rng::{splitmix64, Rng};
use pimflow_serve::{arrival_times_us, ArrivalSpec};

/// How one tenant's request arrivals are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// One request every `1/rps` seconds, starting at t = 0.
    Fixed {
        /// Requests per second.
        rps: f64,
    },
    /// Stationary Poisson process with mean rate `rps`.
    Poisson {
        /// Mean requests per second.
        rps: f64,
    },
    /// Inhomogeneous Poisson process whose rate follows a sinusoid:
    /// `rate(t) = mean_rps * (1 + amplitude * sin(2 pi t / period_s))`.
    Diurnal {
        /// Mean requests per second over a full period.
        mean_rps: f64,
        /// Relative swing around the mean, clamped to `[0, 1]` (1 means
        /// the trough reaches zero load).
        amplitude: f64,
        /// Period of the sinusoid, seconds ("one day" of the simulation).
        period_s: f64,
    },
    /// Two-state Markov-modulated Poisson process: the rate flips between
    /// `base_rps` and `burst_rps`, with exponentially distributed state
    /// dwell times of mean `mean_dwell_s`.
    Bursty {
        /// Rate of the quiet state, requests per second.
        base_rps: f64,
        /// Rate of the burst state, requests per second.
        burst_rps: f64,
        /// Mean dwell time in each state, seconds.
        mean_dwell_s: f64,
    },
}

/// Materializes the sorted arrival timestamps (microseconds) of `spec`
/// over a window of `duration_s` seconds. Deterministic in `(spec,
/// duration_s, seed)`; timestamps at or beyond the window end are dropped.
pub fn traffic_times_us(spec: &TrafficSpec, duration_s: f64, seed: u64) -> Vec<f64> {
    let end_us = duration_s * 1e6;
    match spec {
        TrafficSpec::Fixed { rps } => {
            arrival_times_us(&ArrivalSpec::Fixed { rps: *rps }, duration_s, seed)
        }
        TrafficSpec::Poisson { rps } => {
            arrival_times_us(&ArrivalSpec::Poisson { rps: *rps }, duration_s, seed)
        }
        TrafficSpec::Diurnal {
            mean_rps,
            amplitude,
            period_s,
        } => {
            if *mean_rps <= 0.0 || *period_s <= 0.0 {
                return Vec::new();
            }
            let amp = amplitude.clamp(0.0, 1.0);
            let rate_max = mean_rps * (1.0 + amp) / 1e6; // per us
            let period_us = period_s * 1e6;
            let mut rng = Rng::seed_from_u64(seed);
            let mut t = 0.0;
            let mut out = Vec::new();
            loop {
                t += rng.exponential(rate_max);
                if t >= end_us {
                    break;
                }
                let rate = mean_rps
                    * (1.0 + amp * (2.0 * std::f64::consts::PI * t / period_us).sin())
                    / 1e6;
                if rng.chance(rate / rate_max) {
                    out.push(t);
                }
            }
            out
        }
        TrafficSpec::Bursty {
            base_rps,
            burst_rps,
            mean_dwell_s,
        } => {
            let peak = base_rps.max(*burst_rps);
            if peak <= 0.0 || *mean_dwell_s <= 0.0 {
                return Vec::new();
            }
            let rate_max = peak / 1e6;
            let dwell_rate = 1.0 / (mean_dwell_s * 1e6);
            let mut rng = Rng::seed_from_u64(seed);
            let mut bursting = false;
            let mut switch_at = rng.exponential(dwell_rate);
            let mut t = 0.0;
            let mut out = Vec::new();
            loop {
                t += rng.exponential(rate_max);
                if t >= end_us {
                    break;
                }
                while switch_at <= t {
                    bursting = !bursting;
                    switch_at += rng.exponential(dwell_rate);
                }
                let rate = if bursting { *burst_rps } else { *base_rps } / 1e6;
                if rng.chance(rate / rate_max) {
                    out.push(t);
                }
            }
            out
        }
    }
}

/// Normalized Zipf weights over `n` ranks: weight of rank `i` is
/// proportional to `(i + 1)^-alpha`. `alpha = 0` is uniform; larger values
/// concentrate mass on the first ranks — the standard model for
/// heavy-tailed per-tenant request mixes.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Derives tenant `idx`'s private stream seed from the fleet seed, so
/// tenants draw from decorrelated PRNG streams while the whole fleet stays
/// reproducible from one seed.
pub fn tenant_seed(fleet_seed: u64, idx: usize) -> u64 {
    let mut state = fleet_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(times: &[f64], lo_us: f64, hi_us: f64) -> usize {
        times.iter().filter(|&&t| t >= lo_us && t < hi_us).count()
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let specs = [
            TrafficSpec::Diurnal {
                mean_rps: 2_000.0,
                amplitude: 0.8,
                period_s: 1.0,
            },
            TrafficSpec::Bursty {
                base_rps: 500.0,
                burst_rps: 4_000.0,
                mean_dwell_s: 0.1,
            },
            TrafficSpec::Poisson { rps: 1_500.0 },
        ];
        for spec in &specs {
            let a = traffic_times_us(spec, 1.0, 99);
            let b = traffic_times_us(spec, 1.0, 99);
            let c = traffic_times_us(spec, 1.0, 100);
            assert!(!a.is_empty());
            assert_eq!(a, b, "same seed must replay identically: {spec:?}");
            assert_ne!(a, c, "different seeds must differ: {spec:?}");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted: {spec:?}");
        }
    }

    #[test]
    fn diurnal_peaks_in_the_first_half_period() {
        // With period == duration, sin is positive over the first half of
        // the window and negative over the second: the peak half must carry
        // clearly more arrivals than the trough half.
        let spec = TrafficSpec::Diurnal {
            mean_rps: 2_000.0,
            amplitude: 0.8,
            period_s: 2.0,
        };
        let times = traffic_times_us(&spec, 2.0, 7);
        let first = count_in(&times, 0.0, 1e6);
        let second = count_in(&times, 1e6, 2e6);
        assert!(
            first as f64 > 1.3 * second as f64,
            "peak half {first} vs trough half {second}"
        );
        // Total still tracks the mean rate (2000 rps * 2 s = 4000).
        assert!((3_200..4_800).contains(&times.len()), "got {}", times.len());
    }

    #[test]
    fn bursty_stream_is_overdispersed() {
        // Index of dispersion (variance/mean of per-window counts): ~1 for
        // Poisson, far above 1 for an MMPP flipping between 200 and 5000
        // rps.
        let dispersion = |times: &[f64], duration_s: f64| {
            let windows = (duration_s * 10.0) as usize; // 100 ms windows
            let counts: Vec<f64> = (0..windows)
                .map(|w| count_in(times, w as f64 * 1e5, (w + 1) as f64 * 1e5) as f64)
                .collect();
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            var / mean.max(1e-9)
        };
        let bursty = traffic_times_us(
            &TrafficSpec::Bursty {
                base_rps: 200.0,
                burst_rps: 5_000.0,
                mean_dwell_s: 0.2,
            },
            4.0,
            11,
        );
        let poisson = traffic_times_us(&TrafficSpec::Poisson { rps: 2_000.0 }, 4.0, 11);
        assert!(
            dispersion(&bursty, 4.0) > 3.0,
            "bursty dispersion {:.2}",
            dispersion(&bursty, 4.0)
        );
        assert!(
            dispersion(&poisson, 4.0) < 2.0,
            "poisson dispersion {:.2}",
            dispersion(&poisson, 4.0)
        );
    }

    #[test]
    fn zipf_weights_are_normalized_and_heavy_tailed() {
        let w = zipf_weights(8, 1.2);
        assert_eq!(w.len(), 8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(
            w.windows(2).all(|p| p[0] >= p[1]),
            "monotone non-increasing"
        );
        // The top tenant must carry well over the uniform share.
        assert!(w[0] > 2.0 / 8.0, "top share {:.3}", w[0]);
        // alpha = 0 degenerates to uniform.
        let uniform = zipf_weights(4, 0.0);
        assert!(uniform.iter().all(|&x| (x - 0.25).abs() < 1e-12));
        assert!(zipf_weights(0, 1.0).is_empty());
    }

    #[test]
    fn tenant_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..16).map(|i| tenant_seed(42, i)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "tenants {i} and {j} collide");
            }
        }
        assert_eq!(tenant_seed(42, 3), tenant_seed(42, 3));
        assert_ne!(tenant_seed(42, 3), tenant_seed(43, 3));
    }

    #[test]
    fn degenerate_specs_yield_empty_streams() {
        assert!(traffic_times_us(
            &TrafficSpec::Diurnal {
                mean_rps: 0.0,
                amplitude: 0.5,
                period_s: 1.0
            },
            1.0,
            1
        )
        .is_empty());
        assert!(traffic_times_us(
            &TrafficSpec::Bursty {
                base_rps: 0.0,
                burst_rps: 0.0,
                mean_dwell_s: 0.1
            },
            1.0,
            1
        )
        .is_empty());
    }
}
