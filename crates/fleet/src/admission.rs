//! Per-tenant admission control: token-bucket rate limiting.
//!
//! Each tenant owns one bucket. Tokens refill continuously at the tenant's
//! configured rate up to the burst depth; a request is admitted iff a full
//! token is available at its arrival time. The bucket is driven by
//! *simulated* time, so admission decisions are part of the deterministic
//! event loop (queue-depth shedding — the other half of admission control —
//! happens after routing, in the simulator).

/// A continuous-refill token bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    /// Refill rate, tokens per microsecond; `<= 0` means unlimited.
    rate_per_us: f64,
    /// Maximum tokens (burst allowance).
    burst: f64,
    tokens: f64,
    last_us: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_rps` requests per second, holding at
    /// most `burst` tokens (clamped to at least 1) and starting full.
    /// `rate_rps <= 0` builds an unlimited bucket.
    pub fn new(rate_rps: f64, burst: usize) -> Self {
        let burst = burst.max(1) as f64;
        TokenBucket {
            rate_per_us: rate_rps / 1e6,
            burst,
            tokens: burst,
            last_us: 0.0,
        }
    }

    /// Whether this bucket ever rejects.
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_us <= 0.0
    }

    /// Tries to take one token at simulated time `now_us` (non-decreasing
    /// across calls). Returns whether the request is admitted.
    pub fn try_take(&mut self, now_us: f64) -> bool {
        if self.is_unlimited() {
            return true;
        }
        let dt = (now_us - self.last_us).max(0.0);
        self.tokens = (self.tokens + dt * self.rate_per_us).min(self.burst);
        self.last_us = now_us;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_bucket_never_rejects() {
        let mut b = TokenBucket::new(0.0, 1);
        for i in 0..1000 {
            assert!(b.try_take(i as f64));
        }
    }

    #[test]
    fn burst_then_refill() {
        // 1000 rps = 1 token per 1000 us, burst 3, starting full.
        let mut b = TokenBucket::new(1000.0, 3);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "burst exhausted");
        assert!(!b.try_take(500.0), "only half a token refilled");
        assert!(b.try_take(1_100.0), "a full token refilled");
        assert!(!b.try_take(1_100.0));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2);
        b.try_take(0.0);
        b.try_take(0.0);
        // A long quiet period refills to the cap, not beyond it.
        assert!(b.try_take(1e9));
        assert!(b.try_take(1e9));
        assert!(!b.try_take(1e9), "burst depth bounds the backlog");
    }

    #[test]
    fn sustained_rate_matches_the_limit() {
        // Offered 2000 rps against a 500 rps limit over one second:
        // admitted count must sit at ~500 plus the initial burst.
        let mut b = TokenBucket::new(500.0, 4);
        let admitted = (0..2000).filter(|i| b.try_take(*i as f64 * 500.0)).count();
        assert!(
            (500..=510).contains(&admitted),
            "admitted {admitted} of 2000"
        );
    }
}
