//! Fleet configuration: node classes, tenants, router/admission/autoscaler
//! knobs, and the top-level [`FleetConfig`] the simulator runs.

use crate::traffic::{zipf_weights, TrafficSpec};
use pimflow::engine::{ChannelMask, EngineConfig};
use pimflow::policy::Policy;
use pimflow_json::json_unit_enum;
use pimflow_serve::{FaultScenario, DEFAULT_PLAN_CACHE_CAP};

/// How the router picks a node for an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Rotate through the eligible nodes in order, ignoring load.
    RoundRobin,
    /// Pick the eligible node with the fewest queued requests.
    LeastLoaded,
    /// Pick the eligible node with the earliest predicted completion of
    /// one more request, using per-class batch latency predictions from
    /// the compiled plans
    /// ([`ExecutionPlan::predicted_us`](pimflow::search::ExecutionPlan)).
    SloAware,
}

json_unit_enum!(RouterPolicy {
    RoundRobin,
    LeastLoaded,
    SloAware
});

impl RouterPolicy {
    /// Display name, used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::SloAware => "slo-aware",
        }
    }

    /// Parses a CLI spelling (`rr`, `round-robin`, `least-loaded`, `slo`,
    /// ...). Returns `None` for unknown names.
    pub fn from_cli(name: &str) -> Option<RouterPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "rr" | "round-robin" | "roundrobin" => Some(RouterPolicy::RoundRobin),
            "least" | "least-loaded" | "leastloaded" | "queue" => Some(RouterPolicy::LeastLoaded),
            "slo" | "slo-aware" | "sloaware" | "latency" => Some(RouterPolicy::SloAware),
            _ => None,
        }
    }
}

/// One class of identical PIM-GPU nodes in the fleet. Heterogeneous fleets
/// mix classes — e.g. big 16-channel PIMFlow nodes next to small 8-channel
/// edge nodes, per the edge-to-cloud motivation in PAPERS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeClass {
    /// Class display name (`big`, `edge`, ...).
    pub name: String,
    /// Offloading policy the class's devices run under.
    pub policy: Policy,
    /// PIM channel-count override; `None` keeps the policy default.
    pub pim_channels: Option<usize>,
    /// Number of nodes of this class.
    pub count: usize,
}

impl NodeClass {
    /// A class of `count` nodes with the policy's stock device config.
    pub fn new(name: impl Into<String>, policy: Policy, count: usize) -> Self {
        NodeClass {
            name: name.into(),
            policy,
            pim_channels: None,
            count,
        }
    }

    /// The engine configuration of one node of this class.
    pub fn engine_config(&self) -> EngineConfig {
        let mut cfg = self.policy.engine_config();
        if let Some(n) = self.pim_channels {
            cfg.pim_channels = n;
            cfg.pim_channel_mask = ChannelMask::all();
        }
        cfg
    }
}

/// One tenant: a named traffic stream against one model, with its own
/// token-bucket rate limit.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant display name.
    pub name: String,
    /// Model the tenant's requests run (zoo name or alias).
    pub model: String,
    /// Arrival stream.
    pub traffic: TrafficSpec,
    /// Token-bucket refill rate, requests per second; `0` disables rate
    /// limiting for this tenant.
    pub rate_limit_rps: f64,
    /// Token-bucket depth (burst allowance), requests.
    pub burst: usize,
}

impl TenantSpec {
    /// An unlimited tenant with the given traffic.
    pub fn new(name: impl Into<String>, model: impl Into<String>, traffic: TrafficSpec) -> Self {
        TenantSpec {
            name: name.into(),
            model: model.into(),
            traffic,
            rate_limit_rps: 0.0,
            burst: 1,
        }
    }
}

/// Queue-depth shedding knobs (token buckets live per tenant in
/// [`TenantSpec`]). The default (`0`) disables shedding.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionConfig {
    /// Reject a new request when the routed-to node already holds this
    /// many queued requests; `0` disables shedding.
    pub shed_queue_depth: usize,
}

/// Autoscaler knobs; see [`crate::autoscale`] for the decision rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Whether the autoscaler runs at all.
    pub enabled: bool,
    /// Interval between autoscaler evaluations, microseconds.
    pub interval_us: f64,
    /// Scale up when total queued requests exceed this many per active
    /// node.
    pub up_queue_per_active: f64,
    /// Drain a node when window utilization falls below this fraction (and
    /// nothing is queued).
    pub down_utilization: f64,
    /// Never drain below this many active nodes.
    pub min_active: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            enabled: false,
            interval_us: 50_000.0,
            up_queue_per_active: 8.0,
            down_utilization: 0.15,
            min_active: 1,
        }
    }
}

/// Configuration of one fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Node classes; nodes are numbered in class order (class 0's nodes
    /// first).
    pub classes: Vec<NodeClass>,
    /// Tenants sharing the fleet.
    pub tenants: Vec<TenantSpec>,
    /// Run window in seconds (arrivals beyond it are dropped; queued work
    /// still drains).
    pub duration_s: f64,
    /// Fleet seed; per-tenant stream seeds derive from it.
    pub seed: u64,
    /// Dynamic batching: maximum batch size (per node, per model).
    pub max_batch: usize,
    /// Dynamic batching: flush timeout after the oldest arrival, us.
    pub batch_timeout_us: f64,
    /// Per-node LRU plan-cache capacity.
    pub plan_cache_cap: usize,
    /// Routing policy.
    pub router: RouterPolicy,
    /// Queue-depth shedding.
    pub admission: AdmissionConfig,
    /// Autoscaler.
    pub autoscale: AutoscaleConfig,
    /// Nodes (counting from the highest id down) that start in standby —
    /// the pool the autoscaler can grow into.
    pub initial_standby: usize,
    /// Node-granular fault scenario: `channel` indexes the *node*, a down
    /// transition hard-fails the whole node, an up transition restores it.
    pub node_faults: FaultScenario,
    /// Compile every (node, model, batch size) plan on the worker pool
    /// before the simulation starts (width from `PIMFLOW_JOBS`). Host
    /// work: the simulated timeline is unchanged.
    pub precompile: bool,
}

impl FleetConfig {
    /// A single-class fleet of `nodes` PIMFlow nodes with the given
    /// tenants: 50 ms run, seed 0, batches of up to 8 with a 2 ms timeout,
    /// least-loaded routing, no shedding, no autoscaler, no faults.
    pub fn new(nodes: usize, tenants: Vec<TenantSpec>) -> Self {
        FleetConfig {
            classes: vec![NodeClass::new("node", Policy::Pimflow, nodes)],
            tenants,
            duration_s: 0.05,
            seed: 0,
            max_batch: 8,
            batch_timeout_us: 2_000.0,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            router: RouterPolicy::LeastLoaded,
            admission: AdmissionConfig::default(),
            autoscale: AutoscaleConfig::default(),
            initial_standby: 0,
            node_faults: FaultScenario::none(),
            precompile: false,
        }
    }

    /// Total node count across all classes.
    pub fn node_count(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Builds a heavy-tailed tenant mix: `n` tenants named `t0..`, all on
    /// `model`, sharing `total_rps` of Poisson traffic Zipf(`alpha`)-style
    /// (tenant 0 heaviest), unlimited rate.
    pub fn heavy_tailed_tenants(
        n: usize,
        model: &str,
        total_rps: f64,
        alpha: f64,
    ) -> Vec<TenantSpec> {
        zipf_weights(n, alpha)
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                TenantSpec::new(
                    format!("t{i}"),
                    model,
                    TrafficSpec::Poisson { rps: total_rps * w },
                )
            })
            .collect()
    }

    /// Validates structural invariants before a run.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() || self.node_count() == 0 {
            return Err("fleet needs at least one node".into());
        }
        if self.tenants.is_empty() {
            return Err("fleet needs at least one tenant".into());
        }
        if self.duration_s <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.plan_cache_cap == 0 {
            return Err("plan_cache_cap must be at least 1".into());
        }
        if self.initial_standby >= self.node_count() {
            return Err("at least one node must start active".into());
        }
        for class in &self.classes {
            if class.pim_channels == Some(0) && class.policy != Policy::Baseline {
                return Err(format!("class `{}`: pim_channels must be >= 1", class.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_policy_round_trips_cli_names() {
        for (s, p) in [
            ("rr", RouterPolicy::RoundRobin),
            ("round-robin", RouterPolicy::RoundRobin),
            ("least-loaded", RouterPolicy::LeastLoaded),
            ("slo", RouterPolicy::SloAware),
            ("SLO-Aware", RouterPolicy::SloAware),
        ] {
            assert_eq!(RouterPolicy::from_cli(s), Some(p), "{s}");
        }
        assert_eq!(RouterPolicy::from_cli("random"), None);
    }

    #[test]
    fn node_class_overrides_pim_channels() {
        let class = NodeClass {
            pim_channels: Some(8),
            ..NodeClass::new("edge", Policy::Pimflow, 2)
        };
        assert_eq!(class.engine_config().pim_channels, 8);
        assert_eq!(
            NodeClass::new("big", Policy::Pimflow, 1)
                .engine_config()
                .pim_channels,
            Policy::Pimflow.engine_config().pim_channels
        );
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let tenants = vec![TenantSpec::new(
            "t0",
            "toy",
            TrafficSpec::Fixed { rps: 100.0 },
        )];
        assert!(FleetConfig::new(2, tenants.clone()).validate().is_ok());
        assert!(FleetConfig::new(0, tenants.clone()).validate().is_err());
        assert!(FleetConfig::new(2, Vec::new()).validate().is_err());
        let mut cfg = FleetConfig::new(2, tenants.clone());
        cfg.initial_standby = 2;
        assert!(cfg.validate().is_err());
        let mut cfg = FleetConfig::new(2, tenants);
        cfg.max_batch = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn heavy_tailed_tenants_split_the_load() {
        let tenants = FleetConfig::heavy_tailed_tenants(4, "toy", 1000.0, 1.2);
        assert_eq!(tenants.len(), 4);
        let rates: Vec<f64> = tenants
            .iter()
            .map(|t| match t.traffic {
                TrafficSpec::Poisson { rps } => rps,
                _ => unreachable!(),
            })
            .collect();
        assert!((rates.iter().sum::<f64>() - 1000.0).abs() < 1e-9);
        assert!(rates[0] > rates[3] * 2.0, "rank 0 dominates: {rates:?}");
    }
}
