//! The discrete-event fleet simulator.
//!
//! One fleet run drives N simulated PIM-GPU nodes (possibly of
//! heterogeneous [`NodeClass`](crate::config::NodeClass)es) from per-tenant
//! arrival streams. Each arrival passes admission control (the tenant's
//! token bucket, then queue-depth shedding), is routed to a node by the
//! configured [`RouterPolicy`](crate::config::RouterPolicy), and joins that
//! node's per-model batching queue. Every node runs the same
//! dispatch/compile/execute cycle as the single-node serving simulator —
//! per-node LRU plan cache, per-node cost cache, dynamic batching — so a
//! fleet of one node with one tenant degenerates to `pimflow-serve`.
//!
//! ## Node faults and drains
//!
//! The [`FaultScenario`](pimflow_serve::FaultScenario) machinery is reused at node granularity: a
//! down transition of "channel" `k` hard-fails node `k`. Its in-flight
//! batch aborts and every queued request is *rerouted* (bypassing
//! admission — an admitted request is never dropped), paying the detour in
//! its latency. Recoveries bring the node back as active. Autoscaler
//! drains are the graceful version: a draining node takes no new routes,
//! finishes its queue, and parks in standby.
//!
//! ## Determinism
//!
//! The event loop is strictly sequential with a total order on event
//! candidates — `(time, kind, node, model)` with kind priority completion
//! < node-fault < autoscaler-tick < arrival < dispatch — and all
//! randomness comes from per-tenant streams derived from the fleet seed.
//! Worker pools are only used for host-side compilation (precompile and
//! the execution-mode search itself), which is width-deterministic, so the
//! whole [`FleetReport`] and event trace are byte-identical at any
//! `PIMFLOW_JOBS` width.

use crate::admission::TokenBucket;
use crate::autoscale::{decide, ScaleDecision, ScaleSignal};
use crate::config::FleetConfig;
use crate::router::{route, NodeLoad};
use crate::traffic::{tenant_seed, traffic_times_us};
use pimflow::costcache::{CacheCounters, CostCache};
use pimflow::engine::EngineConfig;
use pimflow::search::SearchOptions;
use pimflow_ir::models;
use pimflow_json::{json_struct, Json};
use pimflow_pool::WorkerPool;
use pimflow_serve::{
    compile_batch, normalize_model_name, BatchProfile, BatchQueue, EventLog, Histogram, PlanCache,
    PlanKey, QueuedRequest, ServeError,
};
use std::fmt;

/// Why a fleet run could not start or finish.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet configuration is structurally invalid.
    Config(String),
    /// Per-node model handling failed (unknown model, batching, compile).
    Serve(ServeError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(m) => write!(f, "invalid fleet config: {m}"),
            FleetError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

/// Lifecycle state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Accepting routes and dispatching.
    Active,
    /// Finishing its queue; no new routes.
    Draining,
    /// Idle pool capacity the autoscaler can activate.
    Standby,
    /// Hard-failed by the fault scenario.
    Down,
}

impl NodeState {
    fn name(self) -> &'static str {
        match self {
            NodeState::Active => "active",
            NodeState::Draining => "draining",
            NodeState::Standby => "standby",
            NodeState::Down => "down",
        }
    }
}

/// A batch executing on a node's device.
#[derive(Debug, Clone)]
struct InFlight {
    batch_id: u64,
    start_us: f64,
    finish_us: f64,
    exec_us: f64,
    requests: Vec<QueuedRequest>,
}

/// One simulated PIM-GPU node.
#[derive(Debug)]
struct Node {
    class_idx: usize,
    class_name: String,
    policy_name: String,
    engine_cfg: EngineConfig,
    search_opts: Option<SearchOptions>,
    state: NodeState,
    /// One dynamic-batching queue per co-resident model.
    queues: Vec<BatchQueue>,
    cache: PlanCache<BatchProfile>,
    cost_cache: CostCache,
    inflight: Option<InFlight>,
    busy_us: f64,
    window_busy_us: f64,
    energy_uj: f64,
    batches: u64,
    completed: u64,
    retries: u64,
}

impl Node {
    fn queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn is_idle(&self) -> bool {
        self.inflight.is_none() && self.queues.iter().all(|q| q.is_empty())
    }

    fn accepts_routes(&self) -> bool {
        self.state == NodeState::Active
    }

    /// Earliest `(time, model)` this node could dispatch a batch, or `None`
    /// when it cannot dispatch at all. Ties across models break toward the
    /// lower model index.
    fn dispatch_candidate(&self, now_us: f64, run_draining: bool) -> Option<(f64, usize)> {
        if self.inflight.is_some() || !matches!(self.state, NodeState::Active | NodeState::Draining)
        {
            return None;
        }
        let draining = run_draining || self.state == NodeState::Draining;
        let mut best: Option<(f64, usize)> = None;
        for (m, q) in self.queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let at = if q.len() >= q.max_batch() || draining {
                now_us
            } else {
                now_us.max(q.flush_deadline_us().expect("non-empty queue"))
            };
            if best.is_none_or(|(bt, _)| at < bt) {
                best = Some((at, m));
            }
        }
        best
    }
}

/// Per-tenant serving summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Canonical model name.
    pub model: String,
    /// Requests that arrived within the run window.
    pub arrived: u64,
    /// Requests past admission control and routed to a node.
    pub admitted: u64,
    /// Requests whose batch completed.
    pub completed: u64,
    /// Requests rejected by the tenant's token bucket.
    pub rejected_rate_limited: u64,
    /// Requests shed because the routed-to node's queue was too deep.
    pub rejected_shed: u64,
    /// Requests rejected because no node was accepting traffic.
    pub rejected_unavailable: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Worst latency, microseconds.
    pub max_us: f64,
}

json_struct!(TenantReport {
    name,
    model,
    arrived,
    admitted,
    completed,
    rejected_rate_limited,
    rejected_shed,
    rejected_unavailable,
    p50_us,
    p95_us,
    p99_us,
    mean_us,
    max_us
});

/// Per-node serving summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub node: usize,
    /// Node-class display name.
    pub class: String,
    /// Policy display name.
    pub policy: String,
    /// Batches dispatched on this node.
    pub batches: u64,
    /// Requests completed on this node.
    pub completed: u64,
    /// In-flight batches aborted by a node failure.
    pub retries: u64,
    /// Device busy time (completed batches), microseconds.
    pub busy_us: f64,
    /// Busy fraction of the fleet makespan.
    pub utilization: f64,
    /// Simulated energy, microjoules.
    pub energy_uj: f64,
    /// Plan-cache hit rate over this node's dispatches.
    pub cache_hit_rate: f64,
    /// This node's cost-cache counters.
    pub cost_cache: CacheCounters,
    /// Lifecycle state at the end of the run.
    pub final_state: String,
}

json_struct!(NodeReport {
    node,
    class,
    policy,
    batches,
    completed,
    retries,
    busy_us,
    utilization,
    energy_uj,
    cache_hit_rate,
    cost_cache,
    final_state
});

/// Metrics summary of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Router policy display name.
    pub router: String,
    /// Run window, seconds.
    pub duration_s: f64,
    /// Fleet seed.
    pub seed: u64,
    /// Requests that arrived across all tenants.
    pub arrived: u64,
    /// Requests admitted (routed to a node).
    pub admitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected by admission control (all reasons).
    pub rejected: u64,
    /// Admitted requests never served (only possible when every node is
    /// down and none recovers; healthy and recovering fleets report 0).
    pub dropped: u64,
    /// Time of the last batch completion, microseconds.
    pub makespan_us: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Mean busy fraction across all nodes over the makespan.
    pub fleet_utilization: f64,
    /// Rejected requests as a fraction of arrivals.
    pub rejection_rate: f64,
    /// Fleet-wide median latency, microseconds.
    pub p50_us: f64,
    /// Fleet-wide 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Fleet-wide mean latency, microseconds.
    pub mean_us: f64,
    /// Fleet-wide worst latency, microseconds.
    pub max_us: f64,
    /// Node up/down transitions replayed.
    pub node_fault_events: u64,
    /// Requests rerouted off a failed node.
    pub rerouted: u64,
    /// Standby nodes activated (autoscaler or emergency).
    pub scale_ups: u64,
    /// Active nodes drained by the autoscaler.
    pub scale_downs: u64,
    /// Per-tenant summaries, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Per-node summaries, in node order.
    pub nodes: Vec<NodeReport>,
}

json_struct!(FleetReport {
    router,
    duration_s,
    seed,
    arrived,
    admitted,
    completed,
    rejected,
    dropped,
    makespan_us,
    throughput_rps,
    fleet_utilization,
    rejection_rate,
    p50_us,
    p99_us,
    mean_us,
    max_us,
    node_fault_events,
    rerouted,
    scale_ups,
    scale_downs,
    tenants,
    nodes
});

/// A finished fleet run: the metrics summary plus the JSONL event trace.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Metrics summary.
    pub report: FleetReport,
    /// Event trace (one compact JSON object per line).
    pub events: EventLog,
}

/// Identity of one admitted request, indexed by its global id.
#[derive(Debug, Clone, Copy)]
struct RequestMeta {
    tenant: usize,
    model_idx: usize,
    arrival_us: f64,
}

/// Per-tenant monotonic counters.
#[derive(Debug, Clone, Copy, Default)]
struct TenantCounters {
    arrived: u64,
    admitted: u64,
    completed: u64,
    rej_rate: u64,
    rej_shed: u64,
    rej_unavail: u64,
}

/// Load snapshot of every route-eligible node, ascending node id.
fn eligible_loads(nodes: &[Node], est_us: &[Vec<f64>], now_us: f64) -> Vec<NodeLoad> {
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.accepts_routes())
        .map(|(id, n)| {
            let mut est = n
                .inflight
                .as_ref()
                .map(|f| (f.finish_us - now_us).max(0.0))
                .unwrap_or(0.0);
            for (m, q) in n.queues.iter().enumerate() {
                est += q.len() as f64 * est_us[n.class_idx][m];
            }
            NodeLoad {
                node: id,
                queue_depth: n.queue_depth(),
                est_finish_us: est,
            }
        })
        .collect()
}

/// Activates the lowest-id standby node, if any. Returns its id.
fn activate_standby(nodes: &mut [Node]) -> Option<usize> {
    let id = nodes.iter().position(|n| n.state == NodeState::Standby)?;
    nodes[id].state = NodeState::Active;
    Some(id)
}

/// What the event loop decided to do next.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Complete(usize),
    Fault,
    Tick,
    Arrival,
    Dispatch(usize, usize),
}

/// Runs the fleet simulation described by `cfg`.
///
/// # Errors
///
/// Returns [`FleetError`] when the configuration is invalid, a model is
/// unknown, or a batch fails to compile.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetOutcome, FleetError> {
    cfg.validate().map_err(FleetError::Config)?;

    // Intern the models tenants reference: one graph + one queue slot per
    // distinct canonical name.
    let mut model_names: Vec<String> = Vec::new();
    let mut tenant_model: Vec<usize> = Vec::new();
    for t in &cfg.tenants {
        let name = normalize_model_name(&t.model)
            .ok_or_else(|| FleetError::Serve(ServeError::UnknownModel(t.model.clone())))?;
        let idx = match model_names.iter().position(|m| *m == name) {
            Some(i) => i,
            None => {
                model_names.push(name);
                model_names.len() - 1
            }
        };
        tenant_model.push(idx);
    }
    let graphs: Vec<pimflow_ir::Graph> = model_names
        .iter()
        .map(|m| models::by_name(m).expect("normalized names resolve"))
        .collect();

    // Build the nodes, class by class; the last `initial_standby` ids
    // start parked.
    let mut nodes: Vec<Node> = Vec::new();
    for (ci, class) in cfg.classes.iter().enumerate() {
        for _ in 0..class.count {
            nodes.push(Node {
                class_idx: ci,
                class_name: class.name.clone(),
                policy_name: class.policy.name().to_string(),
                engine_cfg: class.engine_config(),
                search_opts: class.policy.search_options(),
                state: NodeState::Active,
                queues: (0..model_names.len())
                    .map(|_| BatchQueue::new(cfg.max_batch, cfg.batch_timeout_us))
                    .collect(),
                cache: PlanCache::new(cfg.plan_cache_cap),
                cost_cache: CostCache::new(),
                inflight: None,
                busy_us: 0.0,
                window_busy_us: 0.0,
                energy_uj: 0.0,
                batches: 0,
                completed: 0,
                retries: 0,
            });
        }
    }
    let n_nodes = nodes.len();
    for k in 0..cfg.initial_standby {
        nodes[n_nodes - 1 - k].state = NodeState::Standby;
    }

    // Per-(class, model) service-time estimates for the SLO-aware router:
    // the batch-1 plan's predicted latency, compiled against scratch cost
    // caches so node counters stay untouched. Host work, computed for
    // every router policy so report timelines are policy-comparable.
    let mut est_us = vec![vec![0.0f64; model_names.len()]; cfg.classes.len()];
    for (ci, class) in cfg.classes.iter().enumerate() {
        let ecfg = class.engine_config();
        let opts = class.policy.search_options();
        let scratch = CostCache::new();
        for (mi, g) in graphs.iter().enumerate() {
            let p = compile_batch(g, 1, &ecfg, &opts, &scratch)?;
            est_us[ci][mi] = p
                .plan
                .as_ref()
                .map(|plan| plan.predicted_us)
                .unwrap_or(p.latency_us);
        }
    }

    // Warm every node's plan cache in parallel: one worker-pool task per
    // (node, model, batch size), inserted in task order — deterministic at
    // any pool width. Host work; the simulated timeline is unchanged.
    if cfg.precompile {
        let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
        for nid in 0..n_nodes {
            for mi in 0..model_names.len() {
                for size in 1..=cfg.max_batch {
                    tasks.push((nid, mi, size));
                }
            }
        }
        let pool = WorkerPool::from_env();
        let compiled = pool.map(&tasks, |_, &(nid, mi, size)| {
            let node = &nodes[nid];
            compile_batch(
                &graphs[mi],
                size,
                &node.engine_cfg,
                &node.search_opts,
                &node.cost_cache,
            )
        });
        for (&(nid, mi, size), result) in tasks.iter().zip(compiled) {
            let profile = result?;
            let key = PlanKey {
                model: model_names[mi].clone(),
                policy: nodes[nid].policy_name.clone(),
                batch: size,
                mask: nodes[nid].engine_cfg.pim_channel_mask.bits(),
            };
            nodes[nid].cache.insert(key, profile);
        }
    }

    // Merge the per-tenant arrival streams into one global timeline; ties
    // break by tenant index, and the stable sort keeps each tenant's own
    // stream in order.
    struct Arrival {
        t_us: f64,
        tenant: usize,
    }
    let mut arrivals: Vec<Arrival> = Vec::new();
    for (ti, t) in cfg.tenants.iter().enumerate() {
        for t_us in traffic_times_us(&t.traffic, cfg.duration_s, tenant_seed(cfg.seed, ti)) {
            arrivals.push(Arrival { t_us, tenant: ti });
        }
    }
    arrivals.sort_by(|a, b| {
        a.t_us
            .partial_cmp(&b.t_us)
            .expect("finite arrival times")
            .then(a.tenant.cmp(&b.tenant))
    });

    let mut buckets: Vec<TokenBucket> = cfg
        .tenants
        .iter()
        .map(|t| TokenBucket::new(t.rate_limit_rps, t.burst))
        .collect();
    let mut tc = vec![TenantCounters::default(); cfg.tenants.len()];
    let mut tenant_hists = vec![Histogram::new(); cfg.tenants.len()];
    let mut fleet_hist = Histogram::new();
    let mut metas: Vec<RequestMeta> = Vec::new();
    let mut events = EventLog::new();
    // Admitted requests with nowhere to go (every node down); flushed on
    // the next recovery, counted as drops if none comes.
    let mut parked: Vec<QueuedRequest> = Vec::new();
    let mut rr_cursor = 0usize;
    let mut batch_seq = 0u64;
    let mut node_fault_events = 0u64;
    let mut rerouted = 0u64;
    let mut scale_ups = 0u64;
    let mut scale_downs = 0u64;
    let mut now_us = 0.0f64;
    let mut makespan_us = 0.0f64;
    let mut next_arr = 0usize;
    let mut fault_idx = 0usize;
    let mut next_tick_us = if cfg.autoscale.enabled {
        cfg.autoscale.interval_us
    } else {
        f64::INFINITY
    };

    // Re-enqueues an already-admitted request after its node failed:
    // bypasses admission and shedding (zero-drop guarantee), falls back to
    // emergency standby activation, and parks only when the whole fleet is
    // down.
    macro_rules! reroute_admitted {
        ($req:expr, $nodes:expr, $at:expr) => {{
            let req: QueuedRequest = $req;
            let meta = metas[req.id as usize];
            let mut cands = eligible_loads($nodes, &est_us, $at);
            if cands.is_empty() {
                if let Some(id) = activate_standby($nodes) {
                    scale_ups += 1;
                    events.record($at, "activate", vec![("node", Json::Num(id as f64))]);
                    cands = eligible_loads($nodes, &est_us, $at);
                }
            }
            if cands.is_empty() {
                parked.push(req);
            } else {
                let nid = route(cfg.router, &mut rr_cursor, &cands);
                rerouted += 1;
                events.record(
                    $at,
                    "reroute",
                    vec![
                        ("request", Json::Num(req.id as f64)),
                        ("node", Json::Num(nid as f64)),
                    ],
                );
                $nodes[nid].queues[meta.model_idx].push(req);
            }
        }};
    }

    loop {
        let run_draining = next_arr >= arrivals.len();
        let work_left = nodes.iter().any(|n| !n.is_idle());
        let faults_left = fault_idx < cfg.node_faults.events.len();
        if run_draining && !work_left && (parked.is_empty() || !faults_left) {
            break;
        }

        // Pick the next event: earliest time wins; at equal times the kind
        // priority (completion < fault < tick < arrival < dispatch) and
        // then the node/model order decide. `<` comparisons keep the first
        // (lowest-id) candidate on exact ties.
        let mut best_t = f64::INFINITY;
        let mut best_prio = u8::MAX;
        let mut best_ev: Option<Ev> = None;
        let offer = |t: f64,
                     prio: u8,
                     ev: Ev,
                     best_t: &mut f64,
                     best_prio: &mut u8,
                     best_ev: &mut Option<Ev>| {
            if t < *best_t || (t == *best_t && prio < *best_prio) {
                *best_t = t;
                *best_prio = prio;
                *best_ev = Some(ev);
            }
        };
        for (id, node) in nodes.iter().enumerate() {
            if let Some(fl) = &node.inflight {
                offer(
                    fl.finish_us,
                    0,
                    Ev::Complete(id),
                    &mut best_t,
                    &mut best_prio,
                    &mut best_ev,
                );
            }
        }
        if let Some(e) = cfg.node_faults.events.get(fault_idx) {
            offer(
                e.at_us.max(now_us),
                1,
                Ev::Fault,
                &mut best_t,
                &mut best_prio,
                &mut best_ev,
            );
        }
        if next_tick_us.is_finite() && (work_left || !run_draining) {
            offer(
                next_tick_us.max(now_us),
                2,
                Ev::Tick,
                &mut best_t,
                &mut best_prio,
                &mut best_ev,
            );
        }
        if let Some(a) = arrivals.get(next_arr) {
            offer(
                a.t_us.max(now_us),
                3,
                Ev::Arrival,
                &mut best_t,
                &mut best_prio,
                &mut best_ev,
            );
        }
        for (id, node) in nodes.iter().enumerate() {
            if let Some((at, mi)) = node.dispatch_candidate(now_us, run_draining) {
                offer(
                    at,
                    4,
                    Ev::Dispatch(id, mi),
                    &mut best_t,
                    &mut best_prio,
                    &mut best_ev,
                );
            }
        }

        let Some(ev) = best_ev else {
            // Nothing can ever fire again (e.g. parked work with no
            // recovery left was handled by the break above).
            break;
        };
        now_us = now_us.max(best_t);

        match ev {
            Ev::Complete(nid) => {
                let fl = nodes[nid].inflight.take().expect("offered completion");
                nodes[nid].busy_us += fl.exec_us;
                nodes[nid].window_busy_us += fl.exec_us;
                nodes[nid].completed += fl.requests.len() as u64;
                makespan_us = makespan_us.max(fl.finish_us);
                for req in &fl.requests {
                    let meta = metas[req.id as usize];
                    let latency = fl.finish_us - meta.arrival_us;
                    tenant_hists[meta.tenant].record(latency);
                    fleet_hist.record(latency);
                    tc[meta.tenant].completed += 1;
                }
                events.record(
                    fl.finish_us,
                    "complete",
                    vec![
                        ("node", Json::Num(nid as f64)),
                        ("batch", Json::Num(fl.batch_id as f64)),
                        ("size", Json::Num(fl.requests.len() as f64)),
                        ("exec_us", Json::Num(fl.exec_us)),
                    ],
                );
                if nodes[nid].state == NodeState::Draining && nodes[nid].is_idle() {
                    nodes[nid].state = NodeState::Standby;
                    events.record(
                        fl.finish_us,
                        "drained",
                        vec![("node", Json::Num(nid as f64))],
                    );
                }
            }
            Ev::Fault => {
                let e = cfg.node_faults.events[fault_idx].clone();
                fault_idx += 1;
                node_fault_events += 1;
                let nid = e.channel;
                events.record(
                    e.at_us,
                    if e.up { "node_up" } else { "node_down" },
                    vec![("node", Json::Num(nid as f64))],
                );
                if nid >= n_nodes {
                    continue;
                }
                if e.up {
                    if nodes[nid].state == NodeState::Down {
                        nodes[nid].state = NodeState::Active;
                    }
                    // A recovery may unpark stranded requests.
                    let stranded: Vec<QueuedRequest> = std::mem::take(&mut parked);
                    for req in stranded {
                        reroute_admitted!(req, &mut nodes, now_us);
                    }
                } else if nodes[nid].state != NodeState::Down {
                    let mut strays: Vec<QueuedRequest> = Vec::new();
                    if let Some(fl) = nodes[nid].inflight.take() {
                        nodes[nid].retries += 1;
                        events.record(
                            e.at_us,
                            "abort",
                            vec![
                                ("node", Json::Num(nid as f64)),
                                ("batch", Json::Num(fl.batch_id as f64)),
                                ("wasted_us", Json::Num(e.at_us - fl.start_us)),
                            ],
                        );
                        strays.extend(fl.requests);
                    }
                    for q in &mut nodes[nid].queues {
                        while !q.is_empty() {
                            strays.extend(q.take_batch());
                        }
                    }
                    nodes[nid].state = NodeState::Down;
                    for req in strays {
                        reroute_admitted!(req, &mut nodes, now_us);
                    }
                }
            }
            Ev::Tick => {
                let at = next_tick_us;
                next_tick_us += cfg.autoscale.interval_us;
                let active = nodes
                    .iter()
                    .filter(|n| n.state == NodeState::Active)
                    .count();
                let standby = nodes
                    .iter()
                    .filter(|n| n.state == NodeState::Standby)
                    .count();
                let queued: usize = nodes.iter().map(|n| n.queue_depth()).sum();
                let busy: f64 = nodes.iter().map(|n| n.window_busy_us).sum();
                let utilization =
                    (busy / (cfg.autoscale.interval_us * active.max(1) as f64)).min(1.0);
                for node in &mut nodes {
                    node.window_busy_us = 0.0;
                }
                let sig = ScaleSignal {
                    queued_total: queued,
                    active_nodes: active,
                    standby_nodes: standby,
                    utilization,
                };
                match decide(&cfg.autoscale, &sig) {
                    ScaleDecision::Up => {
                        if let Some(id) = activate_standby(&mut nodes) {
                            scale_ups += 1;
                            events.record(at, "scale_up", vec![("node", Json::Num(id as f64))]);
                        }
                    }
                    ScaleDecision::Down => {
                        if let Some(id) = nodes.iter().rposition(|n| n.state == NodeState::Active) {
                            scale_downs += 1;
                            events.record(at, "scale_down", vec![("node", Json::Num(id as f64))]);
                            if nodes[id].is_idle() {
                                nodes[id].state = NodeState::Standby;
                            } else {
                                nodes[id].state = NodeState::Draining;
                            }
                        }
                    }
                    ScaleDecision::Hold => {}
                }
            }
            Ev::Arrival => {
                let a = &arrivals[next_arr];
                next_arr += 1;
                let tenant = a.tenant;
                let t_us = a.t_us;
                let id = metas.len() as u64;
                metas.push(RequestMeta {
                    tenant,
                    model_idx: tenant_model[tenant],
                    arrival_us: t_us,
                });
                tc[tenant].arrived += 1;
                if !buckets[tenant].try_take(t_us) {
                    tc[tenant].rej_rate += 1;
                    events.record(
                        t_us,
                        "reject",
                        vec![
                            ("request", Json::Num(id as f64)),
                            ("tenant", Json::Num(tenant as f64)),
                            ("reason", Json::Str("rate_limit".into())),
                        ],
                    );
                    continue;
                }
                let mut cands = eligible_loads(&nodes, &est_us, now_us);
                if cands.is_empty() {
                    if let Some(act) = activate_standby(&mut nodes) {
                        scale_ups += 1;
                        events.record(t_us, "activate", vec![("node", Json::Num(act as f64))]);
                        cands = eligible_loads(&nodes, &est_us, now_us);
                    }
                }
                if cands.is_empty() {
                    tc[tenant].rej_unavail += 1;
                    events.record(
                        t_us,
                        "reject",
                        vec![
                            ("request", Json::Num(id as f64)),
                            ("tenant", Json::Num(tenant as f64)),
                            ("reason", Json::Str("unavailable".into())),
                        ],
                    );
                    continue;
                }
                let nid = route(cfg.router, &mut rr_cursor, &cands);
                if cfg.admission.shed_queue_depth > 0
                    && nodes[nid].queue_depth() >= cfg.admission.shed_queue_depth
                {
                    tc[tenant].rej_shed += 1;
                    events.record(
                        t_us,
                        "reject",
                        vec![
                            ("request", Json::Num(id as f64)),
                            ("tenant", Json::Num(tenant as f64)),
                            ("reason", Json::Str("shed".into())),
                        ],
                    );
                    continue;
                }
                tc[tenant].admitted += 1;
                nodes[nid].queues[tenant_model[tenant]].push(QueuedRequest {
                    id,
                    arrival_us: t_us,
                });
                events.record(
                    t_us,
                    "route",
                    vec![
                        ("request", Json::Num(id as f64)),
                        ("tenant", Json::Num(tenant as f64)),
                        ("node", Json::Num(nid as f64)),
                    ],
                );
            }
            Ev::Dispatch(nid, mi) => {
                let batch = nodes[nid].queues[mi].take_batch();
                let size = batch.len();
                let key = PlanKey {
                    model: model_names[mi].clone(),
                    policy: nodes[nid].policy_name.clone(),
                    batch: size,
                    mask: nodes[nid].engine_cfg.pim_channel_mask.bits(),
                };
                let node = &mut nodes[nid];
                let (cache, engine_cfg, search_opts, cost_cache) = (
                    &mut node.cache,
                    &node.engine_cfg,
                    &node.search_opts,
                    &node.cost_cache,
                );
                let mut compile_failure: Option<ServeError> = None;
                let (profile, hit) = cache.get_or_insert_with(key, || {
                    match compile_batch(&graphs[mi], size, engine_cfg, search_opts, cost_cache) {
                        Ok(p) => p,
                        Err(e) => {
                            compile_failure = Some(e);
                            BatchProfile::empty()
                        }
                    }
                });
                let profile = profile.clone();
                if let Some(e) = compile_failure {
                    return Err(FleetError::Serve(e));
                }
                let batch_id = batch_seq;
                batch_seq += 1;
                node.batches += 1;
                node.energy_uj += profile.energy_uj;
                let exec_us = profile.latency_us;
                events.record(
                    now_us,
                    "dispatch",
                    vec![
                        ("node", Json::Num(nid as f64)),
                        ("batch", Json::Num(batch_id as f64)),
                        ("model", Json::Str(model_names[mi].clone())),
                        ("size", Json::Num(size as f64)),
                        ("cache", Json::Str(if hit { "hit" } else { "miss" }.into())),
                    ],
                );
                node.inflight = Some(InFlight {
                    batch_id,
                    start_us: now_us,
                    finish_us: now_us + exec_us,
                    exec_us,
                    requests: batch,
                });
            }
        }
    }

    let dropped = parked.len() as u64;
    let arrived: u64 = tc.iter().map(|t| t.arrived).sum();
    let admitted: u64 = tc.iter().map(|t| t.admitted).sum();
    let completed: u64 = tc.iter().map(|t| t.completed).sum();
    let rejected: u64 = tc
        .iter()
        .map(|t| t.rej_rate + t.rej_shed + t.rej_unavail)
        .sum();
    let tenants = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantReport {
            name: t.name.clone(),
            model: model_names[tenant_model[ti]].clone(),
            arrived: tc[ti].arrived,
            admitted: tc[ti].admitted,
            completed: tc[ti].completed,
            rejected_rate_limited: tc[ti].rej_rate,
            rejected_shed: tc[ti].rej_shed,
            rejected_unavailable: tc[ti].rej_unavail,
            p50_us: tenant_hists[ti].quantile(0.50),
            p95_us: tenant_hists[ti].quantile(0.95),
            p99_us: tenant_hists[ti].quantile(0.99),
            mean_us: tenant_hists[ti].mean(),
            max_us: tenant_hists[ti].max(),
        })
        .collect();
    let node_reports = nodes
        .iter()
        .enumerate()
        .map(|(id, n)| NodeReport {
            node: id,
            class: n.class_name.clone(),
            policy: n.policy_name.clone(),
            batches: n.batches,
            completed: n.completed,
            retries: n.retries,
            busy_us: n.busy_us,
            utilization: if makespan_us > 0.0 {
                (n.busy_us / makespan_us).min(1.0)
            } else {
                0.0
            },
            energy_uj: n.energy_uj,
            cache_hit_rate: n.cache.hit_rate(),
            cost_cache: n.cost_cache.counters(),
            final_state: n.state.name().to_string(),
        })
        .collect();
    let total_busy: f64 = nodes.iter().map(|n| n.busy_us).sum();
    let report = FleetReport {
        router: cfg.router.name().to_string(),
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        arrived,
        admitted,
        completed,
        rejected,
        dropped,
        makespan_us,
        throughput_rps: if makespan_us > 0.0 {
            completed as f64 / (makespan_us * 1e-6)
        } else {
            0.0
        },
        fleet_utilization: if makespan_us > 0.0 {
            (total_busy / (makespan_us * n_nodes as f64)).min(1.0)
        } else {
            0.0
        },
        rejection_rate: if arrived > 0 {
            rejected as f64 / arrived as f64
        } else {
            0.0
        },
        p50_us: fleet_hist.quantile(0.50),
        p99_us: fleet_hist.quantile(0.99),
        mean_us: fleet_hist.mean(),
        max_us: fleet_hist.max(),
        node_fault_events,
        rerouted,
        scale_ups,
        scale_downs,
        tenants,
        nodes: node_reports,
    };
    Ok(FleetOutcome { report, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionConfig, AutoscaleConfig, RouterPolicy, TenantSpec};
    use crate::traffic::TrafficSpec;
    use pimflow_serve::FaultScenario;

    fn two_tenant_cfg() -> FleetConfig {
        FleetConfig {
            seed: 7,
            ..FleetConfig::new(
                2,
                vec![
                    TenantSpec::new("alpha", "toy", TrafficSpec::Poisson { rps: 2_000.0 }),
                    TenantSpec::new("beta", "toy", TrafficSpec::Poisson { rps: 1_000.0 }),
                ],
            )
        }
    }

    #[test]
    fn fleet_serves_every_admitted_request() {
        let out = run_fleet(&two_tenant_cfg()).unwrap();
        let r = &out.report;
        assert!(r.arrived > 50, "arrived {}", r.arrived);
        assert_eq!(r.admitted, r.arrived, "no admission limits configured");
        assert_eq!(r.completed, r.admitted);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.p99_us >= r.p50_us);
        let node_completed: u64 = r.nodes.iter().map(|n| n.completed).sum();
        assert_eq!(node_completed, r.completed);
        let tenant_completed: u64 = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(tenant_completed, r.completed);
        assert!(r.nodes.iter().all(|n| n.final_state == "active"));
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let a = run_fleet(&two_tenant_cfg()).unwrap();
        let b = run_fleet(&two_tenant_cfg()).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.events.to_jsonl(), b.events.to_jsonl());
        let c = run_fleet(&FleetConfig {
            seed: 8,
            ..two_tenant_cfg()
        })
        .unwrap();
        assert_ne!(a.events.to_jsonl(), c.events.to_jsonl());
    }

    #[test]
    fn rate_limit_rejects_and_accounts() {
        let mut cfg = two_tenant_cfg();
        cfg.tenants[0].rate_limit_rps = 500.0; // offered 2000
        cfg.tenants[0].burst = 2;
        let r = run_fleet(&cfg).unwrap().report;
        let t0 = &r.tenants[0];
        assert!(t0.rejected_rate_limited > 0);
        assert_eq!(
            t0.arrived,
            t0.completed + t0.rejected_rate_limited + t0.rejected_shed + t0.rejected_unavailable
        );
        // The unlimited tenant is untouched.
        assert_eq!(r.tenants[1].rejected_rate_limited, 0);
        assert_eq!(r.tenants[1].arrived, r.tenants[1].completed);
        assert!(r.rejection_rate > 0.0);
    }

    #[test]
    fn shedding_bounds_queue_depth() {
        let mut cfg = two_tenant_cfg();
        cfg.tenants[0].traffic = TrafficSpec::Poisson { rps: 20_000.0 };
        cfg.admission = AdmissionConfig {
            shed_queue_depth: 4,
        };
        let r = run_fleet(&cfg).unwrap().report;
        let shed: u64 = r.tenants.iter().map(|t| t.rejected_shed).sum();
        assert!(shed > 0, "overload must shed");
        assert_eq!(r.arrived, r.completed + r.rejected);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn node_failures_reroute_without_drops() {
        let mut cfg = two_tenant_cfg();
        // Node 1 dies a third of the way in and recovers late.
        let mut faults = FaultScenario::none();
        faults.push(cfg.duration_s * 1e6 * 0.3, 1, false);
        faults.push(cfg.duration_s * 1e6 * 0.8, 1, true);
        cfg.node_faults = faults;
        let r = run_fleet(&cfg).unwrap().report;
        assert_eq!(r.node_fault_events, 2);
        assert_eq!(r.completed, r.admitted, "zero drops under node faults");
        assert_eq!(r.dropped, 0);
        assert!(
            r.nodes[0].completed > r.nodes[1].completed,
            "survivor carries the load"
        );
    }

    #[test]
    fn autoscaler_activates_standby_under_backlog() {
        let mut cfg = two_tenant_cfg();
        cfg.classes[0].count = 4;
        cfg.initial_standby = 3;
        cfg.tenants[0].traffic = TrafficSpec::Poisson { rps: 30_000.0 };
        cfg.autoscale = AutoscaleConfig {
            enabled: true,
            interval_us: 2_000.0,
            up_queue_per_active: 4.0,
            down_utilization: 0.05,
            min_active: 1,
        };
        let r = run_fleet(&cfg).unwrap().report;
        assert!(r.scale_ups > 0, "backlog must trigger scale-ups");
        assert_eq!(r.completed, r.admitted);
        assert!(
            r.nodes.iter().filter(|n| n.batches > 0).count() > 1,
            "activated nodes must take work"
        );
    }

    #[test]
    fn heterogeneous_fleet_uses_both_classes() {
        let mut cfg = two_tenant_cfg();
        cfg.classes = vec![
            crate::config::NodeClass::new("big", pimflow::policy::Policy::Pimflow, 1),
            crate::config::NodeClass {
                pim_channels: Some(4),
                ..crate::config::NodeClass::new("edge", pimflow::policy::Policy::Pimflow, 1)
            },
        ];
        cfg.router = RouterPolicy::SloAware;
        let r = run_fleet(&cfg).unwrap().report;
        assert_eq!(r.nodes[0].class, "big");
        assert_eq!(r.nodes[1].class, "edge");
        assert_eq!(r.completed, r.admitted);
        assert!(r.nodes.iter().all(|n| n.batches > 0));
    }

    #[test]
    fn precompiled_fleet_matches_lazy_timeline() {
        let lazy = run_fleet(&two_tenant_cfg()).unwrap();
        let warm = run_fleet(&FleetConfig {
            precompile: true,
            ..two_tenant_cfg()
        })
        .unwrap();
        assert_eq!(lazy.report.p50_us, warm.report.p50_us);
        assert_eq!(lazy.report.p99_us, warm.report.p99_us);
        assert_eq!(lazy.report.makespan_us, warm.report.makespan_us);
        assert_eq!(lazy.report.completed, warm.report.completed);
        // Warm caches hit on every dispatch.
        assert!(warm.report.nodes.iter().all(|n| n.cache_hit_rate == 1.0));
    }

    #[test]
    fn report_serializes_and_round_trips() {
        let r = run_fleet(&two_tenant_cfg()).unwrap().report;
        let json = pimflow_json::to_string(&r);
        let back: FleetReport = pimflow_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn unknown_model_is_rejected() {
        let cfg = FleetConfig::new(
            1,
            vec![TenantSpec::new(
                "t",
                "gpt-5",
                TrafficSpec::Fixed { rps: 10.0 },
            )],
        );
        assert!(matches!(
            run_fleet(&cfg),
            Err(FleetError::Serve(ServeError::UnknownModel(_)))
        ));
    }
}
