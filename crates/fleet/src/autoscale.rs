//! Autoscaling decisions from queue-depth and utilization signals.
//!
//! The autoscaler samples the fleet at a fixed interval and decides to
//! activate a standby node, drain an active one, or hold. The decision
//! rule is a pure function of the sampled [`ScaleSignal`], so it is
//! unit-testable in isolation; the simulator applies the decision (picking
//! *which* node deterministically: lowest-id standby to activate,
//! highest-id active to drain).

use crate::config::AutoscaleConfig;

/// Fleet state sampled at one autoscaler tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignal {
    /// Requests queued across all routable nodes.
    pub queued_total: usize,
    /// Nodes currently accepting traffic.
    pub active_nodes: usize,
    /// Standby nodes available to activate.
    pub standby_nodes: usize,
    /// Mean busy fraction of active nodes over the last interval.
    pub utilization: f64,
}

/// What the autoscaler wants to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Activate one standby node.
    Up,
    /// Drain one active node (it finishes its queue, then goes standby).
    Down,
}

/// The decision rule: scale up when the backlog exceeds
/// `up_queue_per_active` requests per active node (and a standby node
/// exists); scale down when the fleet is idle — utilization below
/// `down_utilization` with an empty backlog — and more than `min_active`
/// nodes are active. Backlog pressure wins over idleness.
pub fn decide(cfg: &AutoscaleConfig, sig: &ScaleSignal) -> ScaleDecision {
    if !cfg.enabled {
        return ScaleDecision::Hold;
    }
    let backlog_limit = cfg.up_queue_per_active * sig.active_nodes.max(1) as f64;
    if sig.queued_total as f64 > backlog_limit {
        if sig.standby_nodes > 0 {
            return ScaleDecision::Up;
        }
        return ScaleDecision::Hold; // nothing left to add
    }
    if sig.queued_total == 0
        && sig.utilization < cfg.down_utilization
        && sig.active_nodes > cfg.min_active
    {
        return ScaleDecision::Down;
    }
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            enabled: true,
            interval_us: 50_000.0,
            up_queue_per_active: 8.0,
            down_utilization: 0.15,
            min_active: 1,
        }
    }

    #[test]
    fn disabled_always_holds() {
        let sig = ScaleSignal {
            queued_total: 1_000,
            active_nodes: 1,
            standby_nodes: 3,
            utilization: 1.0,
        };
        let off = AutoscaleConfig {
            enabled: false,
            ..cfg()
        };
        assert_eq!(decide(&off, &sig), ScaleDecision::Hold);
    }

    #[test]
    fn backlog_scales_up_only_with_standby_capacity() {
        let mut sig = ScaleSignal {
            queued_total: 20,
            active_nodes: 2,
            standby_nodes: 1,
            utilization: 0.9,
        };
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Up);
        sig.standby_nodes = 0;
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Hold);
        sig.queued_total = 10; // under 8 * 2
        sig.standby_nodes = 1;
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Hold);
    }

    #[test]
    fn idleness_scales_down_to_the_floor() {
        let mut sig = ScaleSignal {
            queued_total: 0,
            active_nodes: 3,
            standby_nodes: 0,
            utilization: 0.05,
        };
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Down);
        sig.active_nodes = 1;
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Hold, "floor holds");
        sig.active_nodes = 3;
        sig.utilization = 0.5;
        assert_eq!(decide(&cfg(), &sig), ScaleDecision::Hold, "busy holds");
        sig.utilization = 0.05;
        sig.queued_total = 1;
        assert_eq!(
            decide(&cfg(), &sig),
            ScaleDecision::Hold,
            "backlog blocks drain"
        );
    }
}
