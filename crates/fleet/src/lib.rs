//! # pimflow-fleet
//!
//! A deterministic **fleet-scale multi-tenant serving simulator** layered
//! on `pimflow-serve`: where the serving crate models one PIM-GPU node
//! behind a batching queue, this crate models a *fleet* of them behind a
//! router, with tenants, admission control, autoscaling, and node-granular
//! faults.
//!
//! The pieces, bottom up:
//!
//! 1. **Traffic** ([`traffic`]) — seeded per-tenant arrival streams beyond
//!    the single-node generators: diurnal sinusoid load, Markov-modulated
//!    bursts, and heavy-tailed (Zipf) per-tenant rate mixes.
//! 2. **Admission** ([`admission`]) — per-tenant continuous-refill token
//!    buckets; queue-depth shedding happens after routing, in the
//!    simulator.
//! 3. **Routing** ([`router`]) — pluggable pure-function policies:
//!    round-robin, least-loaded by queue depth, and SLO-aware by predicted
//!    batch latency from the compiled plans.
//! 4. **Autoscaling** ([`autoscale`]) — a pure decision rule over sampled
//!    queue-depth/utilization signals; the simulator activates standby
//!    nodes and drains idle ones.
//! 5. **Simulation** ([`sim`]) — the discrete-event loop tying it all
//!    together: per-node plan/cost caches and dynamic batching (exactly
//!    the `pimflow-serve` cycle), node failures that reroute admitted
//!    requests without drops, and per-tenant/per-node/fleet-wide reports.
//!
//! Everything is deterministic: one fleet seed fans out into per-tenant
//! stream seeds, host-side compilation parallelism (`PIMFLOW_JOBS`) never
//! touches the simulated timeline, and reports and event traces are
//! byte-identical at any pool width.
//!
//! ## Example
//!
//! ```
//! use pimflow_fleet::{run_fleet, FleetConfig, TenantSpec, TrafficSpec};
//!
//! let cfg = FleetConfig::new(
//!     2,
//!     vec![
//!         TenantSpec::new("alpha", "toy", TrafficSpec::Poisson { rps: 2000.0 }),
//!         TenantSpec::new("beta", "toy", TrafficSpec::Diurnal {
//!             mean_rps: 1000.0,
//!             amplitude: 0.8,
//!             period_s: 0.05,
//!         }),
//!     ],
//! );
//! let outcome = run_fleet(&cfg).unwrap();
//! assert_eq!(outcome.report.completed, outcome.report.admitted);
//! assert_eq!(outcome.report.dropped, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod autoscale;
pub mod config;
pub mod router;
pub mod sim;
pub mod traffic;

pub use admission::TokenBucket;
pub use autoscale::{decide, ScaleDecision, ScaleSignal};
pub use config::{
    AdmissionConfig, AutoscaleConfig, FleetConfig, NodeClass, RouterPolicy, TenantSpec,
};
pub use router::{route, NodeLoad};
pub use sim::{run_fleet, FleetError, FleetOutcome, FleetReport, NodeReport, TenantReport};
pub use traffic::{tenant_seed, traffic_times_us, zipf_weights, TrafficSpec};
