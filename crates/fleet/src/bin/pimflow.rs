//! The `pimflow` command-line driver, mirroring the artifact's top-level
//! script (§A.5):
//!
//! ```text
//! # Step 1: profile each CONV layer with the MD-DP / pipelining passes
//! pimflow -m=profile -t=split    -n=<net>
//! pimflow -m=profile -t=pipeline -n=<net>
//!
//! # Step 2: compute the optimal graph from the profiles
//! pimflow -m=solve -n=<net>
//!
//! # Step 3: execute (simulate) the transformed model
//! pimflow -m=run -n=<net> [--gpu_only] [--policy=<Newton+|Newton++|MDDP|Pipeline|PIMFlow>]
//!
//! # Extra: dump per-layer DRAM-PIM command traces / model statistics
//! pimflow -m=trace -n=<net>
//! pimflow -m=info  -n=<net>
//!
//! # Serving: simulate an inference service in front of the device
//! pimflow serve --model <net> --policy <p> --rps <r> --duration <s> [--seed <n>]
//!               [--arrival fixed|poisson] [--trace-file <path>] [--max-batch <n>]
//!               [--timeout-us <t>] [--plan-cache-cap <n>] [--precompile]
//!               [--faults <severity>] [--fault-seed <n>] [--measure-replan]
//!               [--events-out <path>] [--report-out <path>]
//!
//! # Fleet: simulate a multi-tenant fleet of PIM-GPU nodes behind a router
//! pimflow fleet --model <net> [--nodes <n>] [--edge-nodes <n>] [--tenants <n>]
//!               [--rps <total>] [--traffic poisson|fixed|diurnal|bursty]
//!               [--router rr|least-loaded|slo] [--duration <s>] [--seed <n>]
//!               [--rate-limit <rps>] [--shed-depth <n>] [--autoscale]
//!               [--standby <n>] [--faults <severity>] [--fault-seed <n>]
//!               [--events-out <path>] [--report-out <path>]
//! ```
//!
//! Every mode accepts `--jobs=<n>` to set the worker-pool width of the
//! Algorithm 1 search (equivalent to the `PIMFLOW_JOBS` environment
//! variable; plans are bit-identical at any width).
//!
//! `<net>` is one of `toy`, `efficientnet-v1-b0`, `mobilenet-v2`,
//! `mnasnet-1.0`, `resnet-50`, `vgg-16` (plus `bert-3`/`bert-64` and the
//! scaled variants). Profiles and plans are stored under `pimflow-out/`,
//! playing the role of the artifact's `PIMFlow/layerwise` and
//! `PIMFlow/pipeline` metadata logs.

use pimflow::engine::{execute, EngineConfig};
use pimflow::policy::{evaluate, Policy};
use pimflow::search::{apply_plan, search, ExecutionPlan, SearchOptions};
use pimflow_fleet::{run_fleet, FleetConfig, NodeClass, RouterPolicy, TenantSpec, TrafficSpec};
use pimflow_ir::models;
use pimflow_serve::{parse_trace, ArrivalSpec, FaultScenario, ServeConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    mode: String,
    transform: Option<String>,
    net: Option<String>,
    gpu_only: bool,
    timeline: bool,
    policy: Policy,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: String::new(),
        transform: None,
        net: None,
        gpu_only: false,
        timeline: false,
        policy: Policy::Pimflow,
        out_dir: PathBuf::from("pimflow-out"),
    };
    for raw in std::env::args().skip(1) {
        let (key, value) = match raw.split_once('=') {
            Some((k, v)) => (k.to_string(), Some(v.to_string())),
            None => (raw.clone(), None),
        };
        match key.as_str() {
            "-m" | "--mode" => args.mode = value.ok_or("-m requires a value")?,
            "-t" | "--transform" => args.transform = value,
            "-n" | "--net" => args.net = value,
            "--gpu_only" | "--gpu-only" => args.gpu_only = true,
            "--timeline" => args.timeline = true,
            "--policy" => {
                let v = value.ok_or("--policy requires a value")?;
                args.policy =
                    Policy::from_cli(&v).ok_or_else(|| format!("unknown policy `{v}`"))?;
            }
            "--out" => args.out_dir = PathBuf::from(value.ok_or("--out requires a value")?),
            "--jobs" | "-j" => set_jobs(&value.ok_or("--jobs requires a value")?)?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.mode.is_empty() {
        return Err("missing -m=<profile|solve|run>".into());
    }
    Ok(args)
}

/// Applies `--jobs`: the search and the bench sweeps read the pool width
/// from `PIMFLOW_JOBS`, so the flag just sets the variable for this
/// process (results are bit-identical at any width — only wall time
/// changes).
fn set_jobs(value: &str) -> Result<(), String> {
    let n: usize = value
        .parse()
        .map_err(|_| format!("--jobs expects a positive integer, got `{value}`"))?;
    if n == 0 {
        return Err("--jobs must be at least 1 (unset it for auto)".into());
    }
    std::env::set_var(pimflow_pool::JOBS_ENV_VAR, value);
    Ok(())
}

fn load_model(net: &Option<String>) -> Result<pimflow_ir::Graph, String> {
    let name = net.as_deref().ok_or("missing -n=<net>")?;
    models::by_name(name).ok_or_else(|| {
        format!(
            "unknown network `{name}` (try: toy, efficientnet-v1-b0, mobilenet-v2, \
             mnasnet-1.0, resnet-50, vgg-16, bert-3, bert-64)"
        )
    })
}

fn write_json<T: pimflow_json::ToJson>(path: &Path, value: &T) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let json = pimflow_json::to_string_pretty(value);
    std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn profile(args: &Args) -> Result<(), String> {
    let g = load_model(&args.net)?;
    let cfg = EngineConfig::pimflow();
    let kind = args.transform.as_deref().unwrap_or("split");
    match kind {
        "split" => {
            let opts = SearchOptions {
                allow_pipeline: false,
                ..Default::default()
            };
            let plan = search(&g, &cfg, &opts).map_err(|e| e.to_string())?;
            let path = args
                .out_dir
                .join("layerwise")
                .join(format!("{}.json", g.name));
            write_json(&path, &plan.profiles)?;
            println!(
                "profiled {} MD-DP candidate layers -> {}",
                plan.profiles.len(),
                path.display()
            );
        }
        "pipeline" => {
            let chains = pimflow::passes::find_chains(&g);
            let rows: Vec<(String, usize, f64)> = chains
                .iter()
                .map(|c| {
                    let head = g.node(c.nodes[0]).name.clone();
                    let cost = pimflow::search::estimate_chain_pipelined_us(&g, &cfg, c, 2);
                    (head, c.nodes.len(), cost)
                })
                .collect();
            let path = args
                .out_dir
                .join("pipeline")
                .join(format!("{}.json", g.name));
            write_json(&path, &rows)?;
            println!(
                "profiled {} pipelining candidate subgraphs -> {}",
                rows.len(),
                path.display()
            );
        }
        other => return Err(format!("unknown transform `{other}` (use split|pipeline)")),
    }
    Ok(())
}

fn solve(args: &Args) -> Result<(), String> {
    let g = load_model(&args.net)?;
    let cfg = args.policy.engine_config();
    let opts = args
        .policy
        .search_options()
        .ok_or("the baseline policy has nothing to solve")?;
    let plan = search(&g, &cfg, &opts).map_err(|e| e.to_string())?;
    let path = args.out_dir.join("plans").join(format!("{}.json", g.name));
    write_json(&path, &plan)?;
    println!(
        "optimal plan for {}: {} decisions, predicted {:.1} us -> {}",
        g.name,
        plan.decisions.len(),
        plan.predicted_us,
        path.display()
    );
    Ok(())
}

/// Dumps the generated DRAM-PIM command trace of every PIM-candidate layer
/// (the artifact's trace files the Ramulator back-end replays).
fn trace(args: &Args) -> Result<(), String> {
    use pimflow::codegen::{generate_blocks, PimWorkload};
    use pimflow_pimsim::{schedule, traces_to_text, RunOptions};
    let g = load_model(&args.net)?;
    let cfg = args.policy.engine_config();
    let dir = args.out_dir.join("traces").join(&g.name);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut count = 0;
    for id in g.node_ids() {
        if !g.is_pim_candidate(id) {
            continue;
        }
        let w = PimWorkload::from_node(&g, id);
        let blocks = generate_blocks(&w, &cfg.pim);
        let traces = schedule(
            &blocks,
            cfg.pim_channels.max(1),
            cfg.granularity,
            &cfg.pim,
            &RunOptions::new(),
        );
        let path = dir.join(format!("{}.trace", g.node(id).name.replace("::", "_")));
        std::fs::write(&path, traces_to_text(&traces))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        count += 1;
    }
    println!("wrote {count} layer traces to {}", dir.display());
    Ok(())
}

/// Prints model statistics and writes the Graphviz DOT rendering.
fn info(args: &Args) -> Result<(), String> {
    let g = load_model(&args.net)?;
    println!("{}", g.summary());
    println!(
        "inter-node parallelism: {:.1}% of nodes have an independent peer",
        pimflow_ir::analysis::independent_node_fraction(&g) * 100.0
    );
    let dir = args.out_dir.join("dot");
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.dot", g.name));
    std::fs::write(&path, g.to_dot()).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("graph rendered to {}", path.display());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let g = load_model(&args.net)?;
    if args.gpu_only {
        let report = execute(&g, &EngineConfig::baseline_gpu()).map_err(|e| e.to_string())?;
        println!(
            "{} on GPU baseline (32 channels): {:.1} us, {:.0} uJ",
            g.name, report.total_us, report.energy_uj
        );
        return Ok(());
    }
    // Reuse a previously solved plan if present (Step 3 after Step 2),
    // otherwise search on the fly.
    let plan_path = args.out_dir.join("plans").join(format!("{}.json", g.name));
    let cfg = args.policy.engine_config();
    let report = match std::fs::read_to_string(&plan_path) {
        Ok(json) => {
            let plan: ExecutionPlan = pimflow_json::from_str(&json)
                .map_err(|e| format!("parsing {}: {e}", plan_path.display()))?;
            println!("using saved plan {}", plan_path.display());
            let transformed = apply_plan(&g, &plan).map_err(|e| e.to_string())?;
            execute(&transformed, &cfg).map_err(|e| e.to_string())?
        }
        Err(_) => evaluate(&g, args.policy).map_err(|e| e.to_string())?.report,
    };
    let base = execute(&g, &EngineConfig::baseline_gpu()).map_err(|e| e.to_string())?;
    println!(
        "{} under {}: {:.1} us ({:.2}x over GPU baseline), {:.0} uJ ({:.2}x)",
        g.name,
        args.policy.name(),
        report.total_us,
        base.total_us / report.total_us,
        report.energy_uj,
        base.energy_uj / report.energy_uj,
    );
    println!(
        "  gpu busy {:.1} us, pim busy {:.1} us, {} KB moved across the channel boundary",
        report.gpu_busy_us,
        report.pim_busy_us,
        report.transfer_bytes / 1024
    );
    if args.timeline {
        print!("{}", pimflow::report::render_timeline(&report, 72));
    }
    Ok(())
}

/// Flags of the `pimflow serve` subcommand, before they are folded into a
/// [`ServeConfig`].
#[derive(Debug)]
struct ServeArgs {
    cfg: ServeConfig,
    rps: f64,
    arrival_kind: String,
    trace_file: Option<PathBuf>,
    events_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
    fault_severity: f64,
    fault_seed: Option<u64>,
}

/// Parses `pimflow serve` flags. Accepts both `--flag value` and
/// `--flag=value` spellings.
fn parse_serve_args(raw: &[String]) -> Result<ServeArgs, String> {
    let mut model: Option<String> = None;
    let mut sa = ServeArgs {
        cfg: ServeConfig::new("", Policy::Pimflow),
        rps: 100.0,
        arrival_kind: "fixed".to_string(),
        trace_file: None,
        events_out: None,
        report_out: None,
        fault_severity: 0.0,
        fault_seed: None,
    };
    let mut it = raw.iter();
    while let Some(tok) = it.next() {
        let (key, inline) = match tok.split_once('=') {
            Some((k, v)) => (k.to_string(), Some(v.to_string())),
            None => (tok.clone(), None),
        };
        let mut value = |flag: &str| -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value")),
            }
        };
        let num = |flag: &str, v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("{flag} expects a number, got `{v}`"))
        };
        let int = |flag: &str, v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("{flag} expects an integer, got `{v}`"))
        };
        match key.as_str() {
            "--model" | "-n" => model = Some(value(&key)?),
            "--policy" => {
                let v = value(&key)?;
                sa.cfg.policy =
                    Policy::from_cli(&v).ok_or_else(|| format!("unknown policy `{v}`"))?;
            }
            "--rps" => sa.rps = num(&key, &value(&key)?)?,
            "--arrival" => {
                let v = value(&key)?;
                match v.as_str() {
                    "fixed" | "poisson" | "trace" => sa.arrival_kind = v,
                    other => {
                        return Err(format!(
                            "unknown arrival `{other}` (use fixed|poisson|trace)"
                        ))
                    }
                }
            }
            "--trace-file" => sa.trace_file = Some(PathBuf::from(value(&key)?)),
            "--duration" => sa.cfg.duration_s = num(&key, &value(&key)?)?,
            "--seed" => sa.cfg.seed = int(&key, &value(&key)?)? as u64,
            "--max-batch" => sa.cfg.max_batch = int(&key, &value(&key)?)?,
            "--timeout-us" => sa.cfg.batch_timeout_us = num(&key, &value(&key)?)?,
            // `--plan-cache-cap` is the canonical spelling (matching the
            // PIMFLOW_PLAN_CACHE_CAP variable); `--cache-size` stays as an
            // alias for older scripts.
            "--plan-cache-cap" | "--cache-size" => {
                let v = value(&key)?;
                let n = int(&key, &v)?;
                if n == 0 {
                    return Err(format!("{key} must be at least 1"));
                }
                sa.cfg.cache_capacity = n;
            }
            "--precompile" => sa.cfg.precompile = true,
            "--faults" => {
                let v = value(&key)?;
                sa.fault_severity = num(&key, &v)?;
                if !(0.0..=1.0).contains(&sa.fault_severity) {
                    return Err(format!("--faults expects a severity in [0, 1], got `{v}`"));
                }
            }
            "--fault-seed" => sa.fault_seed = Some(int(&key, &value(&key)?)? as u64),
            "--measure-replan" => sa.cfg.measure_replan = true,
            "--jobs" | "-j" => set_jobs(&value(&key)?)?,
            "--events-out" => sa.events_out = Some(PathBuf::from(value(&key)?)),
            "--report-out" => sa.report_out = Some(PathBuf::from(value(&key)?)),
            other => return Err(format!("unknown serve argument `{other}`")),
        }
    }
    sa.cfg.model = model.ok_or("missing --model <net>")?;
    if sa.rps <= 0.0 {
        return Err("--rps must be positive".into());
    }
    if sa.cfg.duration_s <= 0.0 {
        return Err("--duration must be positive".into());
    }
    sa.cfg.arrival = match sa.arrival_kind.as_str() {
        "fixed" => ArrivalSpec::Fixed { rps: sa.rps },
        "poisson" => ArrivalSpec::Poisson { rps: sa.rps },
        "trace" => {
            let path = sa
                .trace_file
                .as_ref()
                .ok_or("--arrival trace requires --trace-file <path>")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            ArrivalSpec::Trace {
                times_us: parse_trace(&text)?,
            }
        }
        _ => unreachable!("validated above"),
    };
    if sa.arrival_kind != "trace" && sa.trace_file.is_some() {
        return Err("--trace-file requires --arrival trace".into());
    }
    if sa.fault_severity > 0.0 {
        // Seed precedence: --fault-seed, then PIMFLOW_FAULTS, then the run
        // seed — so CI can pin a fault scenario without editing commands.
        let seed = match sa.fault_seed {
            Some(s) => s,
            None => match std::env::var("PIMFLOW_FAULTS") {
                Ok(v) => v
                    .parse::<u64>()
                    .map_err(|_| format!("PIMFLOW_FAULTS expects an integer seed, got `{v}`"))?,
                Err(_) => sa.cfg.seed,
            },
        };
        let channels = sa.cfg.policy.engine_config().pim_channels;
        sa.cfg.faults =
            FaultScenario::from_seed(seed, channels, sa.fault_severity, sa.cfg.duration_s);
    } else if sa.fault_seed.is_some() {
        return Err("--fault-seed requires --faults <severity>".into());
    }
    Ok(sa)
}

fn serve(raw: &[String]) -> Result<(), String> {
    let sa = parse_serve_args(raw)?;
    let run = pimflow_serve::run(&sa.cfg).map_err(|e| e.to_string())?;
    let r = &run.report;
    println!(
        "serving {} under {} ({} arrival, seed {})",
        r.model, r.policy, sa.arrival_kind, sa.cfg.seed
    );
    println!(
        "  requests: {} arrived, {} completed in {} batches over {:.1} us",
        r.counters.arrived, r.counters.completed, r.counters.batches, r.makespan_us
    );
    println!("  throughput: {:.1} req/s", r.throughput_rps);
    println!(
        "  latency us: p50 {:.1}  p95 {:.1}  p99 {:.1}  mean {:.1}  max {:.1}",
        r.p50_us, r.p95_us, r.p99_us, r.mean_us, r.max_us
    );
    let sizes: Vec<String> = r
        .batch_sizes
        .iter()
        .map(|&(s, n)| format!("{s}x{n}"))
        .collect();
    println!("  batch sizes: {}", sizes.join(" "));
    println!(
        "  plan cache: {} hits, {} misses ({:.1}% hit rate), {} searches",
        r.counters.cache_hits,
        r.counters.cache_misses,
        r.cache_hit_rate * 100.0,
        r.counters.search_invocations
    );
    if r.pim_channel_utilization.is_empty() {
        println!("  pim channels: none under this policy");
    } else {
        let utils: Vec<String> = r
            .pim_channel_utilization
            .iter()
            .map(|u| format!("{:.1}", u * 100.0))
            .collect();
        println!("  pim channel utilization %: {}", utils.join(" "));
    }
    println!("  energy: {:.0} uJ", r.energy_uj);
    if !sa.cfg.faults.is_none() {
        println!(
            "  faults: {} transitions, {} retries, {} plan repairs",
            r.counters.fault_events, r.counters.retries, r.counters.repairs
        );
        println!(
            "  latency by phase us: before p50 {:.1} p99 {:.1} | during p50 {:.1} p99 {:.1} | after p50 {:.1} p99 {:.1}",
            r.p50_before_us, r.p99_before_us, r.p50_during_us, r.p99_during_us,
            r.p50_after_us, r.p99_after_us
        );
        println!(
            "  gpu fallback: {:.1}% of requests served all-GPU",
            r.gpu_fallback_fraction * 100.0
        );
        if sa.cfg.measure_replan {
            println!(
                "  repair vs full replan: {:+.2}% predicted latency",
                r.repair_quality_delta * 100.0
            );
        }
    }
    if let Some(path) = &sa.events_out {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(path, run.events.to_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  event trace ({} events) -> {}",
            run.events.len(),
            path.display()
        );
    }
    if let Some(path) = &sa.report_out {
        write_json(path, r)?;
        println!("  report -> {}", path.display());
    }
    Ok(())
}

/// Flags of the `pimflow fleet` subcommand, before they are folded into a
/// [`FleetConfig`].
#[derive(Debug)]
struct FleetArgs {
    cfg: FleetConfig,
    model: String,
    tenants: usize,
    rps: f64,
    alpha: f64,
    traffic_kind: String,
    rate_limit: f64,
    burst: usize,
    edge_nodes: usize,
    edge_channels: usize,
    fault_severity: f64,
    fault_seed: Option<u64>,
    events_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
}

/// Parses `pimflow fleet` flags. Accepts both `--flag value` and
/// `--flag=value` spellings.
fn parse_fleet_args(raw: &[String]) -> Result<FleetArgs, String> {
    let mut nodes = 4usize;
    let mut fa = FleetArgs {
        cfg: FleetConfig::new(4, Vec::new()),
        model: String::new(),
        tenants: 4,
        rps: 4_000.0,
        alpha: 1.2,
        traffic_kind: "poisson".to_string(),
        rate_limit: 0.0,
        burst: 4,
        edge_nodes: 0,
        edge_channels: 8,
        fault_severity: 0.0,
        fault_seed: None,
        events_out: None,
        report_out: None,
    };
    let mut it = raw.iter();
    while let Some(tok) = it.next() {
        let (key, inline) = match tok.split_once('=') {
            Some((k, v)) => (k.to_string(), Some(v.to_string())),
            None => (tok.clone(), None),
        };
        let mut value = |flag: &str| -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value")),
            }
        };
        let num = |flag: &str, v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("{flag} expects a number, got `{v}`"))
        };
        let int = |flag: &str, v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .map_err(|_| format!("{flag} expects an integer, got `{v}`"))
        };
        match key.as_str() {
            "--model" | "-n" => fa.model = value(&key)?,
            "--nodes" => nodes = int(&key, &value(&key)?)?,
            "--edge-nodes" => fa.edge_nodes = int(&key, &value(&key)?)?,
            "--edge-channels" => fa.edge_channels = int(&key, &value(&key)?)?,
            "--tenants" => fa.tenants = int(&key, &value(&key)?)?,
            "--rps" => fa.rps = num(&key, &value(&key)?)?,
            "--alpha" => fa.alpha = num(&key, &value(&key)?)?,
            "--traffic" => {
                let v = value(&key)?;
                match v.as_str() {
                    "poisson" | "fixed" | "diurnal" | "bursty" => fa.traffic_kind = v,
                    other => {
                        return Err(format!(
                            "unknown traffic `{other}` (use poisson|fixed|diurnal|bursty)"
                        ))
                    }
                }
            }
            "--router" => {
                let v = value(&key)?;
                fa.cfg.router = RouterPolicy::from_cli(&v)
                    .ok_or_else(|| format!("unknown router `{v}` (use rr|least-loaded|slo)"))?;
            }
            "--duration" => fa.cfg.duration_s = num(&key, &value(&key)?)?,
            "--seed" => fa.cfg.seed = int(&key, &value(&key)?)? as u64,
            "--max-batch" => fa.cfg.max_batch = int(&key, &value(&key)?)?,
            "--timeout-us" => fa.cfg.batch_timeout_us = num(&key, &value(&key)?)?,
            "--plan-cache-cap" => {
                let v = value(&key)?;
                let n = int(&key, &v)?;
                if n == 0 {
                    return Err("--plan-cache-cap must be at least 1".into());
                }
                fa.cfg.plan_cache_cap = n;
            }
            "--rate-limit" => fa.rate_limit = num(&key, &value(&key)?)?,
            "--burst" => fa.burst = int(&key, &value(&key)?)?,
            "--shed-depth" => fa.cfg.admission.shed_queue_depth = int(&key, &value(&key)?)?,
            "--autoscale" => fa.cfg.autoscale.enabled = true,
            "--standby" => fa.cfg.initial_standby = int(&key, &value(&key)?)?,
            "--faults" => {
                let v = value(&key)?;
                fa.fault_severity = num(&key, &v)?;
                if !(0.0..=1.0).contains(&fa.fault_severity) {
                    return Err(format!("--faults expects a severity in [0, 1], got `{v}`"));
                }
            }
            "--fault-seed" => fa.fault_seed = Some(int(&key, &value(&key)?)? as u64),
            "--precompile" => fa.cfg.precompile = true,
            "--jobs" | "-j" => set_jobs(&value(&key)?)?,
            "--events-out" => fa.events_out = Some(PathBuf::from(value(&key)?)),
            "--report-out" => fa.report_out = Some(PathBuf::from(value(&key)?)),
            other => return Err(format!("unknown fleet argument `{other}`")),
        }
    }
    if fa.model.is_empty() {
        return Err("missing --model <net>".into());
    }
    if fa.rps <= 0.0 {
        return Err("--rps must be positive".into());
    }
    if fa.tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    if fa.cfg.duration_s <= 0.0 {
        return Err("--duration must be positive".into());
    }

    // Node classes: `--nodes` full-size PIMFlow nodes, plus an optional
    // heterogeneous tier of `--edge-nodes` with fewer PIM channels.
    let mut classes = vec![NodeClass::new("node", Policy::Pimflow, nodes)];
    if fa.edge_nodes > 0 {
        classes.push(NodeClass {
            pim_channels: Some(fa.edge_channels.max(1)),
            ..NodeClass::new("edge", Policy::Pimflow, fa.edge_nodes)
        });
    }
    fa.cfg.classes = classes;

    // Tenants: a heavy-tailed Zipf(alpha) split of the total offered rate,
    // with each tenant's share wrapped in the requested stream shape.
    let duration = fa.cfg.duration_s;
    fa.cfg.tenants = pimflow_fleet::zipf_weights(fa.tenants, fa.alpha)
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let share = fa.rps * w;
            let traffic = match fa.traffic_kind.as_str() {
                "fixed" => TrafficSpec::Fixed { rps: share },
                "poisson" => TrafficSpec::Poisson { rps: share },
                "diurnal" => TrafficSpec::Diurnal {
                    mean_rps: share,
                    amplitude: 0.8,
                    period_s: duration,
                },
                "bursty" => TrafficSpec::Bursty {
                    base_rps: share * 0.5,
                    burst_rps: share * 2.5,
                    mean_dwell_s: duration / 10.0,
                },
                _ => unreachable!("validated above"),
            };
            TenantSpec {
                rate_limit_rps: fa.rate_limit,
                burst: fa.burst,
                ..TenantSpec::new(format!("t{i}"), &fa.model, traffic)
            }
        })
        .collect();

    if fa.fault_severity > 0.0 {
        // Same seed precedence as `serve`: --fault-seed, then
        // PIMFLOW_FAULTS, then the run seed — but replayed at *node*
        // granularity (a down event fails a whole node).
        let seed = match fa.fault_seed {
            Some(s) => s,
            None => match std::env::var("PIMFLOW_FAULTS") {
                Ok(v) => v
                    .parse::<u64>()
                    .map_err(|_| format!("PIMFLOW_FAULTS expects an integer seed, got `{v}`"))?,
                Err(_) => fa.cfg.seed,
            },
        };
        fa.cfg.node_faults = FaultScenario::from_seed(
            seed,
            fa.cfg.node_count(),
            fa.fault_severity,
            fa.cfg.duration_s,
        );
    } else if fa.fault_seed.is_some() {
        return Err("--fault-seed requires --faults <severity>".into());
    }
    fa.cfg.validate()?;
    Ok(fa)
}

fn fleet(raw: &[String]) -> Result<(), String> {
    let fa = parse_fleet_args(raw)?;
    let out = run_fleet(&fa.cfg).map_err(|e| e.to_string())?;
    let r = &out.report;
    println!(
        "fleet of {} nodes ({} standby), {} tenants on {}, {} router, seed {}",
        fa.cfg.node_count(),
        fa.cfg.initial_standby,
        r.tenants.len(),
        fa.model,
        r.router,
        r.seed
    );
    println!(
        "  requests: {} arrived, {} admitted, {} completed, {} rejected, {} dropped",
        r.arrived, r.admitted, r.completed, r.rejected, r.dropped
    );
    println!(
        "  throughput {:.1} req/s over {:.1} us makespan, fleet utilization {:.1}%",
        r.throughput_rps,
        r.makespan_us,
        r.fleet_utilization * 100.0
    );
    println!(
        "  latency us: p50 {:.1}  p99 {:.1}  mean {:.1}  max {:.1}",
        r.p50_us, r.p99_us, r.mean_us, r.max_us
    );
    if r.node_fault_events > 0 || r.rerouted > 0 {
        println!(
            "  faults: {} node transitions, {} requests rerouted",
            r.node_fault_events, r.rerouted
        );
    }
    if r.scale_ups > 0 || r.scale_downs > 0 {
        println!(
            "  autoscaler: {} scale-ups, {} scale-downs",
            r.scale_ups, r.scale_downs
        );
    }
    for t in &r.tenants {
        println!(
            "  tenant {:>6}: {:>5} arrived {:>5} done {:>4} rejected | p50 {:>8.1} p99 {:>8.1} us",
            t.name,
            t.arrived,
            t.completed,
            t.rejected_rate_limited + t.rejected_shed + t.rejected_unavailable,
            t.p50_us,
            t.p99_us
        );
    }
    for n in &r.nodes {
        println!(
            "  node {:>2} ({:>4}, {}): {:>4} batches {:>5} reqs, busy {:.1}% , cache hit {:.0}%, {}",
            n.node,
            n.class,
            n.policy,
            n.batches,
            n.completed,
            n.utilization * 100.0,
            n.cache_hit_rate * 100.0,
            n.final_state
        );
    }
    if let Some(path) = &fa.events_out {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(path, out.events.to_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  event trace ({} events) -> {}",
            out.events.len(),
            path.display()
        );
    }
    if let Some(path) = &fa.report_out {
        write_json(path, r)?;
        println!("  report -> {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("fleet") {
        return match fleet(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: pimflow fleet --model <net> [--nodes <n>] [--edge-nodes <n>] \
                     [--edge-channels <c>] [--tenants <n>] [--rps <total>] [--alpha <a>] \
                     [--traffic poisson|fixed|diurnal|bursty] [--router rr|least-loaded|slo] \
                     [--duration <s>] [--seed <n>] [--max-batch <n>] [--timeout-us <t>] \
                     [--plan-cache-cap <n>] [--rate-limit <rps>] [--burst <n>] \
                     [--shed-depth <n>] [--autoscale] [--standby <n>] [--faults <severity>] \
                     [--fault-seed <n>] [--precompile] [--jobs <n>] [--events-out <path>] \
                     [--report-out <path>]"
                );
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return match serve(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: pimflow serve --model <net> [--policy <p>] [--rps <r>] \
                     [--arrival fixed|poisson|trace] [--trace-file <path>] [--duration <s>] \
                     [--seed <n>] [--max-batch <n>] [--timeout-us <t>] [--plan-cache-cap <n>] \
                     [--precompile] [--faults <severity>] [--fault-seed <n>] \
                     [--measure-replan] [--jobs <n>] [--events-out <path>] \
                     [--report-out <path>]"
                );
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: pimflow -m=<profile|solve|trace|info|run> [-t=<split|pipeline>] -n=<net> [--gpu_only] [--policy=<p>] [--out=<dir>]");
            eprintln!("       pimflow serve --model <net> [--policy <p>] [--rps <r>] [--duration <s>] ...");
            eprintln!("       pimflow fleet --model <net> [--nodes <n>] [--tenants <n>] [--router rr|least-loaded|slo] ...");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.mode.as_str() {
        "profile" => profile(&args),
        "solve" => solve(&args),
        "trace" => trace(&args),
        "info" => info(&args),
        "run" => run(&args),
        other => Err(format!("unknown mode `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
