//! DRAM-PIM command generation (§4.3.1).
//!
//! Lowers a CONV or FC node into [`CommandBlock`]s: the filter matrix is
//! assumed pre-placed in the memory cell arrays (§2.2), input-matrix rows
//! stream through the global buffers via GWRITE, and each group of
//! `num_global_buffers` rows shares one streaming pass over the filter tile
//! (the command-reuse optimization, §4.1). The blocks are then distributed
//! over the PIM channels by the command scheduler and timed by the
//! DRAM-PIM simulator.

use pimflow_gpusim::GpuConfig;
use pimflow_ir::{Conv2dAttrs, Graph, NodeId, Op, Shape};
use pimflow_isa::{FusedRole, IsaProgram};
use pimflow_kernels::lowered_dims;
use pimflow_pimsim::{
    lift_traces, pim_energy_nj, schedule, ChannelStats, CommandBlock, NewtonInterpreter, PimConfig,
    PimEnergyParams, RunOptions, ScheduleGranularity,
};

/// A PIM-offloadable workload in lowered (matrix) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PimWorkload {
    /// Input-matrix rows to process.
    pub rows: usize,
    /// Reduction length per row.
    pub k_elems: usize,
    /// Output channels (filter-matrix columns).
    pub out_channels: usize,
    /// Whether GWRITE rows gather non-contiguous input (k > 1x1 conv).
    pub strided: bool,
    /// Contiguous input segments per row when strided (kh * kw for NHWC).
    pub segments: usize,
}

impl PimWorkload {
    /// Lowers a convolution over `input_shape`.
    pub fn from_conv(input_shape: &Shape, attrs: &Conv2dAttrs) -> Self {
        let d = lowered_dims(input_shape, attrs);
        PimWorkload {
            rows: d.rows,
            k_elems: d.k_elems,
            out_channels: d.out_channels,
            strided: d.strided,
            segments: (attrs.kernel.h * attrs.kernel.w).max(1),
        }
    }

    /// Lowers a dense layer over a `[rows, features]` input.
    pub fn from_dense(rows: usize, in_features: usize, out_features: usize) -> Self {
        PimWorkload {
            rows,
            k_elems: in_features,
            out_channels: out_features,
            strided: false,
            segments: 1,
        }
    }

    /// Lowers graph node `id` (must be a PIM-candidate CONV or FC).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a CONV/FC or shapes are missing.
    pub fn from_node(graph: &Graph, id: NodeId) -> Self {
        let node = graph.node(id);
        let in_shape = &graph
            .value(node.inputs[0])
            .desc
            .as_ref()
            .expect("shapes inferred")
            .shape;
        match &node.op {
            Op::Conv2d(a) => PimWorkload::from_conv(in_shape, a),
            Op::Dense(a) => PimWorkload::from_dense(in_shape.n(), in_shape.c(), a.out_features),
            other => panic!("node `{}` ({other}) is not PIM-offloadable", node.name),
        }
    }

    /// Total MAC operations of the workload.
    pub fn macs(&self) -> u64 {
        self.rows as u64 * self.k_elems as u64 * self.out_channels as u64
    }
}

/// Generates the command blocks for a workload under `cfg`.
///
/// Each block processes up to `cfg.num_global_buffers` input rows: GWRITE
/// fills one buffer per row, a G_ACT stream walks the filter tile once, and
/// each activated row's column I/Os are COMPed against every live buffer
/// before moving on (G_ACT reuse). Rows whose reduction exceeds the buffer
/// capacity are k-tiled; the result latches accumulate across tiles so only
/// one READRES per row group is needed.
pub fn generate_blocks(w: &PimWorkload, cfg: &PimConfig) -> Vec<CommandBlock> {
    if w.rows == 0 || w.k_elems == 0 || w.out_channels == 0 {
        return Vec::new();
    }
    let elem_bytes = 2u32; // PIM-native f16
    let buffer_rows = cfg.num_global_buffers.min(w.rows).max(1) as u8;
    let k_tiles = w.k_elems.div_ceil(cfg.buffer_elems()).max(1);
    let oc_per_bank = w.out_channels.div_ceil(cfg.banks).max(1);

    // Filter elements resident per bank, and the activations/column I/Os
    // needed to stream them once per buffer row.
    let filter_elems_per_bank = w.k_elems * oc_per_bank;
    let gacts = filter_elems_per_bank
        .div_ceil(cfg.row_elems_per_bank())
        .max(1) as u32;
    let column_ios = w.k_elems.div_ceil(cfg.elems_per_column_io()) * oc_per_bank;
    let comps_per_gact = (column_ios as u32).div_ceil(gacts).max(1);

    let segments = if w.strided && !cfg.strided_gwrite {
        w.segments
    } else {
        1
    };
    let gwrites_per_row = (k_tiles * segments).max(1) as u16;

    let block = CommandBlock {
        buffer_rows,
        gwrite_bytes: (w.k_elems as u32) * elem_bytes,
        gwrites_per_row,
        gacts,
        comps_per_gact,
        readres_bytes: (w.out_channels as u32) * elem_bytes,
        oc_splits: w.out_channels.min(cfg.banks) as u16,
        // All row groups stream the same resident filter rows, so they
        // share row ids: consecutive blocks on a channel hit the open row.
        row_base: 0,
    };

    let groups = w.rows.div_ceil(buffer_rows as usize);
    let mut blocks = vec![block; groups];
    // Trim the last group to the remaining rows.
    let rem = w.rows % buffer_rows as usize;
    if rem != 0 {
        if let Some(last) = blocks.last_mut() {
            last.buffer_rows = rem as u8;
        }
    }
    blocks
}

/// Compiles a workload into a typed ISA program: generate the command
/// blocks, schedule them over `channels` channels, and lift the scheduled
/// traces into `pimflow-isa` form. This is the artifact backends carry —
/// interpreting it under [`NewtonInterpreter`] reproduces the legacy
/// trace timing bit-exactly (lift and lower are exact inverses).
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn generate_program(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
) -> IsaProgram {
    let blocks = generate_blocks(w, cfg);
    let traces = schedule(&blocks, channels, granularity, cfg, &RunOptions::new());
    lift_traces(&traces)
}

/// Like [`generate_program`], but lowered for a fusion-group member: the
/// bus crossings `role` elides (the input staging of a fused consumer, the
/// result drain of a fused producer) become `BANKFEED`s, so intermediate
/// activations stay resident near the banks. `FusedRole::Standalone`
/// produces exactly [`generate_program`]'s output.
pub fn generate_fused_program(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
    role: FusedRole,
) -> IsaProgram {
    role.rewrite_program(&generate_program(w, cfg, channels, granularity))
}

/// Compiles a whole fusion group into one overlap-linked program: each
/// member lowers under its [`FusedRole`] (as [`generate_fused_program`]),
/// members are concatenated with [`IsaProgram::append_overlapped`] — the
/// relaxed separator that splits no epochs — and every member's
/// `ROWACT` rows are offset past its predecessors' so the continuous
/// per-channel walk sees no spurious cross-member row-buffer hits.
///
/// Interpreting the result runs each channel's member streams back to
/// back through one carried engine state, so a consumer's staging tail
/// hides under the producer's MAC/drain tail on busier channels. Unlike
/// the crossbar's linear cost model this is *not* structurally never
/// worse than the member sum (a continuous run can cross refresh windows
/// the per-member reset avoids), which is why the compiler prices fused
/// groups as the min of both compositions.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn generate_group_program_overlapped(
    members: &[(PimWorkload, FusedRole)],
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
) -> IsaProgram {
    let mut linked: Option<IsaProgram> = None;
    let mut row_base = 0u32;
    for (w, role) in members {
        let mut p = generate_fused_program(w, cfg, channels, granularity, *role);
        p.offset_rows(row_base);
        row_base = p.max_row().map(|r| r.saturating_add(1)).unwrap_or(row_base);
        match &mut linked {
            Some(chain) => chain.append_overlapped(&p),
            None => linked = Some(p),
        }
    }
    linked.unwrap_or_else(|| IsaProgram::new(channels.max(1)))
}

/// Compiles and executes a fusion group as one overlap-linked program
/// (see [`generate_group_program_overlapped`]), returning the chain's
/// wall-clock microseconds on the Newton model.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn execute_group_overlapped_us(
    members: &[(PimWorkload, FusedRole)],
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
) -> f64 {
    let program = generate_group_program_overlapped(members, cfg, channels, granularity);
    let stats = NewtonInterpreter::new(cfg).run(&program, RunOptions::new());
    cfg.cycles_to_ns(stats.cycles) * 1e-3
}

/// Result of executing a PIM workload on the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimExecution {
    /// Wall-clock time in microseconds (slowest channel).
    pub time_us: f64,
    /// Merged channel statistics.
    pub stats: ChannelStats,
    /// Energy in microjoules.
    pub energy_uj: f64,
}

/// Compiles and executes a workload on `channels` PIM channels, returning
/// timing and energy.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn execute_workload(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
) -> PimExecution {
    execute_workload_per_channel(w, cfg, channels, granularity).0
}

/// Compiles and executes a workload lowered for fusion-group role `role`
/// (see [`generate_fused_program`]). `Standalone` is [`execute_workload`].
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn execute_workload_fused(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
    role: FusedRole,
) -> PimExecution {
    execute_workload_fused_per_channel(w, cfg, channels, granularity, role).0
}

/// Like [`execute_workload`] but also returns each channel's own statistics
/// (index = channel), for per-channel utilization accounting.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn execute_workload_per_channel(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
) -> (PimExecution, Vec<ChannelStats>) {
    execute_workload_fused_per_channel(w, cfg, channels, granularity, FusedRole::Standalone)
}

/// Role-aware variant of [`execute_workload_per_channel`].
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn execute_workload_fused_per_channel(
    w: &PimWorkload,
    cfg: &PimConfig,
    channels: usize,
    granularity: ScheduleGranularity,
    role: FusedRole,
) -> (PimExecution, Vec<ChannelStats>) {
    let program = generate_fused_program(w, cfg, channels, granularity, role);
    let mut per_channel = Vec::with_capacity(channels);
    let mut collect = |_: usize, s: &ChannelStats| per_channel.push(*s);
    let stats =
        NewtonInterpreter::new(cfg).run(&program, RunOptions::new().on_channel(&mut collect));
    let energy_uj = pim_energy_nj(&stats, cfg, &PimEnergyParams::default(), channels) * 1e-3;
    let exec = PimExecution {
        time_us: cfg.cycles_to_ns(stats.cycles) * 1e-3,
        stats,
        energy_uj,
    };
    (exec, per_channel)
}

/// Convenience: PIM execution time of graph node `id` in microseconds.
pub fn pim_node_time_us(graph: &Graph, id: NodeId, cfg: &PimConfig, channels: usize) -> f64 {
    let w = PimWorkload::from_node(graph, id);
    execute_workload(&w, cfg, channels, ScheduleGranularity::Comp).time_us
}

/// Convenience: GPU execution time of graph node `id` (standalone launch) in
/// microseconds with `channels` memory channels.
pub fn gpu_node_time_us(graph: &Graph, id: NodeId, cfg: &GpuConfig, channels: usize) -> f64 {
    let p = pimflow_gpusim::kernel_for_node(graph, id);
    pimflow_gpusim::kernel_time_with_launch_us(&p, cfg, channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::Hw;

    fn pointwise(rows_side: usize, ic: usize, oc: usize) -> PimWorkload {
        PimWorkload::from_conv(
            &Shape::nhwc(1, rows_side, rows_side, ic),
            &Conv2dAttrs::pointwise(oc),
        )
    }

    #[test]
    fn block_generation_covers_all_rows() {
        let w = pointwise(14, 64, 128);
        let cfg = PimConfig::default();
        let blocks = generate_blocks(&w, &cfg);
        let rows: usize = blocks.iter().map(|b| b.buffer_rows as usize).sum();
        assert_eq!(rows, 14 * 14);
    }

    #[test]
    fn comp_count_covers_all_macs() {
        // Every MAC must be backed by COMP capacity: comps * 256 >= macs,
        // with padding waste bounded by the column-I/O rounding.
        let w = pointwise(14, 64, 128);
        let cfg = PimConfig::default();
        let blocks = generate_blocks(&w, &cfg);
        let comps: u64 = blocks.iter().map(|b| b.total_comps()).sum();
        let capacity = comps * cfg.macs_per_comp() as u64;
        assert!(
            capacity >= w.macs(),
            "capacity {capacity} < macs {}",
            w.macs()
        );
        assert!(capacity < w.macs() * 4, "excessive padding waste");
    }

    #[test]
    fn fc_layer_is_an_order_of_magnitude_faster_on_pim_than_gpu() {
        // The headline Newton result (§2.1): memory-bound FC layers gain
        // ~10-20x on PIM. VGG-16's fc6: 25088 -> 4096, batch 1, 16 PIM
        // channels vs a 32-channel GPU.
        let w = PimWorkload::from_dense(1, 25088, 4096);
        let pim = execute_workload(&w, &PimConfig::default(), 16, ScheduleGranularity::Comp);
        let gpu_cfg = GpuConfig::rtx2060_like();
        let p = pimflow_gpusim::KernelProfile::matvec(4096, 25088, 1);
        let gpu_us = pimflow_gpusim::kernel_time_with_launch_us(&p, &gpu_cfg, 32);
        let speedup = gpu_us / pim.time_us;
        assert!(
            (5.0..40.0).contains(&speedup),
            "PIM {:.1}us vs GPU {gpu_us:.1}us (speedup {speedup:.1})",
            pim.time_us
        );
    }

    #[test]
    fn newton_pp_beats_newton_p() {
        // The PIM-command optimizations must help (Fig. 14: ~22% combined).
        let w = pointwise(28, 96, 576);
        let npp = execute_workload(
            &w,
            &PimConfig::newton_plus_plus(),
            16,
            ScheduleGranularity::Comp,
        );
        let np = execute_workload(&w, &PimConfig::newton_plus(), 16, ScheduleGranularity::Comp);
        assert!(
            npp.time_us < np.time_us,
            "Newton++ {:.1}us vs Newton+ {:.1}us",
            npp.time_us,
            np.time_us
        );
    }

    #[test]
    fn strided_conv_pays_more_gwrites_without_extension() {
        let attrs = Conv2dAttrs {
            out_channels: 64,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let w = PimWorkload::from_conv(&Shape::nhwc(1, 28, 28, 64), &attrs);
        let mut no_ext = PimConfig::newton_plus_plus();
        no_ext.strided_gwrite = false;
        let blocks_ext = generate_blocks(&w, &PimConfig::newton_plus_plus());
        let blocks_no = generate_blocks(&w, &no_ext);
        assert_eq!(blocks_ext[0].gwrites_per_row, 1);
        assert_eq!(blocks_no[0].gwrites_per_row, 9);
    }

    #[test]
    fn pim_time_scales_down_with_channels() {
        let w = pointwise(28, 96, 576);
        let cfg = PimConfig::default();
        let t4 = execute_workload(&w, &cfg, 4, ScheduleGranularity::Comp).time_us;
        let t16 = execute_workload(&w, &cfg, 16, ScheduleGranularity::Comp).time_us;
        assert!(t16 < t4 / 2.0, "4ch {t4:.1}us vs 16ch {t16:.1}us");
    }

    #[test]
    fn big_dense_conv_favors_gpu() {
        // A VGG-style 3x3x512 conv: the GPU should win clearly (§3 obs. 2 /
        // Fig. 9: ResNet/VGG conv layers gain less from PIM).
        let attrs = Conv2dAttrs {
            out_channels: 512,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let shape = Shape::nhwc(1, 28, 28, 512);
        let w = PimWorkload::from_conv(&shape, &attrs);
        let pim = execute_workload(&w, &PimConfig::default(), 16, ScheduleGranularity::Comp);

        let mut b = pimflow_ir::GraphBuilder::new("t");
        let x = b.input(shape);
        let y = b.conv(x, 512, 3, 1, 1);
        let g = b.finish(y);
        let id = g
            .node_ids()
            .find(|&i| matches!(g.node(i).op, Op::Conv2d(_)))
            .unwrap();
        let gpu = gpu_node_time_us(&g, id, &GpuConfig::rtx2060_like(), 32);
        assert!(
            gpu < pim.time_us,
            "GPU {gpu:.1}us should beat PIM {:.1}us on dense conv",
            pim.time_us
        );
    }

    #[test]
    fn pointwise_conv_is_contested() {
        // Mid-network 1x1 conv: PIM and GPU within ~3x of each other
        // (the MD-DP split opportunity, §3 obs. 2).
        let shape = Shape::nhwc(1, 14, 14, 256);
        let w = PimWorkload::from_conv(&shape, &Conv2dAttrs::pointwise(1024));
        let pim = execute_workload(&w, &PimConfig::default(), 16, ScheduleGranularity::Comp);

        let mut b = pimflow_ir::GraphBuilder::new("t");
        let x = b.input(shape);
        let y = b.conv1x1(x, 1024);
        let g = b.finish(y);
        let id = g
            .node_ids()
            .find(|&i| matches!(g.node(i).op, Op::Conv2d(_)))
            .unwrap();
        let gpu = gpu_node_time_us(&g, id, &GpuConfig::rtx2060_like(), 16);
        let ratio = gpu / pim.time_us;
        assert!(
            (1.0 / 3.5..3.5).contains(&ratio),
            "GPU {gpu:.1}us vs PIM {:.1}us (ratio {ratio:.2})",
            pim.time_us
        );
    }

    #[test]
    fn overlapped_group_program_is_one_epoch_with_disjoint_rows() {
        let cfg = PimConfig::newton_plus_plus();
        let members = [
            (pointwise(14, 64, 96), FusedRole::Head),
            (pointwise(14, 96, 64), FusedRole::Tail),
        ];
        let p = generate_group_program_overlapped(&members, &cfg, 4, ScheduleGranularity::Comp);
        // Relaxed separators only: the whole group interprets as one
        // continuous epoch per channel.
        assert_eq!(p.epochs().unwrap().len(), 1);
        // The tail's activations were offset past the head's, so the
        // carried row state never aliases across members.
        let head = generate_fused_program(
            &members[0].0,
            &cfg,
            4,
            ScheduleGranularity::Comp,
            FusedRole::Head,
        );
        let head_max = head.max_row().unwrap();
        assert!(p.max_row().unwrap() > head_max);
        let t = execute_group_overlapped_us(&members, &cfg, 4, ScheduleGranularity::Comp);
        assert!(t > 0.0);
        assert_eq!(
            t.to_bits(),
            execute_group_overlapped_us(&members, &cfg, 4, ScheduleGranularity::Comp).to_bits(),
            "bitwise reproducible"
        );
    }

    #[test]
    fn empty_workload_generates_nothing() {
        let w = PimWorkload {
            rows: 0,
            k_elems: 16,
            out_channels: 16,
            strided: false,
            segments: 1,
        };
        assert!(generate_blocks(&w, &PimConfig::default()).is_empty());
    }
}
