//! Execution mode and task size search (§4.2.2, Algorithm 1).
//!
//! For every PIM-candidate node the search profiles MD-DP splits at 10%
//! ratio intervals (11 samples including the 0/100 full-offload endpoints),
//! measures every pipelining candidate subgraph at each chain length, and
//! combines the per-node/per-chain costs with dynamic programming:
//!
//! ```text
//! T[i] = min( C[i][1] + T[i+1],  C[i][j] + T[i+j] )   (lines 23–28)
//! ```
//!
//! The paper performs these measurements on the simulated hardware; we do
//! the same — PIM costs come from command-trace execution on the DRAM-PIM
//! simulator, GPU costs from the analytical GPU model — and record them in a
//! serializable profile log, mirroring the artifact's metadata log file.
//!
//! The two measurement loops — per-node MD-DP profiling and per-chain
//! pipeline costing — are embarrassingly parallel and run on a
//! [`pimflow_pool::WorkerPool`] (the [`Search`] builder's
//! [`pool`](Search::pool) knob; [`search`] sizes the pool from
//! `PIMFLOW_JOBS`). Every per-item cost is a pure function of the
//! graph and config, and results are merged in input order, so a pool of
//! any width returns a plan byte-identical to the sequential search.
//!
//! ## Cost caching
//!
//! PIM cost queries flow through a two-tier cache: each worker resolves
//! lookups against its private, unsynchronized [`MemoShard`] backed by an
//! immutable snapshot of a shared [`CostCache`] table, and shards merge
//! back at the end of each phase — the same deterministic points where the
//! per-search memo shards have always merged. By default every search uses
//! a private scratch cache (exactly the historical behaviour); pass a
//! long-lived cache via [`Search::cache`] to reuse PIM simulations across
//! `run` calls — repeated-block models, batch sweeps, and the serving
//! precompile path then skip most of their simulator work. Cached and
//! uncached searches return byte-identical plans at any pool width, because
//! the cache memoizes a pure function ([`crate::costcache::pim_cost_us`]).
//!
//! ## Fault awareness
//!
//! The search honors the [`ChannelMask`] carried by
//! [`EngineConfig::pim_channel_mask`]: PIM costs are simulated over the
//! surviving channels only, so a plan computed under a reduced mask already
//! prices the degraded hardware. When a channel dies *after* a plan was
//! computed, [`ExecutionPlan::repair`] re-prices the existing decisions
//! under the new mask — migrating work back to the GPU where the shrunken
//! PIM capacity no longer pays — without rerunning the full Algorithm-1
//! grid search.

use crate::codegen::{execute_group_overlapped_us, PimWorkload};
use crate::costcache::{
    crossbar_cost_us, pim_cost_us, CostCache, CostTable, MemoShard, WorkloadKey,
};
use crate::engine::{ChannelMask, EngineConfig};
use crate::error::Result;
use crate::passes::fusion::{find_fusion_groups, interior_split_height, FusionGroup};
use crate::passes::pipeline::{find_chains, Chain};
use crate::placement::Placement;
use pimflow_gpusim::{kernel_time_with_launch_us, KernelProfile};
use pimflow_ir::{analysis, Graph, NodeId, Op};
use pimflow_isa::{BackendKind, CrossbarConfig, FusedRole};
use pimflow_json::{json_struct, FromJson, Json, JsonError, ToJson};
use pimflow_pool::WorkerPool;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Which execution modes the search may choose from (varies per offloading
/// mechanism, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Ratio step in percent for MD-DP samples (10 in the paper). When
    /// `offload_only` is set, only 0 and 100 are sampled.
    pub ratio_step: u32,
    /// Restrict MD-DP to full offload / full GPU (Newton+/Newton++ and
    /// PIMFlow-pl behaviour).
    pub offload_only: bool,
    /// Whether pipelining candidates are considered.
    pub allow_pipeline: bool,
    /// Pipeline stage count (2 in the paper; Fig. 15 sweeps it).
    pub pipeline_stages: usize,
    /// Whether fusion-group candidates are considered: producer→consumer
    /// runs of PIM-eligible layers priced as one fused region whose
    /// intermediate activations never cross the channel bus. The fused
    /// options only extend the DP's candidate set, so a search with fusion
    /// enabled never predicts a worse time than one without.
    pub allow_fusion: bool,
    /// Whether fused chains may additionally be priced overlap-linked in
    /// one epoch (relaxed `OBARRIER` separators, carried engine state).
    /// The committed chain time is `min(back_to_back, overlapped)`, so
    /// disabling this only shrinks the fused candidate space — the knob
    /// exists so benchmarks can measure what overlap buys.
    /// [`ExecutionPlan::repair`] always re-prices with overlap on,
    /// matching the default.
    pub overlap_epochs: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            ratio_step: 10,
            offload_only: false,
            allow_pipeline: true,
            pipeline_stages: 2,
            allow_fusion: true,
            overlap_epochs: true,
        }
    }
}

/// Per-node decision chosen by the search.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep the node on the GPU.
    Gpu,
    /// MD-DP split: `gpu_percent`% of the rows on GPU (0 = full offload).
    Split {
        /// Percent of work on the GPU.
        gpu_percent: u32,
        /// PIM hardware model the offloaded slice is priced (and would
        /// execute) on. Always [`BackendKind::Newton`] unless the search
        /// ran with a crossbar in its
        /// [`PimBackendSet`](crate::engine::PimBackendSet).
        backend: BackendKind,
    },
    /// Pipeline the chain starting here over `node_names` with this many
    /// stages.
    Pipeline {
        /// Names of the chain nodes, in order.
        node_names: Vec<String>,
        /// Stage count.
        stages: usize,
    },
    /// Fuse the group starting here: every member runs on the PIM side and
    /// inter-member activations stay near the banks (the producer's drain
    /// and the consumer's input staging collapse into `BANKFEED`s).
    Fused {
        /// Names of the group nodes — heavy layers and the element-wise
        /// riders between them — in order.
        node_names: Vec<String>,
        /// PIM hardware model the group is priced (and would execute) on.
        backend: BackendKind,
        /// Interior MD-DP ratio: percent of the rows of the *whole fused
        /// region* that run as a plain GPU copy alongside the fused PIM
        /// rows. `0` (the only value for non-interior-splittable groups)
        /// means full offload — the classic fused lowering.
        gpu_percent: u32,
    },
}

/// Profiled costs of one PIM-candidate layer (one artifact
/// `PIMFlow/layerwise` record).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Node name.
    pub name: String,
    /// `(gpu_percent, estimated microseconds)` samples.
    pub samples: Vec<(u32, f64)>,
    /// Best sample.
    pub best_ratio: u32,
    /// Best time in microseconds.
    pub best_us: f64,
    /// Full-GPU time in microseconds.
    pub gpu_us: f64,
}

/// The search result: per-node decisions plus the profile log.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Model name the plan was computed for.
    pub model: String,
    /// Decision per node name (nodes not listed stay on GPU).
    pub decisions: Vec<(String, Decision)>,
    /// Layer profiles recorded during the search.
    pub profiles: Vec<LayerProfile>,
    /// Predicted end-to-end time of the plan, microseconds.
    pub predicted_us: f64,
    /// Predicted total time attributed to PIM-candidate CONV layers under
    /// the chosen decisions (the Fig. 9 per-layer metric; FC excluded).
    pub conv_layer_us: f64,
}

// `Decision` carries payloads, so the derive-like macros don't apply; the
// impls below keep the serde externally-tagged shape.
impl ToJson for Decision {
    fn to_json(&self) -> Json {
        match self {
            Decision::Gpu => Json::Str("Gpu".into()),
            Decision::Split {
                gpu_percent,
                backend,
            } => {
                // Legacy plans carry no backend field; emitting it only for
                // non-Newton splits keeps Newton-only plan JSON byte-stable.
                let mut fields = vec![("gpu_percent", gpu_percent.to_json())];
                if *backend != BackendKind::Newton {
                    fields.push(("backend", Json::Str(backend.name().into())));
                }
                Json::obj(vec![("Split", Json::obj(fields))])
            }
            Decision::Pipeline { node_names, stages } => Json::obj(vec![(
                "Pipeline",
                Json::obj(vec![
                    ("node_names", node_names.to_json()),
                    ("stages", stages.to_json()),
                ]),
            )]),
            Decision::Fused {
                node_names,
                backend,
                gpu_percent,
            } => {
                // Same backward-compatible shape as `Split`: the backend
                // and interior-ratio fields appear only when they differ
                // from the legacy values (Newton, full offload), so older
                // plan JSON stays byte-stable against older readers.
                let mut fields = vec![("node_names", node_names.to_json())];
                if *backend != BackendKind::Newton {
                    fields.push(("backend", Json::Str(backend.name().into())));
                }
                if *gpu_percent != 0 {
                    fields.push(("gpu_percent", gpu_percent.to_json()));
                }
                Json::obj(vec![("Fused", Json::obj(fields))])
            }
        }
    }
}

impl FromJson for Decision {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) if s == "Gpu" => Ok(Decision::Gpu),
            Json::Obj(fields) if fields.len() == 1 => {
                let (tag, payload) = &fields[0];
                match tag.as_str() {
                    "Split" => {
                        let backend = match payload.field("backend") {
                            Ok(j) => {
                                let name = String::from_json(j)?;
                                BackendKind::from_name(&name).ok_or_else(|| {
                                    JsonError::msg(format!("unknown PIM backend `{name}`"))
                                })?
                            }
                            Err(_) => BackendKind::Newton,
                        };
                        Ok(Decision::Split {
                            gpu_percent: u32::from_json(payload.field("gpu_percent")?)?,
                            backend,
                        })
                    }
                    "Pipeline" => Ok(Decision::Pipeline {
                        node_names: Vec::from_json(payload.field("node_names")?)?,
                        stages: usize::from_json(payload.field("stages")?)?,
                    }),
                    "Fused" => {
                        let backend = match payload.field("backend") {
                            Ok(j) => {
                                let name = String::from_json(j)?;
                                BackendKind::from_name(&name).ok_or_else(|| {
                                    JsonError::msg(format!("unknown PIM backend `{name}`"))
                                })?
                            }
                            Err(_) => BackendKind::Newton,
                        };
                        let gpu_percent = match payload.field("gpu_percent") {
                            Ok(j) => u32::from_json(j)?,
                            Err(_) => 0,
                        };
                        Ok(Decision::Fused {
                            node_names: Vec::from_json(payload.field("node_names")?)?,
                            backend,
                            gpu_percent,
                        })
                    }
                    other => Err(JsonError::msg(format!(
                        "unknown Decision variant `{other}`"
                    ))),
                }
            }
            other => Err(JsonError::msg(format!(
                "expected Decision as string or single-field object, got {other}"
            ))),
        }
    }
}

json_struct!(LayerProfile {
    name,
    samples,
    best_ratio,
    best_us,
    gpu_us
});
json_struct!(ExecutionPlan {
    model,
    decisions,
    profiles,
    predicted_us,
    conv_layer_us
});

impl ExecutionPlan {
    /// Decision for a node name, defaulting to GPU.
    pub fn decision(&self, name: &str) -> Decision {
        self.decisions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.clone())
            .unwrap_or(Decision::Gpu)
    }

    /// Distribution of chosen MD-DP GPU ratios over PIM-candidate layers
    /// (Table 2): `(ratio, share)` pairs over the 10% grid 0,10,...,100,
    /// extended with any off-grid ratio a non-divisor `ratio_step` chose.
    ///
    /// Candidates the search left on the GPU carry an explicit
    /// [`Decision::Gpu`] entry and count toward the 100% bucket, so the
    /// shares sum to 1 over *all* PIM-candidate layers (pipelined chains
    /// excluded — they have no single ratio).
    pub fn ratio_distribution(&self) -> Vec<(u32, f64)> {
        let mut counts: BTreeMap<u32, usize> = (0..=100).step_by(10).map(|r| (r, 0)).collect();
        let mut total = 0usize;
        for (_, d) in &self.decisions {
            let r = match d {
                Decision::Gpu => 100,
                Decision::Split { gpu_percent, .. } => *gpu_percent,
                // Pipelined chains and fused groups have no single ratio.
                Decision::Pipeline { .. } | Decision::Fused { .. } => continue,
            };
            *counts.entry(r).or_insert(0) += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(r, c)| {
                (
                    r,
                    if total == 0 {
                        0.0
                    } else {
                        c as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// Cheap replan after channel faults: re-prices this plan's decisions
    /// under `mask` and migrates work back to the GPU wherever the
    /// shrunken PIM capacity no longer pays, without rerunning the full
    /// Algorithm-1 grid search.
    ///
    /// Kept decisions keep their ratios/stages — only the keep-or-drop
    /// choice is revisited — so a repair is one sequential cost-model walk
    /// (deterministic regardless of `PIMFLOW_JOBS`). When the mask leaves
    /// the effective channel count unchanged the plan is returned as-is.
    /// The repaired plan's `predicted_us` is never below the original's,
    /// and never assigns work to a masked-out channel; `profiles` are
    /// carried over unchanged (they describe the healthy hardware).
    ///
    /// Compare against `Search::new(graph, cfg).mask(mask).run()` to
    /// measure how much plan quality the shortcut gives up.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Graph`] when `graph` has no topological
    /// order, or [`crate::Error::NotApplicable`] when the plan references
    /// nodes or chains `graph` does not have.
    pub fn repair(
        &self,
        graph: &Graph,
        cfg: &EngineConfig,
        mask: ChannelMask,
    ) -> Result<ExecutionPlan> {
        self.repair_with_cache(graph, cfg, mask, None)
    }

    /// [`repair`](ExecutionPlan::repair) backed by a shared [`CostCache`]:
    /// workloads already priced under the repair mask (by an earlier search
    /// or repair) are reused, and this repair's fresh simulations are
    /// merged back. The serving runtime repairs every cached plan through
    /// one cache, so plans for different batch sizes share the re-pricing
    /// work. Passing `None` uses a private scratch memo; the repaired plan
    /// is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Same contract as [`repair`](ExecutionPlan::repair).
    pub fn repair_with_cache(
        &self,
        graph: &Graph,
        cfg: &EngineConfig,
        mask: ChannelMask,
        cache: Option<&CostCache>,
    ) -> Result<ExecutionPlan> {
        let masked = cfg.with_mask(mask);
        if masked.effective_pim_channels() == cfg.effective_pim_channels() {
            return Ok(self.clone());
        }
        let order = graph.topo_order()?;
        let conv_like = fusion_map(graph, &order);
        let pim_available = masked.effective_pim_channels() > 0;
        let mut profiler = match cache {
            Some(c) => Profiler::with_base(graph, &masked, c.snapshot()),
            None => Profiler::new(graph, &masked),
        };
        let decided: HashMap<&str, &Decision> = self
            .decisions
            .iter()
            .map(|(n, d)| (n.as_str(), d))
            .collect();
        for name in decided.keys() {
            if graph.find_node(name).is_none() {
                return Err(crate::Error::NotApplicable(format!(
                    "plan references unknown node `{name}`"
                )));
            }
        }

        let mut decisions = Vec::new();
        let mut predicted_us = 0.0f64;
        let mut conv_layer_us = 0.0f64;
        let mut i = 0usize;
        while i < order.len() {
            let id = order[i];
            let name = graph.node(id).name.clone();
            let fused = *conv_like.get(&id).unwrap_or(&false);
            let candidate = graph.is_pim_candidate(id);
            let solo = solo_gpu_cost(&mut profiler, id, fused);
            match decided.get(name.as_str()) {
                Some(Decision::Pipeline { node_names, stages }) => {
                    // The search only records contiguous chains, anchored
                    // at their first node in topo order.
                    let members: Vec<NodeId> = order
                        .iter()
                        .skip(i)
                        .take(node_names.len())
                        .copied()
                        .collect();
                    let matches = members.len() == node_names.len()
                        && members
                            .iter()
                            .zip(node_names)
                            .all(|(&nid, n)| &graph.node(nid).name == n);
                    if !matches {
                        return Err(crate::Error::NotApplicable(format!(
                            "plan references unknown chain at `{name}`"
                        )));
                    }
                    let chain = find_chains(graph)
                        .into_iter()
                        .find(|c| c.nodes == members)
                        .ok_or_else(|| {
                            crate::Error::NotApplicable(format!(
                                "plan references unknown chain at `{name}`"
                            ))
                        })?;
                    let gpu_cost: f64 = chain
                        .nodes
                        .iter()
                        .map(|&nid| {
                            let f = *conv_like.get(&nid).unwrap_or(&false);
                            solo_gpu_cost(&mut profiler, nid, f)
                        })
                        .sum();
                    let chain_cost = if pim_available {
                        profiler.pipeline_cost(&chain, (*stages).max(2))
                    } else {
                        f64::INFINITY
                    };
                    if chain_cost < gpu_cost {
                        let rider_cost: f64 = chain
                            .nodes
                            .iter()
                            .filter(|nid| {
                                !(matches!(graph.node(**nid).op, Op::Conv2d(_))
                                    && graph.is_pim_candidate(**nid))
                            })
                            .map(|&nid| {
                                let f = *conv_like.get(&nid).unwrap_or(&false);
                                solo_gpu_cost(&mut profiler, nid, f)
                            })
                            .sum();
                        predicted_us += chain_cost;
                        conv_layer_us += (chain_cost - rider_cost).max(0.0);
                        decisions.push((
                            name,
                            Decision::Pipeline {
                                node_names: node_names.clone(),
                                stages: *stages,
                            },
                        ));
                    } else {
                        // Dissolve the chain: every member falls back to
                        // its GPU-resident cost.
                        predicted_us += gpu_cost;
                        for &nid in &chain.nodes {
                            if graph.is_pim_candidate(nid) {
                                let f = *conv_like.get(&nid).unwrap_or(&false);
                                let c = solo_gpu_cost(&mut profiler, nid, f);
                                if matches!(graph.node(nid).op, Op::Conv2d(_)) {
                                    conv_layer_us += c;
                                }
                                decisions.push((graph.node(nid).name.clone(), Decision::Gpu));
                            }
                        }
                    }
                    i += chain.nodes.len();
                    continue;
                }
                Some(Decision::Fused {
                    node_names,
                    backend,
                    gpu_percent,
                }) => {
                    // Fused groups are contiguous and anchored at their
                    // first node, like chains.
                    let members: Vec<NodeId> = order
                        .iter()
                        .skip(i)
                        .take(node_names.len())
                        .copied()
                        .collect();
                    let matches = members.len() == node_names.len()
                        && members
                            .iter()
                            .zip(node_names)
                            .all(|(&nid, n)| &graph.node(nid).name == n);
                    if !matches {
                        return Err(crate::Error::NotApplicable(format!(
                            "plan references unknown fusion group at `{name}`"
                        )));
                    }
                    let group = find_fusion_groups(graph)
                        .into_iter()
                        .find(|g| g.nodes == members)
                        .ok_or_else(|| {
                            crate::Error::NotApplicable(format!(
                                "plan references unknown fusion group at `{name}`"
                            ))
                        })?;
                    let gpu_cost: f64 = group
                        .nodes
                        .iter()
                        .map(|&nid| {
                            let f = *conv_like.get(&nid).unwrap_or(&false);
                            solo_gpu_cost(&mut profiler, nid, f)
                        })
                        .sum();
                    let fused_cost = if pim_available {
                        // Re-price on the backend and interior ratio the
                        // plan chose, as with splits: repair migrates
                        // work, it does not re-run the search.
                        profiler
                            .fused_group_cost_at(&group, *gpu_percent, Some(*backend))
                            .0
                    } else {
                        f64::INFINITY
                    };
                    if fused_cost < gpu_cost {
                        let rider_cost: f64 = group
                            .nodes
                            .iter()
                            .filter(|nid| {
                                !(matches!(graph.node(**nid).op, Op::Conv2d(_))
                                    && graph.is_pim_candidate(**nid))
                            })
                            .map(|&nid| {
                                let f = *conv_like.get(&nid).unwrap_or(&false);
                                solo_gpu_cost(&mut profiler, nid, f)
                            })
                            .sum();
                        predicted_us += fused_cost;
                        conv_layer_us += (fused_cost - rider_cost).max(0.0);
                        decisions.push((
                            name,
                            Decision::Fused {
                                node_names: node_names.clone(),
                                backend: *backend,
                                gpu_percent: *gpu_percent,
                            },
                        ));
                    } else {
                        // Dissolve the group: every member falls back to
                        // its GPU-resident cost.
                        predicted_us += gpu_cost;
                        for &nid in &group.nodes {
                            if graph.is_pim_candidate(nid) {
                                let f = *conv_like.get(&nid).unwrap_or(&false);
                                let c = solo_gpu_cost(&mut profiler, nid, f);
                                if matches!(graph.node(nid).op, Op::Conv2d(_)) {
                                    conv_layer_us += c;
                                }
                                decisions.push((graph.node(nid).name.clone(), Decision::Gpu));
                            }
                        }
                    }
                    i += group.nodes.len();
                    continue;
                }
                Some(Decision::Split {
                    gpu_percent,
                    backend,
                }) => {
                    let split_cost = if pim_available && candidate {
                        // Re-price on the backend the plan chose: repair
                        // migrates work, it does not re-run the backend
                        // search.
                        profiler
                            .mddp_cost_pinned(id, *gpu_percent, Some(*backend))
                            .0
                    } else {
                        f64::INFINITY
                    };
                    let (cost, decision) = if split_cost < solo {
                        (
                            split_cost,
                            Decision::Split {
                                gpu_percent: *gpu_percent,
                                backend: *backend,
                            },
                        )
                    } else {
                        (solo, Decision::Gpu)
                    };
                    predicted_us += cost;
                    if matches!(graph.node(id).op, Op::Conv2d(_)) && candidate {
                        conv_layer_us += cost;
                    }
                    decisions.push((name, decision));
                }
                Some(Decision::Gpu) | None => {
                    predicted_us += solo;
                    if matches!(graph.node(id).op, Op::Conv2d(_)) && candidate {
                        conv_layer_us += solo;
                    }
                    if decided.contains_key(name.as_str()) {
                        decisions.push((name, Decision::Gpu));
                    }
                }
            }
            i += 1;
        }

        if let Some(c) = cache {
            c.merge([profiler.into_shard()]);
        }
        Ok(ExecutionPlan {
            model: self.model.clone(),
            decisions,
            profiles: self.profiles.clone(),
            predicted_us,
            conv_layer_us,
        })
    }
}

/// Profiling context (memoizes PIM simulations through the two-tier cost
/// cache).
///
/// Under the worker pool each worker owns one `Profiler`, so workers never
/// serialize on a shared map: lookups resolve against the worker's private
/// [`MemoShard`], then the immutable base snapshot, and only misses run the
/// simulator. The cache memoizes values of a pure function, so shard
/// boundaries and merge order cannot change any cost — only how often the
/// simulator reruns.
struct Profiler<'g> {
    graph: &'g Graph,
    cfg: EngineConfig,
    /// Channels actually available under the config's mask (min 1 so the
    /// cost model stays total; callers gate offload on the real count).
    pim_channels_eff: usize,
    /// Key components shared by every lookup this profiler makes,
    /// precomputed so the hot path builds keys without re-hashing the
    /// config.
    mask_bits: u64,
    pim_fingerprint: u64,
    /// Crossbar model (copied out of the config's backend set so lookups
    /// need no re-match), with its fingerprint; `None` under `NewtonOnly`.
    xbar: Option<CrossbarConfig>,
    xbar_fingerprint: u64,
    /// Whether the backend set admits Newton placements.
    newton_allowed: bool,
    /// Whether fused chains may be priced overlap-linked (see
    /// [`SearchOptions::overlap_epochs`]). Defaults on; the group-search
    /// phase threads the option through.
    overlap_epochs: bool,
    /// Immutable snapshot of the shared cross-search table.
    base: Arc<CostTable>,
    /// Private shard: keys this profiler had to price itself.
    shard: MemoShard,
}

/// XOR-salt folded into the group fingerprint when overlap pricing is
/// disabled, so back-to-back-only chain times never alias overlap-priced
/// entries in a cost cache shared across option sets.
const OVERLAP_OFF_SALT: u64 = 0x4F56_4C50_4F46_465F; // "OVLPOFF_"

impl<'g> Profiler<'g> {
    fn new(graph: &'g Graph, cfg: &EngineConfig) -> Self {
        Profiler::with_base(graph, cfg, Arc::default())
    }

    /// A profiler backed by a snapshot of the shared cost table (taken at
    /// the start of the current search phase).
    fn with_base(graph: &'g Graph, cfg: &EngineConfig, base: Arc<CostTable>) -> Self {
        let xbar = cfg.pim_backends.crossbar().copied();
        Profiler {
            graph,
            pim_channels_eff: cfg.effective_pim_channels().max(1),
            mask_bits: cfg.pim_channel_mask.bits(),
            pim_fingerprint: cfg.pim.fingerprint(),
            xbar,
            xbar_fingerprint: xbar.map(|x| x.fingerprint()).unwrap_or(0),
            newton_allowed: cfg.pim_backends.allows_newton(),
            overlap_epochs: true,
            cfg: cfg.clone(),
            base,
            shard: MemoShard::new(),
        }
    }

    /// Sets whether fused chains may be priced overlap-linked.
    fn overlap(mut self, on: bool) -> Self {
        self.overlap_epochs = on;
        self
    }

    /// Consumes the profiler, returning its memo shard for merging.
    fn into_shard(self) -> MemoShard {
        self.shard
    }

    /// PIM time of `frac` of node `id`'s rows, microseconds, over the
    /// channels the mask reports available.
    fn pim_time(&mut self, id: NodeId, frac: f64) -> f64 {
        self.pim_time_role(id, frac, FusedRole::Standalone)
    }

    /// [`Profiler::pim_time`] under a fusion-group role: the lowered
    /// program's elided bus crossings are priced as `BANKFEED`s.
    fn pim_time_role(&mut self, id: NodeId, frac: f64, role: FusedRole) -> f64 {
        let mut w = PimWorkload::from_node(self.graph, id);
        w.rows = ((w.rows as f64 * frac).round() as usize).max(1);
        let key = WorkloadKey {
            workload: w,
            backend: BackendKind::Newton,
            channels: self.pim_channels_eff as u32,
            mask_bits: self.mask_bits,
            granularity: self.cfg.granularity,
            pim_fingerprint: self.pim_fingerprint,
            fused: role,
            interior: 0,
            group_fp: 0,
        };
        self.shard.count_lookup();
        if let Some(t) = self.shard.get(&key) {
            return t;
        }
        if let Some(t) = self.base.get(&key) {
            return t;
        }
        let t = pim_cost_us(&key, &self.cfg.pim);
        self.shard.insert(key, t);
        t
    }

    /// Crossbar time of `frac` of node `id`'s rows, microseconds, through
    /// the same two-tier memo as [`Profiler::pim_time`]. Only callable when
    /// the backend set carries a crossbar config.
    fn crossbar_time(&mut self, id: NodeId, frac: f64) -> f64 {
        self.crossbar_time_role(id, frac, FusedRole::Standalone)
    }

    /// [`Profiler::crossbar_time`] under a fusion-group role.
    fn crossbar_time_role(&mut self, id: NodeId, frac: f64, role: FusedRole) -> f64 {
        let xbar = self.xbar.expect("crossbar time without a crossbar model");
        let mut w = PimWorkload::from_node(self.graph, id);
        w.rows = ((w.rows as f64 * frac).round() as usize).max(1);
        let key = WorkloadKey {
            workload: w,
            backend: BackendKind::Crossbar,
            channels: self.pim_channels_eff as u32,
            mask_bits: self.mask_bits,
            granularity: self.cfg.granularity,
            pim_fingerprint: self.xbar_fingerprint,
            fused: role,
            interior: 0,
            group_fp: 0,
        };
        self.shard.count_lookup();
        if let Some(t) = self.shard.get(&key) {
            return t;
        }
        if let Some(t) = self.base.get(&key) {
            return t;
        }
        let t = crossbar_cost_us(&key, &xbar);
        self.shard.insert(key, t);
        t
    }

    /// PIM-side time of `frac` of node `id`: the pinned backend's time, or
    /// — unpinned — the cheapest over the configured backend set with the
    /// model that achieved it. Under `NewtonOnly` the unpinned path is
    /// exactly one Newton lookup: the historical cost (and cache-counter)
    /// behaviour, bit for bit.
    fn pim_time_pick(
        &mut self,
        id: NodeId,
        frac: f64,
        pin: Option<BackendKind>,
    ) -> (f64, BackendKind) {
        match pin {
            Some(BackendKind::Newton) => (self.pim_time(id, frac), BackendKind::Newton),
            Some(BackendKind::Crossbar) => (self.crossbar_time(id, frac), BackendKind::Crossbar),
            None => match (self.newton_allowed, self.xbar.is_some()) {
                (true, false) => (self.pim_time(id, frac), BackendKind::Newton),
                (false, _) => (self.crossbar_time(id, frac), BackendKind::Crossbar),
                (true, true) => {
                    let n = self.pim_time(id, frac);
                    let x = self.crossbar_time(id, frac);
                    if x < n {
                        (x, BackendKind::Crossbar)
                    } else {
                        (n, BackendKind::Newton)
                    }
                }
            },
        }
    }

    /// GPU time of `frac` of node `id`'s rows (standalone launch),
    /// microseconds. Weight traffic does not scale with the split.
    fn gpu_time(&self, id: NodeId, frac: f64) -> f64 {
        let p = pimflow_gpusim::kernel_for_node(self.graph, id);
        let cost = analysis::node_cost(self.graph, id);
        let weight_bytes = cost.weight_elems as f64 * 2.0;
        let act_bytes = (p.dram_bytes - weight_bytes).max(0.0);
        let scaled = KernelProfile {
            flops: p.flops * frac,
            dram_bytes: weight_bytes + act_bytes * frac,
            parallel_items: (p.parallel_items * frac).max(1.0),
            ..p
        };
        kernel_time_with_launch_us(&scaled, &self.cfg.gpu, self.cfg.gpu_channels.max(1))
    }

    /// Result-return transfer cost for `frac` of node `id`'s output.
    fn transfer_out(&self, id: NodeId, frac: f64) -> f64 {
        let bytes = self
            .graph
            .value(self.graph.node(id).output)
            .desc
            .as_ref()
            .map(|d| d.size_bytes() as f64)
            .unwrap_or(0.0)
            * frac;
        self.cfg.transfer_latency_us + bytes / (self.cfg.link_gbps * 1e3)
    }

    /// Standalone GPU cost of the epilogue slice that *stops being fused*
    /// when `frac` of node `id`'s rows leave the GPU: the MD-DP pass
    /// replicates the epilogue per part, so only the PIM part's slice turns
    /// into a real element-wise kernel.
    fn defusion_penalty(&mut self, id: NodeId, frac: f64) -> f64 {
        // AiM-style PIM activation units apply the epilogue in memory.
        if self.cfg.pim.activation_in_pim {
            return 0.0;
        }
        let succ = self.graph.successors(id);
        if succ.len() != 1 {
            return 0.0;
        }
        let next = succ[0];
        let next_node = self.graph.node(next);
        if !crate::engine::op_is_fusable(&next_node.op) {
            return 0.0;
        }
        if next_node.inputs.len() == 1 {
            // The MD-DP pass replicates single-input epilogues per part, so
            // only the PIM slice becomes a standalone kernel.
            self.gpu_time(next, frac)
        } else {
            // Two-input epilogues (residual Add) stay behind the concat and
            // run standalone over the full tensor.
            self.gpu_time(next, 1.0)
        }
    }

    /// MD-DP cost of node `id` at `gpu_percent`, including the epilogue
    /// de-fusion penalty on the PIM slice, over the configured backend set.
    fn mddp_cost(&mut self, id: NodeId, gpu_percent: u32) -> f64 {
        self.mddp_cost_pinned(id, gpu_percent, None).0
    }

    /// [`Profiler::mddp_cost`] with the choice of PIM backend exposed —
    /// and, when `pin` is set, forced (the repair path re-prices a plan's
    /// recorded backend instead of re-searching). At `gpu_percent == 100`
    /// no PIM model is consulted and the reported backend is the Newton
    /// placeholder.
    fn mddp_cost_pinned(
        &mut self,
        id: NodeId,
        gpu_percent: u32,
        pin: Option<BackendKind>,
    ) -> (f64, BackendKind) {
        match gpu_percent {
            100 => (self.gpu_time(id, 1.0), BackendKind::Newton),
            0 => {
                let (pim, backend) = self.pim_time_pick(id, 1.0, pin);
                (
                    pim + self.transfer_out(id, 1.0) + self.defusion_penalty(id, 1.0),
                    backend,
                )
            }
            r => {
                let f = r as f64 / 100.0;
                let gpu = self.gpu_time(id, f);
                let (pim_raw, backend) = self.pim_time_pick(id, 1.0 - f, pin);
                let pim = pim_raw + self.transfer_out(id, 1.0 - f);
                // The de-fused epilogue is a GPU kernel: it serializes on
                // the GPU stream after the GPU part (and after the PIM
                // results arrive), so it adds to the critical path rather
                // than overlapping it.
                (gpu.max(pim) + self.defusion_penalty(id, 1.0 - f), backend)
            }
        }
    }

    /// Wavefront estimate of a pipelined chain: `stages` parts, conv cells
    /// on their device, element-wise nodes following a PIM conv charged as
    /// standalone GPU kernels, following a GPU conv fused for free.
    fn pipeline_cost(&mut self, chain: &Chain, stages: usize) -> f64 {
        let mut gpu_free = 0.0f64;
        let mut pim_free = 0.0f64;
        // finish[p] = completion time of part p at the current chain depth.
        let mut finish = vec![0.0f64; stages];
        let mut prev_device = Placement::Gpu;
        for &nid in &chain.nodes {
            let node = self.graph.node(nid);
            let (device, cell) = match &node.op {
                Op::Conv2d(a) => {
                    let device = if a.is_pointwise() {
                        Placement::Pim
                    } else {
                        Placement::Gpu
                    };
                    let frac = 1.0 / stages as f64;
                    let dur = match device {
                        Placement::Pim => self.pim_time(nid, frac) + self.transfer_out(nid, frac),
                        Placement::Gpu => self.gpu_time(nid, frac),
                    };
                    (device, dur)
                }
                _ => {
                    // Element-wise rider: free when fused behind a GPU conv,
                    // a small bandwidth-bound kernel after a PIM conv.
                    if prev_device == Placement::Gpu {
                        (Placement::Gpu, 0.0)
                    } else {
                        let dur = self.gpu_time(nid, 1.0 / stages as f64);
                        (Placement::Gpu, dur)
                    }
                }
            };
            for slot in finish.iter_mut() {
                let start = match device {
                    Placement::Gpu => slot.max(gpu_free),
                    Placement::Pim => slot.max(pim_free),
                };
                let end = start + cell;
                match device {
                    Placement::Gpu => gpu_free = end,
                    Placement::Pim => pim_free = end,
                }
                *slot = end;
            }
            prev_device = device;
        }
        // The concat joining the final parts breaks epilogue fusion for the
        // node that follows the chain, exactly as in the MD-DP case.
        let last_conv = *chain.nodes.last().expect("chain non-empty");
        finish[stages - 1] + self.defusion_penalty(last_conv, 1.0)
    }

    /// Deterministic fingerprint of a group's heavy-member chain (shapes
    /// and order), used to key group-level chain-cost cache entries: two
    /// groups whose members happen to share a head shape must not collide.
    /// Never zero — zero marks ordinary per-member keys.
    fn group_fingerprint(&self, group: &FusionGroup) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for (k, &id) in group.heavy.iter().enumerate() {
            k.hash(&mut hasher);
            PimWorkload::from_node(self.graph, id).hash(&mut hasher);
        }
        hasher.finish().max(1)
    }

    /// The group's heavy members as `(workload, fused role)` pairs with
    /// `frac` of their rows, in chain order.
    fn fused_members(&self, group: &FusionGroup, frac: f64) -> Vec<(PimWorkload, FusedRole)> {
        let last = group.heavy.len() - 1;
        group
            .heavy
            .iter()
            .enumerate()
            .map(|(k, &id)| {
                let mut w = PimWorkload::from_node(self.graph, id);
                w.rows = ((w.rows as f64 * frac).round() as usize).max(1);
                let role = if k == 0 {
                    FusedRole::Head
                } else if k == last {
                    FusedRole::Tail
                } else {
                    FusedRole::Middle
                };
                (w, role)
            })
            .collect()
    }

    /// PIM time of `frac` of a fused group's heavy chain on one backend:
    /// the cheaper of running the members back-to-back (one epoch each,
    /// the sum of their fused-role times) and overlap-linked in a single
    /// epoch (relaxed `OBARRIER` separators, carried engine state, member
    /// imbalance hides under the neighbours' tails). Element-wise riders
    /// between the members are applied during the hand-off and cost
    /// nothing. The result is memoized group-level: the key is the head's
    /// workload re-rolled with the interior ratio and the group
    /// fingerprint, so it can never answer a per-member lookup.
    fn fused_chain_time(
        &mut self,
        group: &FusionGroup,
        backend: BackendKind,
        frac: f64,
        interior: u32,
    ) -> f64 {
        let mut group_fp = self.group_fingerprint(group);
        if !self.overlap_epochs {
            group_fp ^= OVERLAP_OFF_SALT;
        }
        let key = WorkloadKey {
            workload: PimWorkload::from_node(self.graph, group.heavy[0]),
            backend,
            channels: self.pim_channels_eff as u32,
            mask_bits: self.mask_bits,
            granularity: self.cfg.granularity,
            pim_fingerprint: match backend {
                BackendKind::Newton => self.pim_fingerprint,
                BackendKind::Crossbar => self.xbar_fingerprint,
            },
            fused: FusedRole::Head,
            interior,
            group_fp,
        };
        self.shard.count_lookup();
        if let Some(t) = self.shard.get(&key) {
            return t;
        }
        if let Some(t) = self.base.get(&key) {
            return t;
        }
        let last = group.heavy.len() - 1;
        let mut back_to_back = 0.0f64;
        for (k, &id) in group.heavy.iter().enumerate() {
            let role = if k == 0 {
                FusedRole::Head
            } else if k == last {
                FusedRole::Tail
            } else {
                FusedRole::Middle
            };
            back_to_back += match backend {
                BackendKind::Newton => self.pim_time_role(id, frac, role),
                BackendKind::Crossbar => self.crossbar_time_role(id, frac, role),
            };
        }
        let t = if !self.overlap_epochs {
            back_to_back
        } else {
            let members = self.fused_members(group, frac);
            let overlapped = match backend {
                // Overlap is not structurally never-worse on Newton — a
                // continuous run can cross refresh windows that per-epoch
                // engine resets would dodge — so both compositions are
                // priced and the min taken, keeping the candidate space a
                // strict superset of the unlinked one.
                BackendKind::Newton => execute_group_overlapped_us(
                    &members,
                    &self.cfg.pim,
                    self.pim_channels_eff,
                    self.cfg.granularity,
                ),
                BackendKind::Crossbar => {
                    let xbar = self.xbar.expect("crossbar chain without a crossbar model");
                    let shapes: Vec<(pimflow_isa::crossbar::MatmulShape, FusedRole)> = members
                        .iter()
                        .map(|(w, r)| {
                            (
                                pimflow_isa::crossbar::MatmulShape {
                                    rows: w.rows,
                                    k_elems: w.k_elems,
                                    out_channels: w.out_channels,
                                },
                                *r,
                            )
                        })
                        .collect();
                    pimflow_isa::crossbar::estimate_chain_us_overlapped(
                        &shapes,
                        self.pim_channels_eff,
                        &xbar,
                    )
                }
            };
            back_to_back.min(overlapped)
        };
        self.shard.insert(key, t);
        t
    }

    /// PIM-side time of `frac` of a fused group's chain: the pinned
    /// backend's time, or — unpinned — the cheapest over the configured
    /// backend set with the model that achieved it.
    fn fused_chain_pick(
        &mut self,
        group: &FusionGroup,
        frac: f64,
        interior: u32,
        pin: Option<BackendKind>,
    ) -> (f64, BackendKind) {
        match pin {
            Some(b) => (self.fused_chain_time(group, b, frac, interior), b),
            None => match (self.newton_allowed, self.xbar.is_some()) {
                (true, false) => (
                    self.fused_chain_time(group, BackendKind::Newton, frac, interior),
                    BackendKind::Newton,
                ),
                (false, _) => (
                    self.fused_chain_time(group, BackendKind::Crossbar, frac, interior),
                    BackendKind::Crossbar,
                ),
                (true, true) => {
                    let n = self.fused_chain_time(group, BackendKind::Newton, frac, interior);
                    let x = self.fused_chain_time(group, BackendKind::Crossbar, frac, interior);
                    if x < n {
                        (x, BackendKind::Crossbar)
                    } else {
                        (n, BackendKind::Newton)
                    }
                }
            },
        }
    }

    /// Cost of running `group` as one fused region at interior ratio
    /// `gpu_percent`, with the backend that achieves it. At `0` (full
    /// offload, the classic lowering): chain time plus the last member's
    /// result-return transfer and epilogue de-fusion penalty — the last
    /// *node*, not the last heavy layer, because a trailing residual
    /// rider's output is what actually leaves the region. At an interior
    /// ratio the whole region is H-split once: a GPU copy of every heavy
    /// member over `gpu_percent`% of the rows runs alongside the fused
    /// PIM chain over the rest, and the region completes when both
    /// branches do. When `pin` is set the recorded backend is re-priced
    /// instead of re-searched (the repair path).
    fn fused_group_cost_at(
        &mut self,
        group: &FusionGroup,
        gpu_percent: u32,
        pin: Option<BackendKind>,
    ) -> (f64, BackendKind) {
        let last = *group.nodes.last().expect("fusion group has members");
        if gpu_percent == 0 {
            let (time, backend) = self.fused_chain_pick(group, 1.0, 0, pin);
            (
                time + self.transfer_out(last, 1.0) + self.defusion_penalty(last, 1.0),
                backend,
            )
        } else {
            let f = gpu_percent as f64 / 100.0;
            // The GPU copy serializes its members on the GPU stream; the
            // riders fuse into their producers' epilogues for free.
            let gpu: f64 = group.heavy.iter().map(|&id| self.gpu_time(id, f)).sum();
            let (chain, backend) = self.fused_chain_pick(group, 1.0 - f, gpu_percent, pin);
            let pim = chain + self.transfer_out(last, 1.0 - f);
            (gpu.max(pim) + self.defusion_penalty(last, 1.0 - f), backend)
        }
    }

    /// [`Profiler::fused_group_cost_at`] minimized over `ratios` (which
    /// must include `0`): the best interior split, its cost, backend, and
    /// ratio. Strict `<` keeps ties on the earliest ratio, so widening
    /// the grid can reorder nothing — determinism across pool widths.
    fn fused_group_cost_searched(
        &mut self,
        group: &FusionGroup,
        ratios: &[u32],
    ) -> (f64, BackendKind, u32) {
        let mut best: Option<(f64, BackendKind, u32)> = None;
        for &r in ratios {
            let (t, b) = self.fused_group_cost_at(group, r, None);
            if best.is_none_or(|(bt, _, _)| t < bt) {
                best = Some((t, b, r));
            }
        }
        best.expect("ratio list is never empty")
    }
}

/// Public cost-model access for harnesses (Fig. 10/11 style analyses):
/// estimated time of `chain` when pipelined with `stages` stages.
pub fn estimate_chain_pipelined_us(
    graph: &Graph,
    cfg: &EngineConfig,
    chain: &Chain,
    stages: usize,
) -> f64 {
    let mut p = Profiler::new(graph, cfg);
    p.pipeline_cost(chain, stages.max(2))
}

/// MD-DP sample grid of `opts`, in ascending order. Both endpoints are
/// always present: 0 (full offload) and 100 (full GPU) anchor the search
/// even when `ratio_step` does not divide 100 (step 30 samples
/// 0,30,60,90,100 — not 0,30,60,90).
fn ratio_grid(opts: &SearchOptions) -> Vec<u32> {
    if opts.offload_only {
        return vec![0, 100];
    }
    let mut grid: Vec<u32> = (0..=100).step_by(opts.ratio_step.max(1) as usize).collect();
    if *grid.last().expect("grid starts at 0") != 100 {
        grid.push(100);
    }
    grid
}

/// Estimated best MD-DP time of node `id` (minimum over the ratio grid of
/// `opts`, always including full offload and full GPU), for harness-level
/// comparisons.
pub fn estimate_node_best_us(
    graph: &Graph,
    cfg: &EngineConfig,
    id: NodeId,
    opts: &SearchOptions,
) -> f64 {
    let mut p = Profiler::new(graph, cfg);
    if graph.is_pim_candidate(id) && cfg.effective_pim_channels() > 0 {
        ratio_grid(opts)
            .into_iter()
            .map(|r| p.mddp_cost(id, r))
            .fold(f64::INFINITY, f64::min)
    } else {
        p.gpu_time(id, 1.0)
    }
}

/// Public cost-model access for harnesses: estimated time of `group` run
/// as one fused region, minimized over the interior MD-DP ratios `opts`
/// admits (always including full offload), with the winning
/// `(time, backend, gpu_percent)`. Mirrors the search's group phase.
pub fn estimate_group_fused_us(
    graph: &Graph,
    cfg: &EngineConfig,
    group: &FusionGroup,
    opts: &SearchOptions,
) -> (f64, BackendKind, u32) {
    let mut p = Profiler::new(graph, cfg).overlap(opts.overlap_epochs);
    let step = (opts.ratio_step.max(25) as usize).min(100);
    let ratios: Vec<u32> = if opts.offload_only || interior_split_height(graph, group).is_none() {
        vec![0]
    } else {
        (0..100u32).step_by(step).collect()
    };
    p.fused_group_cost_searched(group, &ratios)
}

/// Baseline (GPU-resident) cost of a node inside the model timeline:
/// fused epilogues and optimized-away data movement cost nothing.
fn solo_gpu_cost(p: &mut Profiler<'_>, id: NodeId, fused_after_conv: bool) -> f64 {
    let graph = p.graph;
    if crate::memopt::is_data_move(graph, id) {
        let bytes = crate::memopt::data_move_bytes(graph, id, p.cfg.memopt);
        if bytes == 0 {
            return 0.0;
        }
        return bytes as f64 / p.cfg.gpu.mem_bandwidth(p.cfg.gpu_channels.max(1)) * 1e6
            + p.cfg.gpu.kernel_launch_us;
    }
    if fused_after_conv && crate::engine::op_is_fusable(&graph.node(id).op) {
        return 0.0;
    }
    p.gpu_time(id, 1.0)
}

/// Per-node outcome of the profiling phase (lines 1-7 of Algorithm 1),
/// computed independently per node so the phase parallelizes.
struct NodeOutcome {
    cost: f64,
    decision: Decision,
    candidate: bool,
    profile: Option<LayerProfile>,
}

/// Builder for the execution mode and task size search (Algorithm 1).
///
/// Replaces the historical `search` / `search_with_pool` free-function
/// pair with one entry point:
///
/// ```
/// use pimflow::engine::EngineConfig;
/// use pimflow::search::{Search, SearchOptions};
/// use pimflow_ir::models;
///
/// # fn main() -> pimflow::error::Result<()> {
/// let graph = models::toy();
/// let cfg = EngineConfig::pimflow();
/// let plan = Search::new(&graph, &cfg)
///     .options(SearchOptions::default())
///     .pool(2)
///     .run()?;
/// assert!(plan.predicted_us > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// Unset knobs keep their defaults: [`SearchOptions::default`] for the
/// mode space, a [`WorkerPool`] sized from `PIMFLOW_JOBS` for the
/// measurement loops, and the channel mask already carried by the config.
#[derive(Debug)]
pub struct Search<'g> {
    graph: &'g Graph,
    cfg: EngineConfig,
    opts: SearchOptions,
    pool: Option<WorkerPool>,
    cache: Option<CostCache>,
}

impl<'g> Search<'g> {
    /// Starts a search over `graph` with the hardware models in `cfg`.
    pub fn new(graph: &'g Graph, cfg: &EngineConfig) -> Self {
        Search {
            graph,
            cfg: cfg.clone(),
            opts: SearchOptions::default(),
            pool: None,
            cache: None,
        }
    }

    /// Restricts the mode space per offloading mechanism (§5).
    pub fn options(mut self, opts: SearchOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Fans the measurement loops out over `jobs` workers (1 = run
    /// sequentially on the caller's thread). Without this knob the pool is
    /// sized from `PIMFLOW_JOBS`. Any width returns a byte-identical plan.
    pub fn pool(mut self, jobs: usize) -> Self {
        self.pool = Some(if jobs <= 1 {
            WorkerPool::sequential()
        } else {
            WorkerPool::new(jobs)
        });
        self
    }

    /// Overrides the channel-availability mask of the config: PIM costs
    /// are simulated over the surviving channels only, and offload is
    /// disabled entirely when no channel survives.
    pub fn mask(mut self, mask: ChannelMask) -> Self {
        self.cfg = self.cfg.with_mask(mask);
        self
    }

    /// Backs this search with a long-lived [`CostCache`]: PIM simulations
    /// whose [`WorkloadKey`] is already in the cache are reused instead of
    /// rerun, and this search's fresh results are merged back for later
    /// callers. The handle is cheap to clone (`Arc`). Without this knob the
    /// search uses a private scratch cache, which behaves exactly like the
    /// historical per-search memo. The resulting plan is byte-identical
    /// either way.
    pub fn cache(mut self, cache: &CostCache) -> Self {
        self.cache = Some(cache.clone());
        self
    }

    /// Runs Algorithm 1 and returns the chosen plan.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Graph`] when `graph` is structurally
    /// invalid (e.g. cyclic) and no topological order exists.
    pub fn run(self) -> Result<ExecutionPlan> {
        let pool = self.pool.unwrap_or_else(WorkerPool::from_env);
        let scratch;
        let cache = match &self.cache {
            Some(c) => c,
            None => {
                scratch = CostCache::new();
                &scratch
            }
        };
        run_search(self.graph, &self.cfg, &self.opts, &pool, cache)
    }
}

/// Runs the execution mode and task size search over `graph`, sizing the
/// worker pool from `PIMFLOW_JOBS`. Shorthand for
/// `Search::new(graph, cfg).options(*opts).run()` — use the [`Search`]
/// builder to pin the pool width or override the channel mask.
///
/// Costs are measured with the hardware models in `cfg`; `opts` restricts
/// the mode space per offloading mechanism.
///
/// # Errors
///
/// Returns [`crate::Error::Graph`] when `graph` has no topological order.
pub fn search(graph: &Graph, cfg: &EngineConfig, opts: &SearchOptions) -> Result<ExecutionPlan> {
    Search::new(graph, cfg).options(*opts).run()
}

/// Whether each node fuses into its producer in the all-GPU timeline
/// (mirrors the engine: element-wise ops fuse into any GPU compute kernel;
/// only data-movement views and graph inputs break fusion). Shared by the
/// full search and by [`ExecutionPlan::repair`].
fn fusion_map(graph: &Graph, order: &[NodeId]) -> HashMap<NodeId, bool> {
    let mut conv_like: HashMap<NodeId, bool> = HashMap::new();
    for &id in order {
        let node = graph.node(id);
        let after_kernel = node
            .inputs
            .first()
            .and_then(|v| graph.producer(*v))
            .map(|p| !crate::memopt::is_data_move(graph, p))
            .unwrap_or(false);
        let fusable = crate::engine::op_is_fusable(&node.op) && after_kernel;
        conv_like.insert(id, fusable);
    }
    conv_like
}

/// The search body behind the [`Search`] builder.
///
/// The per-node MD-DP profiling and the per-chain pipeline costing fan out
/// over `pool`; each worker profiles with its own memo shard
/// (shard-per-worker, so workers never contend on one map) and results are
/// merged in topological/chain order. Both phases read an immutable
/// snapshot of `cache` and merge their shards back when the phase ends —
/// the chain phase's snapshot therefore already contains every workload the
/// node phase priced. The returned plan is bit-identical for any pool
/// width, including [`WorkerPool::sequential`], and for any cache state.
fn run_search(
    graph: &Graph,
    cfg: &EngineConfig,
    opts: &SearchOptions,
    pool: &WorkerPool,
    cache: &CostCache,
) -> Result<ExecutionPlan> {
    let order = graph.topo_order()?;
    let n = order.len();
    let index_of: HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let conv_like = fusion_map(graph, &order);
    let pim_available = cfg.effective_pim_channels() > 0;

    // Single-node costs: lines 1-7 of Algorithm 1, one independent task per
    // node.
    let base = cache.snapshot();
    let (outcomes, shards) = pool.map_with(
        &order,
        || Profiler::with_base(graph, cfg, base.clone()),
        |profiler, _, &id| {
            let fused = *conv_like.get(&id).unwrap_or(&false);
            let gpu_only = solo_gpu_cost(profiler, id, fused);
            if !(graph.is_pim_candidate(id) && pim_available) {
                return NodeOutcome {
                    cost: gpu_only,
                    decision: Decision::Gpu,
                    candidate: false,
                    profile: None,
                };
            }
            // Nodes whose split axis is degenerate (1x1 spatial convs in
            // squeeze-excite blocks, width-1 FCs) only offer the offload
            // endpoints.
            let splittable = match &graph.node(id).op {
                Op::Conv2d(_) => graph
                    .value(graph.node(id).output)
                    .desc
                    .as_ref()
                    .map(|d| d.shape.h() >= 2)
                    .unwrap_or(false),
                Op::Dense(a) => {
                    let rows = graph
                        .value(graph.node(id).inputs[0])
                        .desc
                        .as_ref()
                        .map(|d| d.shape.n())
                        .unwrap_or(1);
                    rows >= 2 || a.out_features >= 2
                }
                _ => false,
            };
            let ratios: Vec<u32> = if !splittable {
                vec![0, 100]
            } else {
                ratio_grid(opts)
            };
            let mut samples = Vec::with_capacity(ratios.len());
            let mut best = (100u32, gpu_only, BackendKind::Newton);
            for r in ratios {
                let (t, backend) = profiler.mddp_cost_pinned(id, r, None);
                samples.push((r, t));
                if t < best.1 {
                    best = (r, t, backend);
                }
            }
            let profile = LayerProfile {
                name: graph.node(id).name.clone(),
                samples,
                best_ratio: best.0,
                best_us: best.1,
                gpu_us: gpu_only,
            };
            let decision = if best.0 == 100 {
                Decision::Gpu
            } else {
                Decision::Split {
                    gpu_percent: best.0,
                    backend: best.2,
                }
            };
            NodeOutcome {
                cost: best.1,
                decision,
                candidate: true,
                profile: Some(profile),
            }
        },
    );
    // Merge the worker memo shards into the shared table (worker-index
    // order; contents are pure, so only recompute rates — never values —
    // depend on the sharding).
    cache.merge(shards.into_iter().map(Profiler::into_shard));

    let profiles: Vec<LayerProfile> = outcomes.iter().filter_map(|o| o.profile.clone()).collect();
    let single_cost: Vec<f64> = outcomes.iter().map(|o| o.cost).collect();

    // Pipeline candidates: lines 8-15, one independent task per chain. A
    // chain is usable when its nodes are contiguous in the topo order (the
    // DP walks that order). Workers start from a fresh snapshot that
    // already contains the node phase's merged shards, so shared PIM
    // workloads are not re-simulated.
    // Pipeline stages stream their inputs through the global buffers, so
    // chains are priced (and would execute) on the Newton model only; a
    // crossbar-only backend set has no pipelining to offer.
    let mut chain_list: Vec<(usize, Chain)> = Vec::new();
    if opts.allow_pipeline && pim_available && cfg.pim_backends.allows_newton() {
        for chain in find_chains(graph) {
            let start = index_of[&chain.nodes[0]];
            let contiguous = chain
                .nodes
                .iter()
                .enumerate()
                .all(|(k, nid)| index_of[nid] == start + k);
            if contiguous {
                chain_list.push((start, chain));
            }
        }
    }
    let base = cache.snapshot();
    let (chain_costs, chain_shards) = pool.map_with(
        &chain_list,
        || Profiler::with_base(graph, cfg, base.clone()),
        |profiler, _, (_, chain)| profiler.pipeline_cost(chain, opts.pipeline_stages.max(2)),
    );
    // The chain phase used to discard its shards; merging them means a
    // later cached search (or the serving precompile sweep) reuses the
    // pipeline workloads too.
    cache.merge(chain_shards.into_iter().map(Profiler::into_shard));
    let mut chain_options: HashMap<usize, Vec<(Chain, f64)>> = HashMap::new();
    for ((start, chain), cost) in chain_list.into_iter().zip(chain_costs) {
        chain_options.entry(start).or_default().push((chain, cost));
    }

    // Fusion-group candidates: runs of PIM-eligible heavy layers whose
    // inter-layer activations can stay near the banks. Like chains, a
    // group is usable only when its nodes are contiguous in the topo order
    // (the DP consumes whole index ranges). One independent pricing task
    // per group; workers snapshot the table the earlier phases filled.
    let mut group_list: Vec<(usize, FusionGroup)> = Vec::new();
    if opts.allow_fusion && pim_available {
        for group in find_fusion_groups(graph) {
            let start = index_of[&group.nodes[0]];
            let contiguous = group
                .nodes
                .iter()
                .enumerate()
                .all(|(k, nid)| index_of[nid] == start + k);
            if contiguous {
                group_list.push((start, group));
            }
        }
    }
    let base = cache.snapshot();
    // Interior MD-DP grid for splittable groups: coarser than the
    // per-node grid (the region is priced as a whole, fine steps move
    // little), never finer than 25%. `0` — the classic full offload — is
    // always first, so adding interior ratios only widens the candidate
    // set: the searched minimum can never be worse than before.
    let interior_step = (opts.ratio_step.max(25) as usize).min(100);
    let (group_costs, group_shards) = pool.map_with(
        &group_list,
        || Profiler::with_base(graph, cfg, base.clone()).overlap(opts.overlap_epochs),
        |profiler, _, (_, group)| {
            let ratios: Vec<u32> =
                if opts.offload_only || interior_split_height(graph, group).is_none() {
                    vec![0]
                } else {
                    (0..100u32).step_by(interior_step).collect()
                };
            profiler.fused_group_cost_searched(group, &ratios)
        },
    );
    cache.merge(group_shards.into_iter().map(Profiler::into_shard));
    let mut fused_options: HashMap<usize, Vec<(FusionGroup, f64, BackendKind, u32)>> =
        HashMap::new();
    for ((start, group), (cost, backend, ratio)) in group_list.into_iter().zip(group_costs) {
        fused_options
            .entry(start)
            .or_default()
            .push((group, cost, backend, ratio));
    }

    // DP combine: lines 23-28 (suffix form over the topo order). The
    // candidate set at each index is single-node decisions, pipeline
    // chains, and fused groups; disabling fusion removes options without
    // adding any, so the fused search's minimum can never be worse.
    #[derive(Clone, Copy)]
    enum DpChoice {
        Chain(usize),
        Fused(usize),
    }
    let mut t = vec![0.0f64; n + 1];
    let mut choice: Vec<Option<DpChoice>> = vec![None; n];
    for i in (0..n).rev() {
        let mut best = single_cost[i] + t[i + 1];
        let mut best_choice = None;
        if let Some(chains) = chain_options.get(&i) {
            for (k, (chain, cost)) in chains.iter().enumerate() {
                let len = chain.nodes.len();
                let total = cost + t[i + len];
                if total < best {
                    best = total;
                    best_choice = Some(DpChoice::Chain(k));
                }
            }
        }
        if let Some(groups) = fused_options.get(&i) {
            for (k, (group, cost, _, _)) in groups.iter().enumerate() {
                let len = group.nodes.len();
                let total = cost + t[i + len];
                if total < best {
                    best = total;
                    best_choice = Some(DpChoice::Fused(k));
                }
            }
        }
        t[i] = best;
        choice[i] = best_choice;
    }

    // Reconstruct decisions and attribute conv-layer time (Fig. 9 top).
    let mut decisions = Vec::new();
    let mut conv_layer_us = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let id = order[i];
        let name = graph.node(id).name.clone();
        if let Some(DpChoice::Chain(k)) = choice[i] {
            let (chain, cost) = &chain_options[&i][k];
            // Attribute only the candidate-conv share of the chain to the
            // Fig. 9 conv metric: subtract what the chain's non-candidate
            // members (DW convs, element-wise) would have cost anyway.
            let rider_cost: f64 = chain
                .nodes
                .iter()
                .filter(|nid| {
                    !(matches!(graph.node(**nid).op, Op::Conv2d(_))
                        && graph.is_pim_candidate(**nid))
                })
                .map(|nid| single_cost[index_of[nid]])
                .sum();
            conv_layer_us += (cost - rider_cost).max(0.0);
            decisions.push((
                name,
                Decision::Pipeline {
                    node_names: chain
                        .nodes
                        .iter()
                        .map(|&nid| graph.node(nid).name.clone())
                        .collect(),
                    stages: opts.pipeline_stages.max(2),
                },
            ));
            i += chain.nodes.len();
        } else if let Some(DpChoice::Fused(k)) = choice[i] {
            let (group, cost, backend, ratio) = &fused_options[&i][k];
            let rider_cost: f64 = group
                .nodes
                .iter()
                .filter(|nid| {
                    !(matches!(graph.node(**nid).op, Op::Conv2d(_))
                        && graph.is_pim_candidate(**nid))
                })
                .map(|nid| single_cost[index_of[nid]])
                .sum();
            conv_layer_us += (cost - rider_cost).max(0.0);
            decisions.push((
                name,
                Decision::Fused {
                    node_names: group
                        .nodes
                        .iter()
                        .map(|&nid| graph.node(nid).name.clone())
                        .collect(),
                    backend: *backend,
                    gpu_percent: *ratio,
                },
            ));
            i += group.nodes.len();
        } else {
            if matches!(graph.node(id).op, Op::Conv2d(_)) && graph.is_pim_candidate(id) {
                conv_layer_us += single_cost[i];
            }
            // Every profiled candidate gets an explicit decision — GPU
            // included — so `ratio_distribution` counts the 100% bucket's
            // real mass (Table 2). Non-candidates always stay on GPU and
            // are omitted as before.
            if outcomes[i].candidate {
                decisions.push((name, outcomes[i].decision.clone()));
            }
            i += 1;
        }
    }

    Ok(ExecutionPlan {
        model: graph.name.clone(),
        decisions,
        profiles,
        predicted_us: t[0],
        conv_layer_us,
    })
}

/// Applies `plan` to a fresh copy of `graph`, returning the transformed
/// graph ready for the execution engine.
///
/// # Errors
///
/// Returns [`crate::Error::NotApplicable`] if the plan references nodes
/// that do not exist in `graph` or a decision cannot be applied (plans are
/// only valid for the graph they were computed on).
pub fn apply_plan(graph: &Graph, plan: &ExecutionPlan) -> Result<Graph> {
    use crate::passes::PassError;
    let mut out = graph.clone();
    let mut fused_gid = 0usize;
    for (name, decision) in &plan.decisions {
        match decision {
            Decision::Gpu => {}
            Decision::Split { gpu_percent, .. } => {
                let id = out.find_node(name).ok_or_else(|| {
                    PassError::NotApplicable(format!("plan references unknown node `{name}`"))
                })?;
                crate::passes::split_node(&mut out, id, *gpu_percent)?;
            }
            Decision::Fused {
                node_names,
                gpu_percent,
                ..
            } => {
                let ids = node_names
                    .iter()
                    .map(|n| {
                        out.find_node(n).ok_or_else(|| {
                            PassError::NotApplicable(format!(
                                "plan references unknown node `{n}` in fusion group at `{name}`"
                            ))
                        })
                    })
                    .collect::<Result<Vec<NodeId>, PassError>>()?;
                let heavy: Vec<NodeId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| crate::passes::fusion::is_fusion_heavy(&out, id))
                    .collect();
                let group = FusionGroup { nodes: ids, heavy };
                if *gpu_percent == 0 {
                    crate::passes::fuse_group(&mut out, &group, fused_gid)?;
                } else {
                    crate::passes::fusion::fuse_group_interior(
                        &mut out,
                        &group,
                        fused_gid,
                        *gpu_percent,
                    )?;
                }
                fused_gid += 1;
            }
            Decision::Pipeline { node_names, stages } => {
                let chain = find_chains(&out)
                    .into_iter()
                    .find(|c| {
                        c.nodes.len() == node_names.len()
                            && c.nodes
                                .iter()
                                .zip(node_names)
                                .all(|(&nid, n)| &out.node(nid).name == n)
                    })
                    .ok_or_else(|| {
                        PassError::NotApplicable(format!(
                            "plan references unknown chain at `{name}`"
                        ))
                    })?;
                crate::passes::pipeline_chain(&mut out, &chain, *stages)?;
            }
        }
    }
    Ok(out)
}

/// Former name of the fallible [`apply_plan`]; both have returned
/// `Result` since the core API became panic-free.
#[deprecated(since = "0.2.0", note = "renamed to `apply_plan`")]
pub fn try_apply_plan(graph: &Graph, plan: &ExecutionPlan) -> Result<Graph> {
    apply_plan(graph, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use pimflow_ir::{models, Op};
    use pimflow_kernels::{input_tensors, run_graph};

    fn pimflow_cfg() -> EngineConfig {
        EngineConfig::pimflow()
    }

    #[test]
    fn search_produces_offload_decisions_for_toy() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        assert!(
            !plan.decisions.is_empty(),
            "toy model should offload something"
        );
        assert!(plan.predicted_us > 0.0);
        assert!(!plan.profiles.is_empty());
    }

    #[test]
    fn profiles_have_eleven_samples_at_default_step() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        for p in &plan.profiles {
            assert_eq!(p.samples.len(), 11, "{}", p.name);
        }
    }

    #[test]
    fn offload_only_restricts_ratios() {
        let g = models::toy();
        let opts = SearchOptions {
            offload_only: true,
            allow_pipeline: false,
            ..Default::default()
        };
        let plan = search(&g, &pimflow_cfg(), &opts).unwrap();
        for (_, d) in &plan.decisions {
            match d {
                Decision::Split { gpu_percent, .. } => assert_eq!(*gpu_percent, 0),
                Decision::Gpu => {}
                // A fused group is a full offload, so it is compatible
                // with the offload-only mode space.
                Decision::Fused { .. } => {}
                Decision::Pipeline { .. } => panic!("pipeline disabled"),
            }
        }
    }

    #[test]
    fn plan_applies_and_preserves_semantics() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let transformed = apply_plan(&g, &plan).unwrap();
        transformed.validate().unwrap();
        let inputs = input_tensors(&g, 5);
        let a = run_graph(&g, &inputs).unwrap();
        let b = run_graph(&transformed, &inputs).unwrap();
        assert!(
            a[0].allclose(&b[0], 1e-4),
            "diff {}",
            a[0].max_abs_diff(&b[0])
        );
    }

    #[test]
    fn plan_execution_beats_gpu_baseline_on_toy() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let transformed = apply_plan(&g, &plan).unwrap();
        let base = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        let opt = execute(&transformed, &pimflow_cfg()).unwrap();
        assert!(
            opt.total_us < base.total_us,
            "PIMFlow {:.1}us vs baseline {:.1}us",
            opt.total_us,
            base.total_us
        );
    }

    #[test]
    fn search_is_deterministic() {
        let g = models::toy();
        let a = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let b = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dp_never_worse_than_all_gpu() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let all_gpu: f64 = {
            let mut p = Profiler::new(&g, &pimflow_cfg());
            let order = g.topo_order().unwrap();
            let mut conv_seen = false;
            order
                .iter()
                .map(|&id| {
                    let fused = conv_seen && crate::engine::op_is_fusable(&g.node(id).op);
                    conv_seen = matches!(g.node(id).op, Op::Conv2d(_) | Op::Dense(_)) || fused;
                    solo_gpu_cost(&mut p, id, fused)
                })
                .sum()
        };
        assert!(plan.predicted_us <= all_gpu + 1e-9);
    }

    #[test]
    fn ratio_distribution_sums_to_one() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let dist = plan.ratio_distribution();
        let total: f64 = dist.iter().map(|(_, s)| s).sum();
        if plan
            .decisions
            .iter()
            .any(|(_, d)| !matches!(d, Decision::Pipeline { .. }))
        {
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
        }
    }

    #[test]
    fn ratio_grid_always_contains_both_endpoints() {
        // Regression: `(0..=100).step_by(30)` samples 0,30,60,90 and loses
        // the full-GPU endpoint whenever the step does not divide 100.
        for step in [7u32, 10, 30, 33, 100] {
            let opts = SearchOptions {
                ratio_step: step,
                ..Default::default()
            };
            let grid = ratio_grid(&opts);
            assert_eq!(*grid.first().unwrap(), 0, "step {step}");
            assert_eq!(*grid.last().unwrap(), 100, "step {step}");
            assert!(
                grid.windows(2).all(|w| w[0] < w[1]),
                "step {step}: {grid:?}"
            );
        }
        let g = models::toy();
        let opts = SearchOptions {
            ratio_step: 30,
            allow_pipeline: false,
            ..Default::default()
        };
        let plan = search(&g, &pimflow_cfg(), &opts).unwrap();
        for p in &plan.profiles {
            let ratios: Vec<u32> = p.samples.iter().map(|&(r, _)| r).collect();
            assert!(ratios.contains(&0), "{}: {ratios:?}", p.name);
            assert!(ratios.contains(&100), "{}: {ratios:?}", p.name);
        }
    }

    #[test]
    fn estimate_node_best_us_respects_ratio_step() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let fine = SearchOptions::default(); // step 10
        let coarse = SearchOptions {
            ratio_step: 50,
            ..Default::default()
        };
        for id in g.node_ids().filter(|&id| g.is_pim_candidate(id)) {
            let f = estimate_node_best_us(&g, &cfg, id, &fine);
            let c = estimate_node_best_us(&g, &cfg, id, &coarse);
            // The fine grid is a superset of the coarse grid, so its
            // minimum can only be lower.
            assert!(f <= c + 1e-9, "node {id:?}: fine {f} > coarse {c}");
        }
    }

    #[test]
    fn ratio_distribution_counts_gpu_resident_candidates() {
        // Regression: candidates the search leaves on the GPU must carry an
        // explicit Decision::Gpu entry and fill the 100% bucket; they used
        // to be dropped from `decisions` entirely, so Table 2 shares missed
        // the bucket's real mass.
        let g = models::toy();
        let mut cfg = pimflow_cfg();
        // Make offloading hopeless: every result-return transfer costs an
        // eternity, so the best ratio is 100 for every candidate.
        cfg.transfer_latency_us = 1e9;
        let opts = SearchOptions {
            allow_pipeline: false,
            ..Default::default()
        };
        let plan = search(&g, &cfg, &opts).unwrap();
        assert!(!plan.profiles.is_empty());
        assert_eq!(
            plan.decisions.len(),
            plan.profiles.len(),
            "one explicit decision per profiled candidate"
        );
        assert!(plan
            .decisions
            .iter()
            .all(|(_, d)| matches!(d, Decision::Gpu)));
        let dist = plan.ratio_distribution();
        let total: f64 = dist.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let full_gpu = dist.iter().find(|&&(r, _)| r == 100).unwrap().1;
        assert!((full_gpu - 1.0).abs() < 1e-9, "100%% bucket {full_gpu}");
    }

    #[test]
    fn off_grid_ratios_still_sum_to_one() {
        // A non-divisor step picks ratios outside the 10% reporting grid;
        // the distribution must include them instead of dropping them.
        let plan = ExecutionPlan {
            model: "synthetic".into(),
            decisions: vec![
                (
                    "a".into(),
                    Decision::Split {
                        gpu_percent: 33,
                        backend: BackendKind::Newton,
                    },
                ),
                ("b".into(), Decision::Gpu),
            ],
            profiles: Vec::new(),
            predicted_us: 1.0,
            conv_layer_us: 0.0,
        };
        let dist = plan.ratio_distribution();
        let total: f64 = dist.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(dist.iter().any(|&(r, s)| r == 33 && (s - 0.5).abs() < 1e-9));
    }

    #[test]
    fn parallel_pools_match_sequential_on_toy() {
        let g = models::toy();
        let opts = SearchOptions::default();
        let baseline = Search::new(&g, &pimflow_cfg())
            .options(opts)
            .pool(1)
            .run()
            .unwrap();
        let expected = pimflow_json::to_string(&baseline);
        for jobs in [2usize, 8] {
            let plan = Search::new(&g, &pimflow_cfg())
                .options(opts)
                .pool(jobs)
                .run()
                .unwrap();
            assert_eq!(pimflow_json::to_string(&plan), expected, "jobs {jobs}");
        }
    }

    #[test]
    fn cached_search_matches_cold_and_reuses_entries() {
        let g = models::toy();
        let cold = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let cache = crate::costcache::CostCache::new();
        let warm1 = Search::new(&g, &pimflow_cfg()).cache(&cache).run().unwrap();
        let after_first = cache.counters();
        assert!(after_first.entries > 0, "search must populate the cache");
        assert!(after_first.misses > 0);
        let warm2 = Search::new(&g, &pimflow_cfg()).cache(&cache).run().unwrap();
        let after_second = cache.counters();
        let expected = pimflow_json::to_string(&cold);
        assert_eq!(pimflow_json::to_string(&warm1), expected);
        assert_eq!(pimflow_json::to_string(&warm2), expected);
        assert_eq!(
            after_second.entries, after_first.entries,
            "a repeat search must add no entries"
        );
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn cached_repair_matches_uncached_repair() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        let mask = ChannelMask::from_bits(0b11);
        let plain = plan.repair(&g, &cfg, mask).unwrap();
        let cache = crate::costcache::CostCache::new();
        let cached = plan
            .repair_with_cache(&g, &cfg, mask, Some(&cache))
            .unwrap();
        assert_eq!(
            pimflow_json::to_string(&plain),
            pimflow_json::to_string(&cached)
        );
        let first = cache.counters();
        assert!(first.entries > 0, "repair must feed the cache");
        // A second repair under the same mask is answered from the table.
        let again = plan
            .repair_with_cache(&g, &cfg, mask, Some(&cache))
            .unwrap();
        assert_eq!(
            pimflow_json::to_string(&plain),
            pimflow_json::to_string(&again)
        );
        let second = cache.counters();
        assert_eq!(second.entries, first.entries);
        assert_eq!(second.misses, first.misses);
        assert!(second.hits > first.hits);
    }

    #[test]
    fn masked_out_search_keeps_everything_on_gpu() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let plan = Search::new(&g, &cfg)
            .mask(ChannelMask::from_bits(0))
            .run()
            .unwrap();
        assert!(plan
            .decisions
            .iter()
            .all(|(_, d)| matches!(d, Decision::Gpu)));
    }

    #[test]
    fn repair_with_full_mask_is_identity() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        let repaired = plan.repair(&g, &cfg, ChannelMask::all()).unwrap();
        assert_eq!(
            pimflow_json::to_string(&plan),
            pimflow_json::to_string(&repaired)
        );
    }

    #[test]
    fn repair_never_beats_the_original_prediction() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        // Kill all but one channel.
        let mask = ChannelMask::from_bits(0b1);
        let repaired = plan.repair(&g, &cfg, mask).unwrap();
        assert!(
            repaired.predicted_us >= plan.predicted_us - 1e-9,
            "repaired {} < original {}",
            repaired.predicted_us,
            plan.predicted_us
        );
    }

    #[test]
    fn repair_under_empty_mask_falls_back_to_gpu_everywhere() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        let repaired = plan.repair(&g, &cfg, ChannelMask::from_bits(0)).unwrap();
        assert!(repaired
            .decisions
            .iter()
            .all(|(_, d)| matches!(d, Decision::Gpu)));
        // A plan with zero PIM work must execute without touching PIM.
        let transformed = apply_plan(&g, &repaired).unwrap();
        let report = execute(&transformed, &cfg.with_mask(ChannelMask::from_bits(0))).unwrap();
        assert!(report.pim_channel_busy_us.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn repair_rejects_plans_for_other_graphs() {
        let g = models::toy();
        let cfg = pimflow_cfg();
        let mut plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        plan.decisions.push(("no-such-node".into(), Decision::Gpu));
        let err = plan.repair(&g, &cfg, ChannelMask::from_bits(0b1));
        assert!(matches!(err, Err(crate::Error::NotApplicable(_))));
    }

    #[test]
    fn plan_serializes_roundtrip() {
        let g = models::toy();
        let plan = search(&g, &pimflow_cfg(), &SearchOptions::default()).unwrap();
        let json = pimflow_json::to_string(&plan);
        let back: ExecutionPlan = pimflow_json::from_str(&json).unwrap();
        assert_eq!(plan.model, back.model);
        assert_eq!(plan.decisions, back.decisions);
        assert_eq!(plan.profiles.len(), back.profiles.len());
    }
}
