//! Batch-dimension plumbing for the serving runtime.
//!
//! The paper's compiler operates on batch-1 inference graphs (the model zoo
//! builds them that way); a serving system amortizes weight traffic by
//! batching requests. [`with_batch`] rewrites a model to an arbitrary batch
//! size by replacing the batch extent of every graph input and re-running
//! shape inference, so every downstream consumer — the reference executor,
//! the kernel profiles, the PIM lowering — sees the batched extents.

use pimflow_ir::{infer_shapes, Graph, GraphError};

/// Returns a copy of `graph` whose inputs carry batch size `batch`, with
/// all intermediate shapes re-inferred.
///
/// The graph name is preserved so execution plans computed for different
/// batch sizes of the same model still report the model's name.
///
/// # Errors
///
/// Returns [`GraphError`] if shape inference fails on the batched graph
/// (e.g. an op whose attributes hard-code extents incompatible with the new
/// batch).
///
/// # Panics
///
/// Panics if `batch == 0`.
///
/// # Examples
///
/// ```
/// use pimflow::batch::with_batch;
/// use pimflow_ir::models;
///
/// let g = with_batch(&models::toy(), 4).unwrap();
/// let out = g.value(g.outputs()[0]).desc.as_ref().unwrap();
/// assert_eq!(out.shape.n(), 4);
/// ```
pub fn with_batch(graph: &Graph, batch: usize) -> Result<Graph, GraphError> {
    assert!(batch > 0, "batch size must be positive");
    let mut out = graph.clone();
    for &v in &out.inputs().to_vec() {
        let value = out.value_mut(v);
        if let Some(desc) = value.desc.as_mut() {
            desc.shape = desc.shape.with_dim(0, batch);
        }
    }
    infer_shapes(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, EngineConfig};
    use pimflow_ir::models;

    #[test]
    fn batched_toy_scales_all_values() {
        let g = models::toy();
        let b4 = with_batch(&g, 4).unwrap();
        assert_eq!(b4.name, g.name);
        for id in b4.node_ids() {
            let shape = &b4.value(b4.node(id).output).desc.as_ref().unwrap().shape;
            assert_eq!(shape.n(), 4, "node {}", b4.node(id).name);
        }
    }

    #[test]
    fn batch_one_is_identity() {
        let g = models::toy();
        let b1 = with_batch(&g, 1).unwrap();
        for (a, b) in g.node_ids().zip(b1.node_ids()) {
            assert_eq!(
                g.value(g.node(a).output).desc,
                b1.value(b1.node(b).output).desc
            );
        }
    }

    #[test]
    fn larger_batches_cost_more() {
        let g = models::toy();
        let cfg = EngineConfig::pimflow();
        let t1 = execute(&with_batch(&g, 1).unwrap(), &cfg).unwrap().total_us;
        let t8 = execute(&with_batch(&g, 8).unwrap(), &cfg).unwrap().total_us;
        assert!(t8 > t1, "batch-8 {t8:.1}us vs batch-1 {t1:.1}us");
    }

    #[test]
    fn batched_models_validate() {
        for name in ["toy", "mobilenet-v2"] {
            let g = models::by_name(name).unwrap();
            let b = with_batch(&g, 3).unwrap();
            b.validate().unwrap();
        }
    }
}
