//! Auto-tuning refinement of the execution plan.
//!
//! The paper's stated future work: "we plan to apply an auto-tuning
//! approach to our execution mode and task size search for more optimized
//! code generation" (§9). This module implements that step: starting from
//! the Algorithm 1 plan, it perturbs one decision at a time (MD-DP ratio
//! nudges, offload/GPU flips), *measures* each candidate end-to-end on the
//! execution engine — not the per-layer cost model — and keeps improvements
//! until a local optimum or the round budget is reached.
//!
//! Because candidates are scored by full-timeline measurement, the tuner can
//! exploit cross-layer effects the per-node DP cannot see (stream overlap
//! between adjacent layers, transfer amortization).

use crate::engine::{execute, EngineConfig};
use crate::search::{Decision, ExecutionPlan};
use pimflow_ir::Graph;

/// Result of one auto-tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The refined plan.
    pub plan: ExecutionPlan,
    /// Measured end-to-end time of the input plan, microseconds.
    pub initial_us: f64,
    /// Measured end-to-end time of the refined plan, microseconds.
    pub tuned_us: f64,
    /// Candidate plans evaluated.
    pub evaluations: usize,
}

impl TuneResult {
    /// Relative improvement over the input plan (0.01 = 1% faster).
    pub fn gain(&self) -> f64 {
        self.initial_us / self.tuned_us - 1.0
    }
}

/// Measures a candidate plan end-to-end; returns `None` if the plan cannot
/// be applied (a perturbed ratio degenerated on a small layer).
fn measure(graph: &Graph, cfg: &EngineConfig, plan: &ExecutionPlan) -> Option<f64> {
    let transformed = crate::search::apply_plan(graph, plan).ok()?;
    Some(execute(&transformed, cfg).ok()?.total_us)
}

/// Neighbour plans of `plan`: each Split decision nudged by ±`step` and
/// flipped to the offload endpoints.
fn neighbours(plan: &ExecutionPlan, index: usize, step: u32) -> Vec<ExecutionPlan> {
    let (_, decision) = &plan.decisions[index];
    let Decision::Split {
        gpu_percent,
        backend,
    } = decision
    else {
        return Vec::new();
    };
    let mut ratios = Vec::new();
    for candidate in [gpu_percent.saturating_sub(step), gpu_percent + step, 0, 100] {
        let candidate = candidate.min(100);
        if candidate != *gpu_percent && !ratios.contains(&candidate) {
            ratios.push(candidate);
        }
    }
    ratios
        .into_iter()
        .map(|r| {
            let mut p = plan.clone();
            if r == 100 {
                // Full GPU: keep the explicit entry so the candidate still
                // counts in `ratio_distribution`.
                p.decisions[index].1 = Decision::Gpu;
            } else {
                p.decisions[index].1 = Decision::Split {
                    gpu_percent: r,
                    backend: *backend,
                };
            }
            p
        })
        .collect()
}

/// Refines `plan` by measured local search.
///
/// `rounds` bounds full sweeps over the decisions; `step` is the ratio
/// nudge in percent (the paper's footnote suggests 2%). The returned plan is
/// never worse than the input plan under engine measurement.
///
/// # Errors
///
/// Returns [`crate::Error::NotApplicable`] when the input plan does not
/// apply to `graph` (plans are only valid for the graph they were computed
/// on).
pub fn autotune(
    graph: &Graph,
    cfg: &EngineConfig,
    plan: &ExecutionPlan,
    rounds: usize,
    step: u32,
) -> crate::Result<TuneResult> {
    let initial_us = measure(graph, cfg, plan).ok_or_else(|| {
        crate::Error::NotApplicable("input plan does not apply to this graph".into())
    })?;
    let mut best_plan = plan.clone();
    let mut best_us = initial_us;
    let mut evaluations = 1;

    for _ in 0..rounds {
        let mut improved = false;
        let mut i = 0;
        while i < best_plan.decisions.len() {
            for candidate in neighbours(&best_plan, i, step.max(1)) {
                if let Some(t) = measure(graph, cfg, &candidate) {
                    evaluations += 1;
                    if t < best_us {
                        best_us = t;
                        best_plan = candidate;
                        improved = true;
                        break; // re-enumerate neighbours of the new plan
                    }
                }
            }
            i += 1;
        }
        if !improved {
            break;
        }
    }

    best_plan.predicted_us = best_us;
    Ok(TuneResult {
        plan: best_plan,
        initial_us,
        tuned_us: best_us,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search, SearchOptions};
    use pimflow_ir::models;

    #[test]
    fn autotune_never_regresses() {
        let g = models::toy();
        let cfg = EngineConfig::pimflow();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        let result = autotune(&g, &cfg, &plan, 3, 10).unwrap();
        assert!(result.tuned_us <= result.initial_us + 1e-9);
        assert!(result.evaluations >= 1);
        // The refined plan still applies and still beats the baseline.
        let t = crate::search::apply_plan(&g, &result.plan).unwrap();
        let tuned = execute(&t, &cfg).unwrap();
        let base = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        assert!(tuned.total_us < base.total_us);
    }

    #[test]
    fn autotune_can_improve_a_deliberately_bad_plan() {
        let g = models::toy();
        let cfg = EngineConfig::pimflow();
        let mut plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        // Sabotage: force a lopsided split on the first split decision, or
        // inject one if the search chose endpoints only.
        let mut sabotaged = false;
        for (_, d) in plan.decisions.iter_mut() {
            if let Decision::Split { gpu_percent, .. } = d {
                *gpu_percent = 90;
                sabotaged = true;
                break;
            }
        }
        if !sabotaged {
            // Turn a full offload into a bad split.
            if let Some((_, d)) = plan.decisions.iter_mut().find(|(n, d)| {
                matches!(d, Decision::Split { gpu_percent: 0, .. }) && n.contains("conv")
            }) {
                *d = Decision::Split {
                    gpu_percent: 90,
                    backend: pimflow_isa::BackendKind::Newton,
                };
                sabotaged = true;
            }
        }
        assert!(sabotaged, "toy plan should contain a tunable decision");
        let result = autotune(&g, &cfg, &plan, 4, 10).unwrap();
        assert!(
            result.gain() > 0.0,
            "tuner must recover from a bad ratio (gain {})",
            result.gain()
        );
    }

    #[test]
    fn autotune_is_deterministic() {
        let g = models::toy();
        let cfg = EngineConfig::pimflow();
        let plan = search(&g, &cfg, &SearchOptions::default()).unwrap();
        let a = autotune(&g, &cfg, &plan, 2, 10).unwrap();
        let b = autotune(&g, &cfg, &plan, 2, 10).unwrap();
        assert_eq!(a.tuned_us, b.tuned_us);
        assert_eq!(a.plan.decisions, b.plan.decisions);
    }
}
