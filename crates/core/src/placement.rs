//! Device placement markers.
//!
//! The original artifact "marks PIM-offloaded nodes by prefixing the node
//! names and passing them as Relay IR attribute to trigger the DRAM
//! back-end" (§4.3.1). We adopt the same convention: nodes whose name starts
//! with `pim::` execute on the PIM-enabled channels, everything else on the
//! GPU.

use pimflow_json::json_unit_enum;

/// Name prefix marking PIM-offloaded nodes.
pub const PIM_PREFIX: &str = "pim::";

/// Which device a node executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Runs on the GPU streaming multiprocessors.
    Gpu,
    /// Runs on the PIM-enabled memory channels.
    Pim,
}

json_unit_enum!(Placement { Gpu, Pim });

impl Placement {
    /// Placement encoded in a node name.
    pub fn of_name(name: &str) -> Placement {
        if name.starts_with(PIM_PREFIX) {
            Placement::Pim
        } else {
            Placement::Gpu
        }
    }

    /// Prefixes `base` so the node lands on this device.
    pub fn tag(self, base: &str) -> String {
        match self {
            Placement::Gpu => base.to_string(),
            Placement::Pim => format!("{PIM_PREFIX}{base}"),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Gpu => f.write_str("GPU"),
            Placement::Pim => f.write_str("PIM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(
            Placement::of_name(&Placement::Pim.tag("conv_3")),
            Placement::Pim
        );
        assert_eq!(
            Placement::of_name(&Placement::Gpu.tag("conv_3")),
            Placement::Gpu
        );
        assert_eq!(Placement::of_name("conv_3"), Placement::Gpu);
    }
}
