//! Device placement markers.
//!
//! The original artifact "marks PIM-offloaded nodes by prefixing the node
//! names and passing them as Relay IR attribute to trigger the DRAM
//! back-end" (§4.3.1). We adopt the same convention: nodes whose name starts
//! with `pim::` execute on the PIM-enabled channels, everything else on the
//! GPU.

use pimflow_isa::FusedRole;
use pimflow_json::json_unit_enum;

/// Name prefix marking PIM-offloaded nodes.
pub const PIM_PREFIX: &str = "pim::";

/// Name prefix marking members of a fusion group. It nests inside
/// [`PIM_PREFIX`], so every fused node is PIM-placed by construction; the
/// full tag is `pim::fuse.<gid>.<role>::<base>` with role codes `h`
/// (head), `m` (middle), `t` (tail), `r` (element-wise rider).
pub const FUSE_PREFIX: &str = "pim::fuse.";

/// Role of a node inside a fusion group, encoded in its placement tag.
///
/// Heavy members map onto the typed ISA's [`FusedRole`]s; riders are the
/// element-wise nodes between them, applied near the banks during the
/// `BANKFEED` hand-off (no program of their own).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedNodeRole {
    /// First heavy member (Drain → BankFeed).
    Head,
    /// Interior heavy member (both crossings elided).
    Middle,
    /// Last heavy member (BufWrite → BankFeed).
    Tail,
    /// Element-wise rider between heavy members.
    Rider,
}

impl FusedNodeRole {
    fn code(self) -> char {
        match self {
            FusedNodeRole::Head => 'h',
            FusedNodeRole::Middle => 'm',
            FusedNodeRole::Tail => 't',
            FusedNodeRole::Rider => 'r',
        }
    }

    fn from_code(c: char) -> Option<Self> {
        match c {
            'h' => Some(FusedNodeRole::Head),
            'm' => Some(FusedNodeRole::Middle),
            't' => Some(FusedNodeRole::Tail),
            'r' => Some(FusedNodeRole::Rider),
            _ => None,
        }
    }

    /// The typed-ISA lowering role of this tag. Riders have no program, so
    /// they map to the identity lowering.
    pub fn isa_role(self) -> FusedRole {
        match self {
            FusedNodeRole::Head => FusedRole::Head,
            FusedNodeRole::Middle => FusedRole::Middle,
            FusedNodeRole::Tail => FusedRole::Tail,
            FusedNodeRole::Rider => FusedRole::Standalone,
        }
    }
}

/// The name tagging `base` as a member of fusion group `gid` with `role`.
pub fn fused_tag(gid: usize, role: FusedNodeRole, base: &str) -> String {
    format!("{FUSE_PREFIX}{gid}.{}::{base}", role.code())
}

/// Parses a fusion-group tag: `(group id, role, base name)`. Returns
/// `None` for untagged names (including plain `pim::` placements).
pub fn parse_fused(name: &str) -> Option<(usize, FusedNodeRole, &str)> {
    let rest = name.strip_prefix(FUSE_PREFIX)?;
    let (gid_str, rest) = rest.split_once('.')?;
    let gid: usize = gid_str.parse().ok()?;
    let (role_str, base) = rest.split_once("::")?;
    let mut chars = role_str.chars();
    let role = FusedNodeRole::from_code(chars.next()?)?;
    if chars.next().is_some() {
        return None;
    }
    Some((gid, role, base))
}

/// Which device a node executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Runs on the GPU streaming multiprocessors.
    Gpu,
    /// Runs on the PIM-enabled memory channels.
    Pim,
}

json_unit_enum!(Placement { Gpu, Pim });

impl Placement {
    /// Placement encoded in a node name.
    pub fn of_name(name: &str) -> Placement {
        if name.starts_with(PIM_PREFIX) {
            Placement::Pim
        } else {
            Placement::Gpu
        }
    }

    /// Prefixes `base` so the node lands on this device.
    pub fn tag(self, base: &str) -> String {
        match self {
            Placement::Gpu => base.to_string(),
            Placement::Pim => format!("{PIM_PREFIX}{base}"),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Gpu => f.write_str("GPU"),
            Placement::Pim => f.write_str("PIM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_tag_roundtrip() {
        for (role, code) in [
            (FusedNodeRole::Head, 'h'),
            (FusedNodeRole::Middle, 'm'),
            (FusedNodeRole::Tail, 't'),
            (FusedNodeRole::Rider, 'r'),
        ] {
            let tag = fused_tag(3, role, "conv_7");
            assert_eq!(tag, format!("pim::fuse.3.{code}::conv_7"));
            assert_eq!(parse_fused(&tag), Some((3, role, "conv_7")));
            // Fused tags nest inside the PIM prefix.
            assert_eq!(Placement::of_name(&tag), Placement::Pim);
        }
        assert_eq!(parse_fused("pim::conv_7"), None);
        assert_eq!(parse_fused("conv_7"), None);
        assert_eq!(parse_fused("pim::fuse.x.h::conv_7"), None);
        assert_eq!(parse_fused("pim::fuse.1.z::conv_7"), None);
    }

    #[test]
    fn roundtrip() {
        assert_eq!(
            Placement::of_name(&Placement::Pim.tag("conv_3")),
            Placement::Pim
        );
        assert_eq!(
            Placement::of_name(&Placement::Gpu.tag("conv_3")),
            Placement::Gpu
        );
        assert_eq!(Placement::of_name("conv_3"), Placement::Gpu);
    }
}
