//! The evaluated PIM offloading mechanisms (§5).
//!
//! * **Baseline** — GPU-only execution with a 32-channel memory.
//! * **Newton+** — baseline Newton hardware with CONV/FC offloading support
//!   and multi-channel command scheduling (full offload or full GPU, no
//!   mixed-parallel execution).
//! * **Newton++** — Newton+ plus the PIM command optimizations (multiple
//!   global buffers, strided GWRITE, GWRITE latency hiding).
//! * **PIMFlow-md** — Newton++ with MD-DP mixed-parallel execution only.
//! * **PIMFlow-pl** — Newton++ with pipelined execution only.
//! * **PIMFlow** — full optimizations and execution-model support.

use crate::engine::{execute, EngineConfig, ExecutionReport};
use crate::search::{apply_plan, search, ExecutionPlan, SearchOptions};
use pimflow_ir::Graph;
use pimflow_json::{json_struct, json_unit_enum};

/// One of the six offloading mechanisms compared throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// GPU-only, 32 memory channels.
    Baseline,
    /// Original Newton command set, offload-or-not decisions.
    NewtonPlus,
    /// Newton+ with PIM-command optimizations.
    NewtonPlusPlus,
    /// Newton++ with MD-DP execution.
    PimflowMd,
    /// Newton++ with pipelined execution.
    PimflowPl,
    /// Everything combined.
    Pimflow,
}

json_unit_enum!(Policy {
    Baseline,
    NewtonPlus,
    NewtonPlusPlus,
    PimflowMd,
    PimflowPl,
    Pimflow
});

impl Policy {
    /// All mechanisms in paper order.
    pub fn all() -> [Policy; 6] {
        [
            Policy::Baseline,
            Policy::NewtonPlus,
            Policy::NewtonPlusPlus,
            Policy::PimflowMd,
            Policy::PimflowPl,
            Policy::Pimflow,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Baseline => "Baseline",
            Policy::NewtonPlus => "Newton+",
            Policy::NewtonPlusPlus => "Newton++",
            Policy::PimflowMd => "PIMFlow-md",
            Policy::PimflowPl => "PIMFlow-pl",
            Policy::Pimflow => "PIMFlow",
        }
    }

    /// Artifact CLI `--policy` spelling.
    pub fn from_cli(name: &str) -> Option<Policy> {
        match name.to_ascii_lowercase().as_str() {
            "baseline" | "gpu" => Some(Policy::Baseline),
            "newton+" | "newtonplus" => Some(Policy::NewtonPlus),
            "newton++" | "newtonplusplus" => Some(Policy::NewtonPlusPlus),
            "mddp" | "pimflow-md" => Some(Policy::PimflowMd),
            "pipeline" | "pimflow-pl" => Some(Policy::PimflowPl),
            "pimflow" => Some(Policy::Pimflow),
            _ => None,
        }
    }

    /// Hardware/engine configuration of this mechanism.
    pub fn engine_config(self) -> EngineConfig {
        match self {
            Policy::Baseline => EngineConfig::baseline_gpu(),
            Policy::NewtonPlus => EngineConfig::newton_plus(),
            _ => EngineConfig::pimflow(),
        }
    }

    /// Execution-mode search space of this mechanism (`None` = no search,
    /// everything stays on the GPU).
    pub fn search_options(self) -> Option<SearchOptions> {
        match self {
            Policy::Baseline => None,
            Policy::NewtonPlus | Policy::NewtonPlusPlus => Some(SearchOptions {
                offload_only: true,
                allow_pipeline: false,
                ..SearchOptions::default()
            }),
            Policy::PimflowMd => Some(SearchOptions {
                allow_pipeline: false,
                ..SearchOptions::default()
            }),
            Policy::PimflowPl => Some(SearchOptions {
                offload_only: true,
                allow_pipeline: true,
                ..SearchOptions::default()
            }),
            Policy::Pimflow => Some(SearchOptions::default()),
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of evaluating one model under one mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvaluation {
    /// Mechanism evaluated.
    pub policy: Policy,
    /// Model name.
    pub model: String,
    /// The plan (empty for the baseline).
    pub plan: Option<ExecutionPlan>,
    /// End-to-end report from the execution engine.
    pub report: ExecutionReport,
    /// Sum of per-decision costs of PIM-candidate **CONV** layers (the
    /// Fig. 9 top metric; FC layers excluded).
    pub conv_layer_us: f64,
}

json_struct!(PolicyEvaluation {
    policy,
    model,
    plan,
    report,
    conv_layer_us
});

/// Runs the full compile-and-simulate flow for `graph` under `policy`:
/// search (per the mechanism's mode space), transform, execute.
///
/// # Errors
///
/// Propagates any [`crate::Error`] from the search, the plan application,
/// or the engine (e.g. a structurally invalid graph).
pub fn evaluate(graph: &Graph, policy: Policy) -> crate::Result<PolicyEvaluation> {
    let cfg = policy.engine_config();
    match policy.search_options() {
        None => {
            let report = execute(graph, &cfg)?;
            let conv_layer_us = conv_time_from_report(graph, &report);
            Ok(PolicyEvaluation {
                policy,
                model: graph.name.clone(),
                plan: None,
                report,
                conv_layer_us,
            })
        }
        Some(opts) => {
            let plan = search(graph, &cfg, &opts)?;
            let transformed = apply_plan(graph, &plan)?;
            let report = execute(&transformed, &cfg)?;
            let conv_layer_us = plan.conv_layer_us;
            Ok(PolicyEvaluation {
                policy,
                model: graph.name.clone(),
                plan: Some(plan),
                report,
                conv_layer_us,
            })
        }
    }
}

/// Baseline conv-layer time: the engine durations of PIM-candidate conv
/// nodes in the untransformed timeline.
fn conv_time_from_report(graph: &Graph, report: &ExecutionReport) -> f64 {
    graph
        .node_ids()
        .filter(|&id| {
            graph.is_pim_candidate(id) && matches!(graph.node(id).op, pimflow_ir::Op::Conv2d(_))
        })
        .filter_map(|id| report.timing(&graph.node(id).name))
        .map(|t| t.finish_us - t.start_us)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::models;

    #[test]
    fn all_policies_evaluate_toy() {
        let g = models::toy();
        for p in Policy::all() {
            let e = evaluate(&g, p).unwrap();
            assert!(e.report.total_us > 0.0, "{p:?}");
            assert!(e.conv_layer_us >= 0.0);
        }
    }

    #[test]
    fn cli_names_roundtrip() {
        for (s, p) in [
            ("Newton+", Policy::NewtonPlus),
            ("Newton++", Policy::NewtonPlusPlus),
            ("MDDP", Policy::PimflowMd),
            ("Pipeline", Policy::PimflowPl),
            ("PIMFlow", Policy::Pimflow),
        ] {
            assert_eq!(Policy::from_cli(s), Some(p));
        }
        assert_eq!(Policy::from_cli("what"), None);
    }

    #[test]
    fn pimflow_never_slower_than_newton_pp_on_toy() {
        let g = models::toy();
        let npp = evaluate(&g, Policy::NewtonPlusPlus).unwrap();
        let pf = evaluate(&g, Policy::Pimflow).unwrap();
        assert!(pf.report.total_us <= npp.report.total_us * 1.01);
    }
}
