//! # pimflow
//!
//! The PIMFlow compiler and runtime (CGO 2023), reproduced in Rust: an
//! end-to-end software stack that accelerates CNN inference on a GPU whose
//! GDDR6 memory embeds Newton/AiM-style processing-in-memory MAC units.
//!
//! The crate mirrors the paper's three components (Fig. 5):
//!
//! * **PIM-aware graph transformations** ([`passes`]) — the multi-device
//!   data-parallel (MD-DP) split pass and the pipelining pass create
//!   inter-node parallelism that lets GPU and PIM execute concurrently;
//!   [`passes::cleanup::cleanup`] canonicalizes the transformed graphs. Every
//!   transformation is numerically exact (verified against the
//!   `pimflow-kernels` reference executor).
//! * **Execution mode and task size search** ([`search`], Algorithm 1) —
//!   profiles every PIM-candidate layer at 10% MD-DP ratio intervals and
//!   every pipelining candidate subgraph on the simulated hardware, then
//!   picks the optimal combination by dynamic programming.
//! * **DRAM-PIM back-end** ([`codegen`], [`memopt`], [`engine`]) — lowers
//!   offloaded CONV/FC nodes to DRAM-PIM command blocks, schedules them
//!   across PIM channels, prices data movement with the memory-layout
//!   optimizer, and simulates the mixed-parallel GPU+PIM timeline.
//!
//! The six offloading mechanisms compared in the paper's evaluation are
//! packaged as [`policy::Policy`].
//!
//! ## Example
//!
//! ```
//! use pimflow::engine::{execute, EngineConfig};
//! use pimflow::search::{apply_plan, Search};
//!
//! use pimflow_ir::models;
//!
//! # fn main() -> pimflow::error::Result<()> {
//! let model = models::toy();
//! let cfg = EngineConfig::pimflow();
//! let plan = Search::new(&model, &cfg).run()?;
//! let transformed = apply_plan(&model, &plan)?;
//! let report = execute(&transformed, &cfg)?;
//! let baseline = execute(&model, &EngineConfig::baseline_gpu())?;
//! assert!(report.total_us < baseline.total_us);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autotune;
pub mod backend;
pub mod batch;
pub mod codegen;
pub mod costcache;
pub mod engine;
pub mod error;
pub mod evaluation;
pub mod layout;
pub mod memopt;
pub mod passes;
pub mod placement;
pub mod policy;
pub mod report;
pub mod search;

pub use error::{Error, Result};
pub use pimflow_isa::{BackendKind, CrossbarConfig};
