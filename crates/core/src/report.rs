//! Human-readable rendering of execution reports.
//!
//! Renders the two-stream (GPU + PIM) timeline of an [`ExecutionReport`] as
//! an ASCII Gantt chart, so the overlap created by the MD-DP and pipelining
//! transformations is visible directly in a terminal.
//!
//! [`ExecutionReport`]: crate::engine::ExecutionReport

use crate::engine::ExecutionReport;
use crate::placement::Placement;
use std::fmt::Write as _;

/// Renders a Gantt chart of the report's non-fused node executions.
///
/// `width` is the number of columns the time axis occupies (clamped to at
/// least 20). Fused and zero-duration entries are omitted. GPU rows draw
/// with `#`, PIM rows with `=`.
pub fn render_timeline(report: &ExecutionReport, width: usize) -> String {
    let width = width.max(20);
    let total = report.total_us.max(1e-9);
    let name_w = report
        .timings
        .iter()
        .filter(|t| t.finish_us > t.start_us)
        .map(|t| t.name.len())
        .max()
        .unwrap_or(8)
        .min(36);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>4} |{}| total {:.1} us",
        "node",
        "dev",
        "-".repeat(width),
        report.total_us
    );
    for t in &report.timings {
        if t.finish_us <= t.start_us {
            continue;
        }
        let from = ((t.start_us / total) * width as f64).floor() as usize;
        let to = (((t.finish_us / total) * width as f64).ceil() as usize).min(width);
        let to = to.max(from + 1).min(width);
        let glyph = match t.device {
            Placement::Gpu => '#',
            Placement::Pim => '=',
        };
        let mut bar = String::with_capacity(width);
        bar.extend(std::iter::repeat_n(' ', from));
        bar.extend(std::iter::repeat_n(glyph, to - from));
        bar.extend(std::iter::repeat_n(' ', width - to));
        let mut name = t.name.clone();
        if name.len() > name_w {
            name.truncate(name_w - 1);
            name.push('~');
        }
        let dev = match t.device {
            Placement::Gpu => "GPU",
            Placement::Pim => "PIM",
        };
        let _ = writeln!(out, "{name:<name_w$}  {dev:>4} |{bar}|");
    }
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>4}  GPU busy {:.1} us, PIM busy {:.1} us, {} KB moved",
        "",
        "",
        report.gpu_busy_us,
        report.pim_busy_us,
        report.transfer_bytes / 1024
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, EngineConfig};
    use crate::passes::split_node;
    use pimflow_ir::models;

    #[test]
    fn timeline_renders_every_timed_node() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        let text = render_timeline(&r, 60);
        for t in &r.timings {
            if t.finish_us > t.start_us {
                let shown = t.name.chars().take(10).collect::<String>();
                assert!(text.contains(&shown), "missing {}", t.name);
            }
        }
        assert!(text.contains("total"));
    }

    #[test]
    fn pim_rows_use_distinct_glyph() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let text = render_timeline(&r, 60);
        let pim_line = text.lines().find(|l| l.contains("PIM")).expect("PIM row");
        assert!(pim_line.contains('='), "{pim_line}");
    }

    #[test]
    fn bars_stay_within_axis() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let text = render_timeline(&r, 40);
        for line in text.lines().skip(1) {
            if let (Some(open), Some(close)) = (line.find('|'), line.rfind('|')) {
                assert_eq!(close - open - 1, 40, "axis width drifted: {line}");
            }
        }
    }
}
