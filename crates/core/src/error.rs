//! Unified error type for the fallible `pimflow` public API.
//!
//! Every entry point that can fail on a malformed-but-constructible input —
//! a cyclic graph, an out-of-range split ratio, a plan naming nodes the
//! graph does not have — returns [`Result`] instead of panicking. The
//! transformation passes' historical `PassError` is a type alias of
//! [`Error`], so pass-level code and engine/search-level code share one
//! error surface.

use pimflow_ir::GraphError;
use pimflow_pimsim::ConfigError;
use std::fmt;

/// Why a `pimflow` operation could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A transformation's preconditions do not hold for this graph/node
    /// (wrong op kind, non-splittable shape, unknown node name, ...).
    NotApplicable(String),
    /// The underlying graph is structurally invalid (cycle, dangling
    /// reference, shape inference failure).
    Graph(GraphError),
    /// A split ratio outside the valid `0..=100` GPU-percent range.
    BadRatio(u32),
    /// The reference executor failed while running a graph (malformed
    /// inputs, kernel operand mismatch).
    Execution(String),
    /// A PIM hardware configuration violated one of its invariants.
    Config(ConfigError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotApplicable(m) => write!(f, "pass not applicable: {m}"),
            Error::Graph(e) => write!(f, "graph error after pass: {e}"),
            Error::BadRatio(p) => {
                write!(f, "gpu percent {p} is outside the valid range 0..=100")
            }
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Config(e) => write!(f, "invalid PIM configuration: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

/// Result alias used across the `pimflow` public API.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::NotApplicable("node `x` is not a conv".into());
        assert!(e.to_string().contains("not applicable"));
        assert!(Error::BadRatio(250).to_string().contains("250"));
        let g: Error = GraphError::Cycle("a".into()).into();
        assert!(g.to_string().contains("cycle"));
    }

    #[test]
    fn graph_errors_expose_their_source() {
        use std::error::Error as _;
        let e = Error::from(GraphError::Dangling("value".into()));
        assert!(e.source().is_some());
        assert!(Error::BadRatio(101).source().is_none());
    }

    #[test]
    fn config_errors_map_and_expose_their_source() {
        use std::error::Error as _;
        let e = Error::from(ConfigError::NoPimChannels);
        assert!(e.to_string().contains("PIM channel"));
        assert!(e.source().is_some());
    }
}
