//! Canonical workload interning and the cross-search cost cache.
//!
//! Algorithm 1 prices every `(node, ratio, split/pipeline)` candidate on
//! the simulated hardware, and CNN zoos repeat identical layer shapes
//! pervasively — ResNet's stacked blocks, the EfficientNet family, the
//! batch sweep of `pimflow serve --precompile`. Historically the only memo
//! was a per-search `HashMap` inside the search's profiler, discarded when
//! the search returned, so serving and the bench sweeps re-simulated the
//! same workloads thousands of times.
//!
//! This module makes the memo a first-class, shareable artifact:
//!
//! * [`WorkloadKey`] — the canonical identity of one PIM cost query: the
//!   folded shape fingerprint ([`PimWorkload`], which already encodes op
//!   kind, split ratio and batch via its row count) plus every engine-config
//!   field that affects the PIM estimate (effective channel count, raw
//!   [`ChannelMask`](crate::engine::ChannelMask) bits, command scheduling
//!   granularity, and the full [`PimConfig`] fingerprint).
//! * [`pim_cost_us`] — the PIM schedule estimate as a *pure function* of a
//!   key: same key, same microseconds, always.
//! * [`CostTable`] — an interned read-only table: keys become dense `u32`
//!   ids (via [`pimflow_ir::Interner`]) indexing a parallel cost vector.
//! * [`CostCache`] — the shared, read-mostly cache: cloning it is an `Arc`
//!   clone, [`snapshot`](CostCache::snapshot) hands workers an immutable
//!   base table, and [`merge`](CostCache::merge) folds their per-worker
//!   [`MemoShard`]s back in at the same deterministic points where the
//!   search's memo shards have always merged.
//!
//! ## Determinism contract
//!
//! Plans are unaffected by caching because [`pim_cost_us`] is pure: a cache
//! changes only *recompute rates*, never values. Counters are defined so
//! they are scheduling-invariant too: a shard records only its total
//! `lookups` (a pure function of graph/options/mask) and the entries it had
//! to compute; at each merge, `misses` grows by the number of keys *newly
//! inserted* into the shared table and `hits` by `lookups − newly
//! inserted`. Total misses therefore telescope to `final entries − initial
//! entries`, so [`counters`](CostCache::counters) read after any set of
//! searches completes is byte-identical at every pool width — duplicate
//! simulations by racing workers are deliberately invisible. See DESIGN.md
//! §4.9 for what is deliberately *excluded* from the key (the GPU model,
//! whose analytic queries are orders of magnitude cheaper than a PIM
//! command-trace simulation).

use crate::codegen::{execute_workload_fused, PimWorkload};
use crate::engine::EngineConfig;
use pimflow_ir::Interner;
use pimflow_isa::{crossbar, BackendKind, CrossbarConfig, FusedRole};
use pimflow_json::json_struct;
use pimflow_pimsim::{PimConfig, ScheduleGranularity};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Canonical identity of one PIM cost query.
///
/// [`PimWorkload`] is the folded shape/attr fingerprint (the MD-DP ratio
/// and the batch size both fold into `rows`, so a batch-2 layer at a 50%
/// split shares its key with the batch-1 layer at 100% — exactly the reuse
/// the serving precompile sweep exploits); the remaining fields pin every
/// engine-config input of the PIM schedule estimate. The raw mask bits are
/// part of the key even though the estimate only depends on the channel
/// *count*: entries priced under one failure pattern must never leak into
/// another (see `tests/cost_cache.rs`), and the conservative key makes that
/// isolation structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// Folded workload shape (rows already scaled by ratio and batch).
    pub workload: PimWorkload,
    /// Which PIM hardware model prices this key. Newton and crossbar costs
    /// for the same shape are different pure functions, so the discriminant
    /// keeps their entries structurally apart in one shared table.
    pub backend: BackendKind,
    /// Effective PIM channel count the estimate runs over (min 1, mirroring
    /// the search profiler's total cost model).
    pub channels: u32,
    /// Raw channel-availability mask bits
    /// ([`ChannelMask::bits`](crate::engine::ChannelMask::bits)).
    pub mask_bits: u64,
    /// Command scheduling granularity of the estimate.
    pub granularity: ScheduleGranularity,
    /// Fingerprint of the priced hardware model:
    /// [`PimConfig::fingerprint`] for Newton keys,
    /// [`CrossbarConfig::fingerprint`] for crossbar keys.
    pub pim_fingerprint: u64,
    /// Fusion-group role of the lowering ([`FusedRole::Standalone`] for
    /// every unfused query). Fused roles elide bus crossings, so the same
    /// shape prices differently per role — the discriminant keeps the four
    /// pure functions structurally apart in one shared table.
    pub fused: FusedRole,
    /// Interior MD-DP GPU ratio of a fused-group query, in percent (0 for
    /// every per-member and unfused query). Group-level entries priced at
    /// different interior splits are different pure functions of the same
    /// head shape, so the ratio is part of the identity — the same
    /// conservative-discriminant rationale as `mask_bits`.
    pub interior: u32,
    /// FNV-1a fingerprint over a fused group's full member list (workload
    /// bits and roles), 0 for per-member queries. Group-level chain costs
    /// depend on every member, not just the head the key's `workload`
    /// names; the fingerprint keeps two groups sharing a head structurally
    /// apart (mirrors [`PimConfig::fingerprint`]'s hashing discipline).
    pub group_fp: u64,
}

impl WorkloadKey {
    /// Builds the Newton key for pricing `workload` under `cfg`.
    pub fn new(workload: PimWorkload, cfg: &EngineConfig) -> Self {
        WorkloadKey {
            workload,
            backend: BackendKind::Newton,
            channels: cfg.effective_pim_channels().max(1) as u32,
            mask_bits: cfg.pim_channel_mask.bits(),
            granularity: cfg.granularity,
            pim_fingerprint: cfg.pim.fingerprint(),
            fused: FusedRole::Standalone,
            interior: 0,
            group_fp: 0,
        }
    }

    /// Builds the crossbar key for pricing `workload` under `cfg` on the
    /// `xbar` array model. Channel count and mask bits are shared with the
    /// Newton key (the same physical channels host either engine); the
    /// fingerprint pins the crossbar geometry and timing instead of the
    /// DRAM timing.
    pub fn crossbar(workload: PimWorkload, cfg: &EngineConfig, xbar: &CrossbarConfig) -> Self {
        WorkloadKey {
            workload,
            backend: BackendKind::Crossbar,
            channels: cfg.effective_pim_channels().max(1) as u32,
            mask_bits: cfg.pim_channel_mask.bits(),
            granularity: cfg.granularity,
            pim_fingerprint: xbar.fingerprint(),
            fused: FusedRole::Standalone,
            interior: 0,
            group_fp: 0,
        }
    }

    /// The same key re-rolled for fusion-group role `role`.
    pub fn with_role(self, role: FusedRole) -> Self {
        WorkloadKey {
            fused: role,
            ..self
        }
    }

    /// The same key re-rolled as a group-level entry: the head's shape
    /// plus the group fingerprint and interior split that complete the
    /// chain cost's identity.
    pub fn with_group(self, interior: u32, group_fp: u64) -> Self {
        WorkloadKey {
            interior,
            group_fp,
            ..self
        }
    }
}

/// The PIM schedule estimate as a pure function of its [`WorkloadKey`]:
/// microseconds to execute the keyed workload over the keyed channel count
/// at the keyed granularity. `pim` must be the config the key was built
/// from (checked in debug builds via the fingerprint).
pub fn pim_cost_us(key: &WorkloadKey, pim: &PimConfig) -> f64 {
    debug_assert_eq!(
        key.backend,
        BackendKind::Newton,
        "Newton pricer, crossbar key"
    );
    debug_assert_eq!(
        key.pim_fingerprint,
        pim.fingerprint(),
        "workload key priced under a different PimConfig"
    );
    debug_assert_eq!(key.group_fp, 0, "per-member pricer fed a group-level key");
    execute_workload_fused(
        &key.workload,
        pim,
        key.channels as usize,
        key.granularity,
        key.fused,
    )
    .time_us
}

/// The crossbar schedule estimate as a pure function of its
/// [`WorkloadKey`]: microseconds to run the keyed workload weight-stationary
/// over the keyed channel count. The crossbar lowering is insensitive to
/// `strided`/`segments` — weights are pre-programmed into the arrays, so
/// there is no GWRITE stream for layout to shape — which only widens the
/// key reuse; the key still carries them for structural parity with Newton.
/// `xbar` must be the config the key was built from (checked in debug
/// builds via the fingerprint).
pub fn crossbar_cost_us(key: &WorkloadKey, xbar: &CrossbarConfig) -> f64 {
    debug_assert_eq!(
        key.backend,
        BackendKind::Crossbar,
        "crossbar pricer, Newton key"
    );
    debug_assert_eq!(
        key.pim_fingerprint,
        xbar.fingerprint(),
        "workload key priced under a different CrossbarConfig"
    );
    debug_assert_eq!(key.group_fp, 0, "per-member pricer fed a group-level key");
    let shape = crossbar::MatmulShape {
        rows: key.workload.rows,
        k_elems: key.workload.k_elems,
        out_channels: key.workload.out_channels,
    };
    crossbar::estimate_shape_us_fused(&shape, key.channels as usize, xbar, key.fused)
}

/// Hit/miss/entry counters of a cost cache, as surfaced in
/// `ExecutionReport` and `ServeReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache (shard or shared table).
    pub hits: u64,
    /// Lookups that had to run the PIM simulator.
    pub misses: u64,
    /// Distinct workload keys in the table.
    pub entries: u64,
}

json_struct!(CacheCounters {
    hits,
    misses,
    entries,
});

impl CacheCounters {
    /// Hits as a fraction of all lookups (0.0 before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One worker's unsynchronized memo shard: the keys it had to price itself
/// during a search phase, plus its total lookup count. Produced by the
/// search profiler, consumed by [`CostCache::merge`].
#[derive(Debug, Default)]
pub struct MemoShard {
    entries: HashMap<WorkloadKey, f64>,
    lookups: u64,
}

impl MemoShard {
    /// An empty shard.
    pub fn new() -> Self {
        MemoShard::default()
    }

    /// Records one cost query against this shard (hit or miss alike).
    pub(crate) fn count_lookup(&mut self) {
        self.lookups += 1;
    }

    /// The cost this shard computed for `key`, if any.
    pub(crate) fn get(&self, key: &WorkloadKey) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Stores a freshly computed cost.
    pub(crate) fn insert(&mut self, key: WorkloadKey, cost: f64) {
        self.entries.insert(key, cost);
    }

    /// Number of keys this shard computed itself.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the shard computed nothing (every lookup was a hit).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cost queries the shard answered.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// An immutable interned cost table: each distinct [`WorkloadKey`] gets a
/// dense `u32` id indexing a parallel cost vector. Snapshots are shared
/// read-only across worker threads via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    keys: Interner<WorkloadKey>,
    costs: Vec<f64>,
}

impl CostTable {
    /// The cached cost of `key`, if present.
    pub fn get(&self, key: &WorkloadKey) -> Option<f64> {
        self.keys.get(key).map(|id| self.costs[id as usize])
    }

    /// Inserts `key` if absent; returns whether it was newly inserted.
    /// Existing entries are never overwritten — costs are values of a pure
    /// function, so a duplicate carries the same number.
    fn insert_if_missing(&mut self, key: WorkloadKey, cost: f64) -> bool {
        let before = self.keys.len();
        let id = self.keys.intern(key);
        if id as usize == before {
            self.costs.push(cost);
            true
        } else {
            false
        }
    }

    /// Distinct keys in the table.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Shared state behind a [`CostCache`] handle.
#[derive(Debug, Default)]
struct CacheState {
    snapshot: Arc<CostTable>,
    hits: u64,
    misses: u64,
}

/// The shared, read-mostly, cross-search PIM cost cache.
///
/// Cloning the handle is an `Arc` clone — every clone reads and feeds the
/// same table. Workers never lock it on the hot path: a search phase takes
/// one [`snapshot`](CostCache::snapshot) up front, each worker resolves
/// lookups against its private shard and the snapshot, and the shards merge
/// back under one short lock when the phase ends (the same points where the
/// search's memo shards have always merged). The cache persists across
/// `Search::run` calls, which is where the cross-search speedup comes from.
#[derive(Debug, Clone, Default)]
pub struct CostCache {
    inner: Arc<Mutex<CacheState>>,
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> Self {
        CostCache::default()
    }

    /// The current immutable table. Lookups against a snapshot never block
    /// and never observe later merges — a later merge republishes a new
    /// `Arc`, it does not mutate tables already handed out.
    pub fn snapshot(&self) -> Arc<CostTable> {
        self.inner
            .lock()
            .expect("cost cache lock poisoned")
            .snapshot
            .clone()
    }

    /// Folds worker shards into the shared table and updates the counters.
    ///
    /// `misses` grows by the number of keys newly inserted, `hits` by the
    /// shards' total lookups minus that — so after any set of searches
    /// completes the counters are independent of pool width and scheduling
    /// (duplicate computations by racing workers count as hits, because the
    /// table gained nothing from them).
    pub fn merge(&self, shards: impl IntoIterator<Item = MemoShard>) {
        let shards: Vec<MemoShard> = shards.into_iter().collect();
        let lookups: u64 = shards.iter().map(|s| s.lookups).sum();
        if lookups == 0 && shards.iter().all(|s| s.is_empty()) {
            return;
        }
        let mut state = self.inner.lock().expect("cost cache lock poisoned");
        let mut added = 0u64;
        if shards.iter().any(|s| !s.is_empty()) {
            let mut table = (*state.snapshot).clone();
            for shard in shards {
                for (key, cost) in shard.entries {
                    if table.insert_if_missing(key, cost) {
                        added += 1;
                    }
                }
            }
            state.snapshot = Arc::new(table);
        }
        state.misses += added;
        state.hits += lookups - added;
    }

    /// Current hit/miss/entry counters.
    pub fn counters(&self) -> CacheCounters {
        let state = self.inner.lock().expect("cost cache lock poisoned");
        CacheCounters {
            hits: state.hits,
            misses: state.misses,
            entries: state.snapshot.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(rows: usize) -> PimWorkload {
        PimWorkload {
            rows,
            k_elems: 64,
            out_channels: 32,
            strided: false,
            segments: 1,
        }
    }

    fn key(rows: usize, cfg: &EngineConfig) -> WorkloadKey {
        WorkloadKey::new(workload(rows), cfg)
    }

    #[test]
    fn key_separates_masks_and_configs() {
        let cfg = EngineConfig::pimflow();
        let a = key(100, &cfg);
        assert_eq!(a, key(100, &cfg), "same inputs, same key");
        // Same surviving channel count, different failure pattern: the raw
        // bits keep the keys apart.
        let m1 = cfg.with_mask(crate::engine::ChannelMask::all().without(0));
        let m2 = cfg.with_mask(crate::engine::ChannelMask::all().without(1));
        let k1 = key(100, &m1);
        let k2 = key(100, &m2);
        assert_eq!(k1.channels, k2.channels);
        assert_ne!(k1, k2);
        // A different PIM substrate changes the fingerprint component.
        let hbm = EngineConfig {
            pim: pimflow_pimsim::PimConfig::hbm_pim_like(),
            ..cfg.clone()
        };
        assert_ne!(a, key(100, &hbm));
        // And the workload itself matters.
        assert_ne!(a, key(101, &cfg));
        // A crossbar key for the same shape never collides with Newton.
        let xbar = CrossbarConfig::pimcomp_like();
        let xk = WorkloadKey::crossbar(workload(100), &cfg, &xbar);
        assert_eq!(xk.backend, BackendKind::Crossbar);
        assert_ne!(a, xk);
        // Group-level entries (chain cost keyed on the head, fingerprinted
        // over the members, at an interior ratio) never collide with the
        // head's own per-member entry, nor across groups or ratios.
        let g1 = a.with_group(0, 0xdead_beef);
        let g2 = a.with_group(0, 0xfeed_face);
        let g1r = a.with_group(25, 0xdead_beef);
        assert_ne!(a, g1);
        assert_ne!(g1, g2);
        assert_ne!(g1, g1r);
        assert_eq!(a.with_group(0, 0), a);
    }

    #[test]
    fn crossbar_cost_is_pure_and_layout_insensitive() {
        let cfg = EngineConfig::pimflow();
        let xbar = CrossbarConfig::pimcomp_like();
        let k = WorkloadKey::crossbar(workload(196), &cfg, &xbar);
        let a = crossbar_cost_us(&k, &xbar);
        let b = crossbar_cost_us(&k, &xbar);
        assert!(a > 0.0);
        assert_eq!(a.to_bits(), b.to_bits(), "bitwise reproducible");
        // Weight-stationary arrays see no input-layout difference.
        let strided = WorkloadKey::crossbar(
            PimWorkload {
                strided: true,
                segments: 4,
                ..workload(196)
            },
            &cfg,
            &xbar,
        );
        assert_eq!(a.to_bits(), crossbar_cost_us(&strided, &xbar).to_bits());
    }

    #[test]
    fn pim_cost_is_pure_in_the_key() {
        let cfg = EngineConfig::pimflow();
        let k = key(196, &cfg);
        let a = pim_cost_us(&k, &cfg.pim);
        let b = pim_cost_us(&k, &cfg.pim);
        assert!(a > 0.0);
        assert_eq!(a.to_bits(), b.to_bits(), "bitwise reproducible");
        let direct = crate::codegen::execute_workload(
            &k.workload,
            &cfg.pim,
            k.channels as usize,
            k.granularity,
        )
        .time_us;
        assert_eq!(a.to_bits(), direct.to_bits());
    }

    #[test]
    fn fused_roles_get_their_own_entries_and_cheaper_io() {
        let cfg = EngineConfig::pimflow();
        let base = key(196, &cfg);
        for role in [FusedRole::Head, FusedRole::Middle, FusedRole::Tail] {
            let fused = base.with_role(role);
            assert_ne!(base, fused, "role must separate keys");
            let standalone_us = pim_cost_us(&base, &cfg.pim);
            let fused_us = pim_cost_us(&fused, &cfg.pim);
            assert!(
                fused_us <= standalone_us,
                "{role:?}: fused {fused_us} > standalone {standalone_us}"
            );
        }
        assert_eq!(base.with_role(FusedRole::Standalone), base);
    }

    #[test]
    fn merge_counts_newly_inserted_as_misses() {
        let cfg = EngineConfig::pimflow();
        let cache = CostCache::new();
        let mut shard = MemoShard::new();
        for rows in [10, 20] {
            shard.count_lookup();
            shard.insert(key(rows, &cfg), rows as f64);
        }
        shard.count_lookup(); // a third lookup answered by the shard itself
        cache.merge([shard]);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 2,
                entries: 2
            }
        );
        // A second search re-looking-up the same keys computes nothing.
        let mut warm = MemoShard::new();
        warm.count_lookup();
        warm.count_lookup();
        cache.merge([warm]);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 3,
                misses: 2,
                entries: 2
            }
        );
    }

    #[test]
    fn racing_duplicates_count_as_hits() {
        // Two workers computed the same key in their private shards: the
        // table gains one entry, so one of the two counts as a hit — the
        // totals cannot depend on which worker "won".
        let cfg = EngineConfig::pimflow();
        let cache = CostCache::new();
        let mut a = MemoShard::new();
        a.count_lookup();
        a.insert(key(50, &cfg), 1.25);
        let mut b = MemoShard::new();
        b.count_lookup();
        b.insert(key(50, &cfg), 1.25);
        cache.merge([a, b]);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn snapshots_are_immutable() {
        let cfg = EngineConfig::pimflow();
        let cache = CostCache::new();
        let before = cache.snapshot();
        let mut shard = MemoShard::new();
        shard.count_lookup();
        shard.insert(key(7, &cfg), 3.5);
        cache.merge([shard]);
        assert!(before.is_empty(), "old snapshot must not see the merge");
        let after = cache.snapshot();
        assert_eq!(after.len(), 1);
        assert_eq!(after.get(&key(7, &cfg)), Some(3.5));
        assert_eq!(after.get(&key(8, &cfg)), None);
    }

    #[test]
    fn clones_share_one_table() {
        let cfg = EngineConfig::pimflow();
        let cache = CostCache::new();
        let alias = cache.clone();
        let mut shard = MemoShard::new();
        shard.count_lookup();
        shard.insert(key(11, &cfg), 9.0);
        alias.merge([shard]);
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.snapshot().get(&key(11, &cfg)), Some(9.0));
    }
}
