//! Mixed-parallel execution engine (§4.2, §4.3.1).
//!
//! Simulates a transformed graph on the PIM-enabled GPU memory system: GPU
//! kernels and PIM kernels run on two parallel streams, nodes start when
//! their data dependencies and their device are free, and data crossing the
//! GPU/PIM channel boundary pays the memory-network transfer (Fig. 4). The
//! overlap the MD-DP and pipelining transformations create — independent
//! GPU- and PIM-placed nodes — turns into wall-clock overlap here.
//!
//! GPU-side fusion: BN / activation / element-wise nodes directly consuming
//! a GPU convolution or GEMM are epilogue-fused (no launch, no extra DRAM
//! round-trip), matching the cuDNN/CUTLASS mappings the artifact relies on.

use crate::codegen::{
    execute_group_overlapped_us, execute_workload_fused_per_channel, PimWorkload,
};
use crate::costcache::CacheCounters;
use crate::error::Result;
use crate::memopt::{data_move_bytes, is_data_move};
use crate::placement::{parse_fused, FusedNodeRole, Placement};
use pimflow_gpusim::{kernel_for_node, GpuConfig, KernelProfile};
use pimflow_ir::{ActivationKind, Graph, NodeId, Op, ValueId};
use pimflow_isa::{CrossbarConfig, FusedRole};
use pimflow_json::json_struct;
use pimflow_pimsim::{ChannelStats, FaultPlan, PimConfig, PimEnergyParams, ScheduleGranularity};
use std::collections::{BTreeMap, HashMap};

/// Availability mask over the PIM channels: bit `c` set means channel `c`
/// is up. The default mask reports every channel available; masks only
/// matter for the first `pim_channels` bits of a configuration.
///
/// The mask is the compiler-level view of the fault model: hard-failed
/// channels are cleared (the search and the engine route no work there),
/// while stalled or derated channels stay set — they are slow, not gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelMask(u64);

impl Default for ChannelMask {
    fn default() -> Self {
        ChannelMask::all()
    }
}

impl ChannelMask {
    /// Every channel available.
    pub fn all() -> Self {
        ChannelMask(u64::MAX)
    }

    /// A mask from raw bits (bit `c` = channel `c` up).
    pub fn from_bits(bits: u64) -> Self {
        ChannelMask(bits)
    }

    /// The mask a [`FaultPlan`] implies for `total` channels: dead channels
    /// cleared, everything else (including stalled/derated channels) set.
    pub fn from_fault_plan(plan: &FaultPlan, total: usize) -> Self {
        let mut mask = ChannelMask::all();
        for c in 0..total.min(64) {
            if plan.is_dead(c) {
                mask = mask.without(c);
            }
        }
        mask
    }

    /// Raw bit representation.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether channel `c` is up (channels ≥ 64 are always reported up).
    pub fn is_up(self, c: usize) -> bool {
        c >= 64 || self.0 & (1 << c) != 0
    }

    /// This mask with channel `c` marked down.
    pub fn without(self, c: usize) -> Self {
        if c >= 64 {
            self
        } else {
            ChannelMask(self.0 & !(1 << c))
        }
    }

    /// This mask with channel `c` marked up again.
    pub fn with(self, c: usize) -> Self {
        if c >= 64 {
            self
        } else {
            ChannelMask(self.0 | (1 << c))
        }
    }

    /// Number of available channels among the first `total`.
    pub fn count_up(self, total: usize) -> usize {
        (0..total).filter(|&c| self.is_up(c)).count()
    }
}

/// Which PIM hardware models the Algorithm-1 search may place layers on.
///
/// Every PIM channel hosts the Newton DRAM-PIM engine; the crossbar
/// variants additionally model a PIMCOMP-style compute-in-array substrate
/// on the same channels. Under [`Mixed`](PimBackendSet::Mixed) the search
/// prices each candidate layer on both models and records the cheaper one
/// in the plan's [`Decision::Split`](crate::search::Decision::Split)
/// backend field. The execution engine itself replays Newton timing only —
/// `predicted_us` is the comparison metric for crossbar placements (the
/// `bench::backend_sweep` artifact is built on it), matching how the
/// search has always priced pipeline chains.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PimBackendSet {
    /// Newton DRAM-PIM only — the historical behaviour, and the default.
    #[default]
    NewtonOnly,
    /// Crossbar compute-in-array only (forces every PIM placement onto the
    /// crossbar cost model).
    CrossbarOnly(CrossbarConfig),
    /// Both models available; the search picks per layer.
    Mixed(CrossbarConfig),
}

impl PimBackendSet {
    /// The crossbar configuration, when one is in the set.
    pub fn crossbar(&self) -> Option<&CrossbarConfig> {
        match self {
            PimBackendSet::NewtonOnly => None,
            PimBackendSet::CrossbarOnly(x) | PimBackendSet::Mixed(x) => Some(x),
        }
    }

    /// Whether Newton placements are allowed.
    pub fn allows_newton(&self) -> bool {
        !matches!(self, PimBackendSet::CrossbarOnly(_))
    }
}

/// Full system configuration for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// GPU model.
    pub gpu: GpuConfig,
    /// DRAM-PIM model (command set + timing).
    pub pim: PimConfig,
    /// Memory channels serving the GPU.
    pub gpu_channels: usize,
    /// PIM-enabled memory channels (0 = plain GPU memory).
    pub pim_channels: usize,
    /// Which of the `pim_channels` channels are currently available.
    /// Defaults to all; clear bits to model hard channel failures.
    pub pim_channel_mask: ChannelMask,
    /// PIM command scheduling granularity.
    pub granularity: ScheduleGranularity,
    /// Whether the memory layout optimizer (§4.3.2) is active.
    pub memopt: bool,
    /// Inter-channel memory-network bandwidth, GB/s (§4.1 "memory
    /// networks" between GPU and PIM channels).
    pub link_gbps: f64,
    /// Fixed latency per cross-boundary transfer, microseconds.
    pub transfer_latency_us: f64,
    /// PIM hardware models the search may place layers on.
    pub pim_backends: PimBackendSet,
}

impl EngineConfig {
    /// The paper's GPU baseline: all 32 channels serve the GPU, no PIM.
    pub fn baseline_gpu() -> Self {
        EngineConfig {
            gpu: GpuConfig::rtx2060_like(),
            pim: PimConfig::newton_plus_plus(),
            gpu_channels: 32,
            pim_channels: 0,
            pim_channel_mask: ChannelMask::all(),
            granularity: ScheduleGranularity::Comp,
            memopt: true,
            // The §4.1 memory network connects all 32 channels; a tensor
            // striped over the PIM channels drains over many links at once.
            link_gbps: 256.0,
            transfer_latency_us: 0.3,
            pim_backends: PimBackendSet::NewtonOnly,
        }
    }

    /// The PIMFlow configuration: 16 GPU + 16 PIM channels (the sweet spot
    /// of Fig. 13), Newton++ command set, memory optimizer on.
    pub fn pimflow() -> Self {
        EngineConfig {
            gpu_channels: 16,
            pim_channels: 16,
            ..EngineConfig::baseline_gpu()
        }
    }

    /// Newton+ hardware: original command set (1 buffer, no strided GWRITE,
    /// no latency hiding) on the same 16/16 channel split.
    pub fn newton_plus() -> Self {
        EngineConfig {
            pim: PimConfig::newton_plus(),
            ..EngineConfig::pimflow()
        }
    }

    /// This configuration restricted to the channels `mask` reports up.
    pub fn with_mask(&self, mask: ChannelMask) -> Self {
        EngineConfig {
            pim_channel_mask: mask,
            ..self.clone()
        }
    }

    /// PIM channels that are both configured and currently available.
    pub fn effective_pim_channels(&self) -> usize {
        self.pim_channel_mask.count_up(self.pim_channels)
    }

    /// Indices of the available PIM channels, ascending.
    pub fn available_pim_channels(&self) -> Vec<usize> {
        (0..self.pim_channels)
            .filter(|&c| self.pim_channel_mask.is_up(c))
            .collect()
    }
}

/// Where a node ran and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTiming {
    /// Node name (with any `pim::` placement tag).
    pub name: String,
    /// Device the node executed on.
    pub device: Placement,
    /// Start time, microseconds.
    pub start_us: f64,
    /// Finish time, microseconds.
    pub finish_us: f64,
    /// True if the node was epilogue-fused (zero-latency).
    pub fused: bool,
}

/// Component-wise energy breakdown of one execution, microjoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// GPU dynamic energy (FLOPs + DRAM traffic of GPU kernels).
    pub gpu_dynamic_uj: f64,
    /// PIM dynamic energy (activations, COMPs, channel I/O).
    pub pim_dynamic_uj: f64,
    /// Memory-network transfer energy for cross-boundary movement.
    pub transfer_uj: f64,
    /// Static/leakage energy over the makespan.
    pub static_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.gpu_dynamic_uj + self.pim_dynamic_uj + self.transfer_uj + self.static_uj
    }
}

/// Result of simulating one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// End-to-end latency, microseconds.
    pub total_us: f64,
    /// Total energy, microjoules.
    pub energy_uj: f64,
    /// Component-wise energy breakdown (sums to `energy_uj`).
    pub energy_breakdown: EnergyBreakdown,
    /// Cycles the GPU stream was busy.
    pub gpu_busy_us: f64,
    /// Cycles the PIM stream was busy.
    pub pim_busy_us: f64,
    /// Bytes moved across the GPU/PIM channel boundary (PIM → GPU result
    /// returns over the memory network).
    pub transfer_bytes: u64,
    /// Bytes of host-resident operands fetched into the PIM channels
    /// (GPU → PIM, the GWRITE payloads). Together with `transfer_bytes`
    /// this is the total host↔PIM traffic of the execution — the metric
    /// fusion groups exist to shrink.
    pub host_to_pim_bytes: u64,
    /// MAC-pipeline busy time of each PIM channel, microseconds (length
    /// `cfg.pim_channels`; empty when no PIM channels are configured).
    pub pim_channel_busy_us: Vec<f64>,
    /// Hit/miss/entry counters of the engine's per-execution PIM workload
    /// memo: repeated blocks (identical [`PimWorkload`]s) are simulated once
    /// and every further occurrence is a hit. This memo is local to one
    /// `execute` call — unlike the search-side [`crate::costcache::CostCache`]
    /// it also carries per-channel stats, so it is not shared across runs.
    pub cost_cache: CacheCounters,
    /// One entry per fusion group present in the graph (ordered by group
    /// id): how many nodes ride in it and how much member time the
    /// overlapped single-epoch lowering hides versus back-to-back epochs.
    pub fused_groups: Vec<FusedGroupStat>,
    /// Per-node timeline in execution order.
    pub timings: Vec<NodeTiming>,
}

/// Per-fusion-group execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGroupStat {
    /// Group id (the `<gid>` of the `pim::fuse.<gid>.<role>::` tags).
    pub gid: usize,
    /// Total member nodes in the group (heavy layers and riders).
    pub members: usize,
    /// Member time hidden by overlapping the members in one epoch:
    /// `max(0, sum of standalone member times - overlapped chain time)`.
    /// Zero when the group runs back-to-back (overlap did not pay) or no
    /// PIM channels are up.
    pub overlap_hidden_us: f64,
}

json_struct!(FusedGroupStat {
    gid,
    members,
    overlap_hidden_us
});

json_struct!(NodeTiming {
    name,
    device,
    start_us,
    finish_us,
    fused
});
json_struct!(EnergyBreakdown {
    gpu_dynamic_uj,
    pim_dynamic_uj,
    transfer_uj,
    static_uj
});
json_struct!(ExecutionReport {
    total_us,
    energy_uj,
    energy_breakdown,
    gpu_busy_us,
    pim_busy_us,
    transfer_bytes,
    host_to_pim_bytes,
    pim_channel_busy_us,
    cost_cache,
    fused_groups,
    timings,
});

impl ExecutionReport {
    /// Timing entry for `name`, if present.
    pub fn timing(&self, name: &str) -> Option<&NodeTiming> {
        self.timings.iter().find(|t| t.name == name)
    }
}

/// True for ops cuDNN/CUTLASS can fuse into a preceding conv/GEMM epilogue.
pub fn op_is_fusable(op: &Op) -> bool {
    matches!(op, Op::BatchNorm | Op::Add | Op::Mul)
        || matches!(op, Op::Activation(k) if *k != ActivationKind::Softmax)
}

fn is_heavy_compute(op: &Op) -> bool {
    matches!(op, Op::Conv2d(_) | Op::Dense(_))
}

/// Simulates `graph` under `cfg` and returns the timeline report.
///
/// Node placement follows the `pim::` name prefix set by the transformation
/// passes; untagged nodes run on the GPU. Nodes tagged for PIM when no PIM
/// channel is configured *and available* (`cfg.effective_pim_channels() ==
/// 0`) fall back to the GPU; with a partial [`ChannelMask`] the offloaded
/// work is scheduled over the surviving channels only.
///
/// # Errors
///
/// Returns [`Error::Graph`](crate::error::Error::Graph) if the graph is
/// cyclic.
///
/// # Panics
///
/// Panics if shapes have not been inferred (an internal invariant: every
/// graph built through [`pimflow_ir::GraphBuilder`] or the passes has them).
pub fn execute(graph: &Graph, cfg: &EngineConfig) -> Result<ExecutionReport> {
    let order = graph.topo_order()?;
    let effective_channels = cfg.effective_pim_channels();
    let available = cfg.available_pim_channels();

    // Per-value readiness: time available and locations that already hold it.
    #[derive(Clone)]
    struct ValueState {
        time: f64,
        at_pim: bool,
        at_gpu: bool,
        bytes: u64,
    }
    let mut values: HashMap<ValueId, ValueState> = HashMap::new();
    for &v in graph.inputs() {
        let bytes = graph
            .value(v)
            .desc
            .as_ref()
            .map(|d| d.size_bytes() as u64)
            .unwrap_or(0);
        values.insert(
            v,
            ValueState {
                time: 0.0,
                at_pim: false,
                at_gpu: true,
                bytes,
            },
        );
    }

    let mut gpu_free = 0.0f64;
    let mut pim_free = 0.0f64;
    let mut gpu_busy = 0.0f64;
    let mut pim_busy = 0.0f64;
    let mut transfer_bytes = 0u64;
    let mut host_to_pim_bytes = 0u64;
    let mut gpu_dynamic_uj = 0.0f64;
    let mut pim_stats_total = ChannelStats::default();
    let mut timings = Vec::with_capacity(order.len());
    let mut pim_channel_busy_us = vec![0.0f64; cfg.pim_channels];
    let mut pim_memo: HashMap<(PimWorkload, FusedRole), (f64, ChannelStats, Vec<f64>)> =
        HashMap::new();
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;
    // Device that produced each value (for fusion decisions).
    let mut produced_on_gpu_conv: HashMap<ValueId, bool> = HashMap::new();

    // Pre-scan the fusion groups: collect each group's heavy-member chain
    // and price it both back-to-back (sum of standalone member times) and
    // overlap-linked in one epoch (carried engine state, imbalance hides
    // under the neighbours' tails). The better composition wins — the
    // per-member durations below are scaled by `chain/sum` when overlap
    // pays, and never inflated when it does not.
    let mut group_members: BTreeMap<usize, usize> = BTreeMap::new();
    let mut group_chain: BTreeMap<usize, Vec<(PimWorkload, FusedRole)>> = BTreeMap::new();
    for &id in &order {
        let node = graph.node(id);
        let Some((gid, role, _)) = parse_fused(&node.name) else {
            continue;
        };
        *group_members.entry(gid).or_default() += 1;
        if effective_channels > 0 && is_heavy_compute(&node.op) && role != FusedNodeRole::Rider {
            group_chain
                .entry(gid)
                .or_default()
                .push((PimWorkload::from_node(graph, id), role.isa_role()));
        }
    }
    let mut overlap_scale: HashMap<usize, f64> = HashMap::new();
    let mut fused_groups = Vec::with_capacity(group_members.len());
    for (&gid, &members) in &group_members {
        let chain = group_chain.get(&gid).map(Vec::as_slice).unwrap_or(&[]);
        let (scale, hidden_us) = if chain.len() >= 2 {
            let sum_us: f64 = chain
                .iter()
                .map(|(w, r)| {
                    execute_workload_fused_per_channel(
                        w,
                        &cfg.pim,
                        effective_channels,
                        cfg.granularity,
                        *r,
                    )
                    .0
                    .time_us
                })
                .sum();
            let chain_us =
                execute_group_overlapped_us(chain, &cfg.pim, effective_channels, cfg.granularity);
            if sum_us > 0.0 && chain_us < sum_us {
                (chain_us / sum_us, sum_us - chain_us)
            } else {
                (1.0, 0.0)
            }
        } else {
            (1.0, 0.0)
        };
        overlap_scale.insert(gid, scale);
        fused_groups.push(FusedGroupStat {
            gid,
            members,
            overlap_hidden_us: hidden_us,
        });
    }

    let link_bw_bytes_per_us = cfg.link_gbps * 1e3; // GB/s -> bytes/us

    for id in order {
        let node = graph.node(id);
        let out_bytes = graph
            .value(node.output)
            .desc
            .as_ref()
            .map(|d| d.size_bytes() as u64)
            .unwrap_or(0);
        let mut device = Placement::of_name(&node.name);
        let fused_role = parse_fused(&node.name).map(|(_, role, _)| role);
        // AiM-style in-PIM activation (extension ablation): a single-input
        // element-wise op whose operand lives in the PIM channels is applied
        // by the PIM logic while results drain — no GPU kernel, no transfer.
        let pim_activation = cfg.pim.activation_in_pim
            && effective_channels > 0
            && op_is_fusable(&node.op)
            && node.inputs.len() == 1
            && values
                .get(&node.inputs[0])
                .map(|s| s.at_pim && !s.at_gpu)
                .unwrap_or(false);
        // Fusion-group rider: an element-wise node between two fused heavy
        // layers is applied near the banks during the BANKFEED hand-off —
        // no kernel, no bus crossing. Unlike the AiM ablation this needs no
        // special activation hardware flag; it is what the fused lowering
        // means. Residual rejoins (`Add`/`Mul`) qualify too, as long as
        // *every* operand is already PIM-resident — which holds exactly
        // when the skip forked inside the group (the head's staging or a
        // member's output), the condition the fusion walker enforces.
        let fused_rider = fused_role == Some(FusedNodeRole::Rider)
            && effective_channels > 0
            && op_is_fusable(&node.op)
            && !node.inputs.is_empty()
            && node
                .inputs
                .iter()
                .all(|v| values.get(v).map(|s| s.at_pim).unwrap_or(false));
        // Near-bank re-addressing: a contiguous row-range `Slice` (axis 1)
        // or a zero-`Pad` of a value resident only in the PIM channels
        // selects a row range or appends zero rows — bank addressing, not
        // data movement, so nothing crosses the bus and the result stays
        // near the banks. This is what keeps an interior-split group's
        // residual-fork slices and halo pads from breaking the near-bank
        // hand-off chain between fused members.
        let near_bank_move = (matches!(&node.op, Op::Slice(a) if a.axis == 1)
            || matches!(node.op, Op::Pad(_)))
            && !node.inputs.is_empty()
            && node.inputs.iter().all(|v| {
                values
                    .get(v)
                    .map(|s| s.at_pim && !s.at_gpu)
                    .unwrap_or(false)
            });
        if pim_activation || fused_rider || near_bank_move {
            device = Placement::Pim;
        } else if device == Placement::Pim
            && (effective_channels == 0 || !is_heavy_compute(&node.op))
        {
            device = Placement::Gpu;
        }

        // Dependency readiness + cross-boundary transfers.
        let mut ready = 0.0f64;
        for &input in &node.inputs {
            let state = values.get_mut(&input).expect("topological order");
            let mut t = state.time;
            match device {
                // GWRITE itself fetches input data from the GPU channels
                // (§4.1), so GPU->PIM pays only the controller latency; the
                // payload time is inside the PIM command trace.
                Placement::Pim => {
                    if !state.at_pim {
                        t += cfg.transfer_latency_us;
                        host_to_pim_bytes += state.bytes;
                        state.at_pim = true;
                    }
                }
                // PIM->GPU results travel back over the memory network
                // (Fig. 4, movement (4)).
                Placement::Gpu => {
                    if !state.at_gpu {
                        t += cfg.transfer_latency_us + state.bytes as f64 / link_bw_bytes_per_us;
                        transfer_bytes += state.bytes;
                        state.at_gpu = true;
                    }
                }
            }
            ready = ready.max(t);
        }

        // Node cost.
        let profile = kernel_for_node(graph, id);
        let mut fused = false;
        let (start, finish) = if pim_activation || fused_rider {
            // Applied by the PIM activation units during READRES drain
            // (AiM ablation), or near the banks during the BANKFEED
            // hand-off (fusion-group rider).
            fused = true;
            (ready, ready)
        } else if near_bank_move {
            // Addressing only: no kernel, no occupancy, no crossing.
            (ready, ready)
        } else if is_data_move(graph, id) {
            let bytes = data_move_bytes(graph, id, cfg.memopt);
            if bytes == 0 {
                // Free view: no kernel, no resource occupancy.
                (ready, ready)
            } else {
                let dur = bytes as f64 / cfg.gpu.mem_bandwidth(cfg.gpu_channels.max(1)) * 1e6
                    + cfg.gpu.kernel_launch_us;
                gpu_dynamic_uj += bytes as f64 * cfg.gpu.dram_pj_per_byte * 1e-6;
                let start = ready.max(gpu_free);
                gpu_free = start + dur;
                gpu_busy += dur;
                (start, start + dur)
            }
        } else if device == Placement::Pim {
            let workload = PimWorkload::from_node(graph, id);
            // Fused heavy members lower under their group role: the
            // memo key carries the role because the rewritten program
            // prices differently from the standalone one.
            let role = fused_role.map(FusedNodeRole::isa_role).unwrap_or_default();
            let (dur, stats, busy_us) = match pim_memo.get(&(workload, role)) {
                Some(cached) => {
                    memo_hits += 1;
                    cached.clone()
                }
                None => {
                    memo_misses += 1;
                    // Only the channels the mask reports up take part; the
                    // workload is scheduled across the survivors.
                    let (exec, per_channel) = execute_workload_fused_per_channel(
                        &workload,
                        &cfg.pim,
                        effective_channels,
                        cfg.granularity,
                        role,
                    );
                    let busy_us: Vec<f64> = per_channel
                        .iter()
                        .map(|s| cfg.pim.cycles_to_ns(s.comp_busy_cycles) * 1e-3)
                        .collect();
                    let entry = (exec.time_us, exec.stats, busy_us);
                    pim_memo.insert((workload, role), entry.clone());
                    entry
                }
            };
            // Scatter the survivors' busy time back to physical channel
            // indices; masked-out channels stay at zero.
            for (slot, b) in busy_us.iter().enumerate() {
                if let Some(&ch) = available.get(slot) {
                    pim_channel_busy_us[ch] += b;
                }
            }
            pim_stats_total = pim_stats_total.merge_parallel(&stats);
            // Overlap credit: members of an overlap-linked group finish
            // earlier than their standalone times sum to — each member's
            // wall-clock share shrinks proportionally. Busy counters stay
            // unscaled: the MAC work is still done, only idle gaps hide.
            let dur = match parse_fused(&node.name) {
                Some((gid, _, _)) => dur * overlap_scale.get(&gid).copied().unwrap_or(1.0),
                None => dur,
            };
            let start = ready.max(pim_free);
            pim_free = start + dur;
            pim_busy += dur;
            (start, start + dur)
        } else {
            // GPU compute node: fusable epilogues ride along for free. TVM
            // fuses element-wise chains into the producing kernel — a conv,
            // a GEMM, or a preceding element-wise kernel (injective
            // fusion) — so an epilogue is standalone only when its producer
            // is a PIM node, a data-movement view, or a graph input.
            let producer_is_gpu_kernel = node
                .inputs
                .first()
                .and_then(|v| produced_on_gpu_conv.get(v))
                .copied()
                .unwrap_or(false);
            if op_is_fusable(&node.op) && producer_is_gpu_kernel {
                fused = true;
                gpu_dynamic_uj += profile.flops * cfg.gpu.dynamic_pj_per_flop * 1e-6;
                (ready, ready)
            } else {
                let dur = pimflow_gpusim::kernel_time_with_launch_us(
                    &profile,
                    &cfg.gpu,
                    cfg.gpu_channels.max(1),
                );
                gpu_dynamic_uj += (profile.flops * cfg.gpu.dynamic_pj_per_flop
                    + profile.dram_bytes * cfg.gpu.dram_pj_per_byte)
                    * 1e-6;
                let start = ready.max(gpu_free);
                gpu_free = start + dur;
                gpu_busy += dur;
                (start, start + dur)
            }
        };

        // Any GPU compute kernel (or a node fused into one) can host further
        // element-wise epilogues; data-movement views and PIM nodes cannot.
        let hosts_fusion = device == Placement::Gpu
            && !is_data_move(graph, id)
            && (is_heavy_compute(&node.op)
                || fused
                || op_is_fusable(&node.op)
                || matches!(node.op, Op::Pool(_) | Op::GlobalAvgPool));
        produced_on_gpu_conv.insert(node.output, hosts_fusion);

        values.insert(
            node.output,
            ValueState {
                time: finish,
                at_pim: device == Placement::Pim,
                at_gpu: device == Placement::Gpu,
                bytes: out_bytes,
            },
        );
        timings.push(NodeTiming {
            name: node.name.clone(),
            device,
            start_us: start,
            finish_us: finish,
            fused,
        });
    }

    let total_us = timings.iter().map(|t| t.finish_us).fold(0.0, f64::max);
    // Energy: GPU dynamic (per node) + PIM dynamic (from command stats)
    // + GPU static power over the makespan. The PIM static share is folded
    // into the command-level energy model.
    let pim_dynamic_uj = pimflow_pimsim::pim_energy_nj(
        &ChannelStats {
            cycles: 0,
            ..pim_stats_total
        },
        &cfg.pim,
        &PimEnergyParams::default(),
        effective_channels,
    ) * 1e-3;
    let transfer_uj = transfer_bytes as f64 * 0.04 * 1e-3; // link I/O energy
    let static_uj = cfg.gpu.static_w * total_us;
    let energy_breakdown = EnergyBreakdown {
        gpu_dynamic_uj,
        pim_dynamic_uj,
        transfer_uj,
        static_uj,
    };

    Ok(ExecutionReport {
        total_us,
        energy_uj: energy_breakdown.total_uj(),
        energy_breakdown,
        gpu_busy_us: gpu_busy,
        pim_busy_us: pim_busy,
        transfer_bytes,
        host_to_pim_bytes,
        pim_channel_busy_us,
        cost_cache: CacheCounters {
            hits: memo_hits,
            misses: memo_misses,
            entries: pim_memo.len() as u64,
        },
        fused_groups,
        timings,
    })
}

/// GPU-only kernel profile helper re-export for harnesses.
pub fn gpu_profile(graph: &Graph, id: NodeId) -> KernelProfile {
    kernel_for_node(graph, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{find_chains, pipeline_chain, split_node, PatternKind};
    use pimflow_ir::models;

    #[test]
    fn baseline_executes_toy() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        assert!(r.total_us > 0.0 && r.total_us.is_finite());
        assert_eq!(r.pim_busy_us, 0.0);
        assert!(r.energy_uj > 0.0);
    }

    #[test]
    fn fusion_zeroes_epilogue_latency() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        let relu = r.timing("relu_2").unwrap();
        assert!(relu.fused);
        assert_eq!(relu.start_us, relu.finish_us);
    }

    #[test]
    fn full_pim_offload_uses_pim_stream() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        assert!(r.pim_busy_us > 0.0);
        let t = r.timing("pim::conv_3").unwrap();
        assert_eq!(t.device, Placement::Pim);
    }

    #[test]
    fn pim_tag_falls_back_to_gpu_without_pim_channels() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        assert_eq!(r.pim_busy_us, 0.0);
    }

    #[test]
    fn mddp_split_overlaps_gpu_and_pim() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 50).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let a = r.timing("mddp_a_conv_3").unwrap().clone();
        let b = r.timing("pim::mddp_b_conv_3").unwrap().clone();
        // The two halves must overlap in time (that is the whole point).
        assert!(
            a.start_us < b.finish_us && b.start_us < a.finish_us,
            "GPU part {:?}..{:?} vs PIM part {:?}..{:?}",
            a.start_us,
            a.finish_us,
            b.start_us,
            b.finish_us
        );
    }

    #[test]
    fn pipelined_stages_overlap() {
        let mut g = models::toy();
        let chain = find_chains(&g)
            .into_iter()
            .find(|c| c.pattern == PatternKind::PwDwPw)
            .unwrap();
        pipeline_chain(&mut g, &chain, 2).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        assert!(r.pim_busy_us > 0.0);
        assert!(r.gpu_busy_us > 0.0);
    }

    #[test]
    fn memopt_reduces_total_time_for_split_graphs() {
        let mut g = models::toy();
        let id = g.find_node("conv_1").unwrap();
        split_node(&mut g, id, 50).unwrap();
        let with = execute(&g, &EngineConfig::pimflow()).unwrap();
        let mut cfg = EngineConfig::pimflow();
        cfg.memopt = false;
        let without = execute(&g, &cfg).unwrap();
        assert!(
            with.total_us < without.total_us,
            "memopt {} vs plain {}",
            with.total_us,
            without.total_us
        );
    }

    #[test]
    fn pim_memo_counters_account_for_every_offloaded_node() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let pim_nodes = r
            .timings
            .iter()
            .filter(|t| t.device == Placement::Pim && !t.fused)
            .count() as u64;
        assert!(pim_nodes > 0);
        assert_eq!(r.cost_cache.hits + r.cost_cache.misses, pim_nodes);
        assert_eq!(r.cost_cache.entries, r.cost_cache.misses);
        // GPU-only execution touches the memo not at all.
        let base = execute(&models::toy(), &EngineConfig::baseline_gpu()).unwrap();
        assert_eq!(base.cost_cache, CacheCounters::default());
    }

    #[test]
    fn fused_group_reports_stats_and_residual_rider_rides_free() {
        use crate::passes::{find_fusion_groups, fuse_group};
        use pimflow_ir::{GraphBuilder, Shape};
        // conv -> conv -> add(skip): fused as one group, the add is a
        // two-input rider whose operands are both PIM-resident, so it
        // applies near the banks at zero latency.
        let mut b = GraphBuilder::new("res");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 16);
        let z = b.conv1x1(y, 16);
        let w = b.add(z, y);
        let mut g = b.finish(w);
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        fuse_group(&mut g, &group, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let add = r.timings.iter().find(|t| t.name.contains("add_3")).unwrap();
        assert_eq!(add.device, Placement::Pim);
        assert!(add.fused, "residual rider should apply near the banks");
        assert_eq!(add.start_us, add.finish_us);
        // The report surfaces the group: 3 members, non-negative overlap
        // credit (never inflates the group).
        assert_eq!(r.fused_groups.len(), 1);
        assert_eq!(r.fused_groups[0].gid, 0);
        assert_eq!(r.fused_groups[0].members, 3);
        assert!(r.fused_groups[0].overlap_hidden_us >= 0.0);
        // Without PIM channels the stat degrades to zero hidden time.
        let base = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        assert_eq!(base.fused_groups.len(), 1);
        assert_eq!(base.fused_groups[0].overlap_hidden_us, 0.0);
    }

    #[test]
    fn report_is_deterministic() {
        let g = models::toy();
        let a = execute(&g, &EngineConfig::pimflow()).unwrap();
        let b = execute(&g, &EngineConfig::pimflow()).unwrap();
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.energy_uj, b.energy_uj);
    }

    #[test]
    fn timeline_respects_dependencies() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        for (i, id) in g.topo_order().unwrap().iter().enumerate() {
            let t = &r.timings[i];
            assert_eq!(t.name, g.node(*id).name);
            for p in g.predecessors(*id) {
                let pt = r.timings.iter().find(|x| x.name == g.node(p).name).unwrap();
                assert!(pt.finish_us <= t.start_us + 1e-9);
            }
        }
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;
    use crate::passes::split_node;
    use pimflow_ir::models;

    #[test]
    fn transfers_count_pim_to_gpu_only() {
        // Full offload of one conv: its input rides on GWRITE (no link
        // traffic), its output crosses back once for the GPU consumer.
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let conv_out = g
            .value(g.node(g.find_node("pim::conv_3").unwrap()).output)
            .desc
            .as_ref()
            .unwrap()
            .size_bytes() as u64;
        assert!(
            r.transfer_bytes >= conv_out,
            "output must cross the boundary"
        );
        // FC output (10 values) also crosses; bound the total tightly.
        assert!(
            r.transfer_bytes <= 2 * conv_out + 1024,
            "no double counting: {}",
            r.transfer_bytes
        );
    }

    #[test]
    fn repeated_consumers_pay_the_transfer_once() {
        use pimflow_ir::{GraphBuilder, Shape};
        // A PIM conv whose output feeds two GPU consumers: the value moves
        // across the memory network once and is then GPU-resident.
        let mut b = GraphBuilder::new("fanout");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 32);
        let r1 = b.relu(y);
        let r2 = b.relu6(y);
        let z = b.add(r1, r2);
        let mut g = b.finish(z);
        let id = g.find_node("conv_1").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        let out_bytes = 8 * 8 * 32 * 2u64;
        assert_eq!(r.transfer_bytes, out_bytes, "exactly one crossing");
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use crate::passes::split_node;
    use pimflow_ir::models;

    #[test]
    fn breakdown_sums_to_total() {
        let g = models::toy();
        let r = execute(&g, &EngineConfig::baseline_gpu()).unwrap();
        assert!((r.energy_breakdown.total_uj() - r.energy_uj).abs() < 1e-9);
        assert_eq!(r.energy_breakdown.pim_dynamic_uj, 0.0, "no PIM in baseline");
        assert!(r.energy_breakdown.static_uj > 0.0);
    }

    #[test]
    fn pim_offload_shifts_dynamic_energy() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let r = execute(&g, &EngineConfig::pimflow()).unwrap();
        assert!(r.energy_breakdown.pim_dynamic_uj > 0.0);
        assert!(r.energy_breakdown.transfer_uj > 0.0);
        let base = execute(&models::toy(), &EngineConfig::baseline_gpu()).unwrap();
        assert!(
            r.energy_breakdown.gpu_dynamic_uj < base.energy_breakdown.gpu_dynamic_uj,
            "offloading must reduce GPU dynamic energy"
        );
    }
}

#[cfg(test)]
mod aim_tests {
    use super::*;
    use crate::passes::split_node;
    use pimflow_ir::models;

    fn aim_cfg() -> EngineConfig {
        EngineConfig {
            pim: pimflow_pimsim::PimConfig::aim_like(),
            ..EngineConfig::pimflow()
        }
    }

    #[test]
    fn in_pim_activation_removes_the_epilogue_kernel() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        // Newton++: the relu6 after the offloaded conv is a real GPU kernel.
        let newton = execute(&g, &EngineConfig::pimflow()).unwrap();
        let t = newton.timing("relu6_4").unwrap();
        assert!(
            t.finish_us > t.start_us,
            "epilogue must cost time on Newton++"
        );
        // AiM-like: it is absorbed into the PIM read-out.
        let aim = execute(&g, &aim_cfg()).unwrap();
        let t = aim.timing("relu6_4").unwrap();
        assert!(t.fused, "epilogue must fuse into PIM drain");
        assert_eq!(t.finish_us, t.start_us);
        assert!(aim.total_us < newton.total_us);
    }

    #[test]
    fn in_pim_activation_never_hurts_end_to_end() {
        for name in ["toy", "mobilenet-v2"] {
            let g = models::by_name(name).unwrap();
            let plan =
                crate::search::search(&g, &aim_cfg(), &crate::search::SearchOptions::default())
                    .unwrap();
            let transformed = crate::search::apply_plan(&g, &plan).unwrap();
            let aim = execute(&transformed, &aim_cfg()).unwrap();

            let plan_n = crate::search::search(
                &g,
                &EngineConfig::pimflow(),
                &crate::search::SearchOptions::default(),
            )
            .unwrap();
            let transformed_n = crate::search::apply_plan(&g, &plan_n).unwrap();
            let newton = execute(&transformed_n, &EngineConfig::pimflow()).unwrap();
            assert!(
                aim.total_us <= newton.total_us * 1.01,
                "{name}: AiM {:.1} vs Newton++ {:.1}",
                aim.total_us,
                newton.total_us
            );
        }
    }
}
