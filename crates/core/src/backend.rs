//! Compilation back-ends behind a BYOC-style trait boundary.
//!
//! The original PIMFlow extends TVM through the Bring-Your-Own-Codegen
//! (BYOC) interface (§5): GPU-resident nodes compile to cuDNN/cuBLAS/CUTLASS
//! calls while `pim::`-marked nodes route to the DRAM-PIM code generator.
//! This module reproduces that boundary as a Rust trait: a [`Backend`]
//! decides which nodes it supports and compiles each into a
//! [`CompiledKernel`] carrying the executable artifact (a typed
//! `pimflow-isa` program or a GPU kernel profile) and its simulated cost.
//! PIM artifacts are backend-tagged ISA programs, so one compiled form
//! serves both the Newton interpretation (cycle-level DRAM-PIM) and the
//! crossbar compute-in-array model — and round-trips through the ISA text
//! format for inspection and replay.

use crate::codegen::{generate_program, PimWorkload};
use pimflow_gpusim::{kernel_for_node, kernel_time_with_launch_us, GpuConfig, KernelProfile};
use pimflow_ir::{Graph, NodeId, Op};
use pimflow_isa::{
    crossbar::{lower_shape, CrossbarInterpreter, MatmulShape},
    BackendKind, CrossbarConfig, Interpreter, IsaProgram,
};
use pimflow_pimsim::{ChannelStats, NewtonInterpreter, PimConfig, RunOptions, ScheduleGranularity};
use std::error::Error;
use std::fmt;

/// Errors produced while compiling a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend does not support this operator.
    Unsupported {
        /// Backend name.
        backend: String,
        /// Offending node name.
        node: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { backend, node } => {
                write!(f, "backend `{backend}` does not support node `{node}`")
            }
        }
    }
}

impl Error for BackendError {}

/// The executable artifact a backend produced for one node.
#[derive(Debug, Clone)]
pub enum KernelArtifact {
    /// A GPU kernel call (cuDNN/cuBLAS/CUTLASS analogue): the workload
    /// profile the launch will execute.
    GpuKernel(KernelProfile),
    /// A typed PIM ISA program plus the backend whose interpreter prices
    /// (and would execute) it.
    PimProgram {
        /// Which hardware model the program was lowered for.
        backend: BackendKind,
        /// The per-channel instruction streams.
        program: IsaProgram,
    },
}

/// A compiled node: artifact plus simulated cost.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Name of the compiled node.
    pub node: String,
    /// Which backend produced it.
    pub backend: &'static str,
    /// The executable artifact.
    pub artifact: KernelArtifact,
    /// Simulated execution time, microseconds.
    pub time_us: f64,
    /// PIM channel statistics, when the artifact is a PIM trace.
    pub pim_stats: Option<ChannelStats>,
}

/// A compilation back-end (the BYOC boundary).
///
/// Implementations decide per node whether they can take it
/// ([`Backend::supports`]) and lower supported nodes into executable
/// kernels ([`Backend::compile`]).
pub trait Backend {
    /// Stable backend name (used in diagnostics and artifacts).
    fn name(&self) -> &'static str;

    /// True if this backend can execute node `id` of `graph`.
    fn supports(&self, graph: &Graph, id: NodeId) -> bool;

    /// Compiles node `id` into an executable kernel.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] when [`Backend::supports`] is
    /// false for the node.
    fn compile(&self, graph: &Graph, id: NodeId) -> Result<CompiledKernel, BackendError>;
}

/// The DRAM-PIM back-end: CONV (except depthwise) and FC layers lower to
/// command traces over the PIM-enabled channels (§4.3).
#[derive(Debug, Clone)]
pub struct DramPimBackend {
    /// PIM hardware configuration.
    pub pim: PimConfig,
    /// Number of PIM-enabled channels.
    pub channels: usize,
    /// Command scheduling granularity.
    pub granularity: ScheduleGranularity,
}

impl DramPimBackend {
    /// The evaluation configuration: Newton++ on 16 channels, finest
    /// scheduling granularity.
    pub fn newton_plus_plus() -> Self {
        DramPimBackend {
            pim: PimConfig::newton_plus_plus(),
            channels: 16,
            granularity: ScheduleGranularity::Comp,
        }
    }
}

impl Backend for DramPimBackend {
    fn name(&self) -> &'static str {
        "dram-pim"
    }

    fn supports(&self, graph: &Graph, id: NodeId) -> bool {
        self.channels > 0 && graph.is_pim_candidate(id)
    }

    fn compile(&self, graph: &Graph, id: NodeId) -> Result<CompiledKernel, BackendError> {
        if !self.supports(graph, id) {
            return Err(BackendError::Unsupported {
                backend: self.name().into(),
                node: graph.node(id).name.clone(),
            });
        }
        let workload = PimWorkload::from_node(graph, id);
        let program = generate_program(&workload, &self.pim, self.channels, self.granularity);
        let stats = NewtonInterpreter::new(&self.pim).run(&program, RunOptions::new());
        Ok(CompiledKernel {
            node: graph.node(id).name.clone(),
            backend: self.name(),
            time_us: self.pim.cycles_to_ns(stats.cycles) * 1e-3,
            artifact: KernelArtifact::PimProgram {
                backend: BackendKind::Newton,
                program,
            },
            pim_stats: Some(stats),
        })
    }
}

/// The crossbar compute-in-array back-end (PIMCOMP-style): the same node
/// set as [`DramPimBackend`], lowered weight-stationary — no per-tile
/// input streaming, analog tile waves instead of COMP bursts. Channel
/// statistics do not apply to the analog model, so `pim_stats` is `None`.
#[derive(Debug, Clone)]
pub struct CrossbarBackend {
    /// Crossbar array configuration.
    pub xbar: CrossbarConfig,
    /// Number of crossbar-equipped channels.
    pub channels: usize,
}

impl CrossbarBackend {
    /// The PIMCOMP-like evaluation configuration on 16 channels.
    pub fn pimcomp_like() -> Self {
        CrossbarBackend {
            xbar: CrossbarConfig::pimcomp_like(),
            channels: 16,
        }
    }
}

impl Backend for CrossbarBackend {
    fn name(&self) -> &'static str {
        "crossbar"
    }

    fn supports(&self, graph: &Graph, id: NodeId) -> bool {
        self.channels > 0 && graph.is_pim_candidate(id)
    }

    fn compile(&self, graph: &Graph, id: NodeId) -> Result<CompiledKernel, BackendError> {
        if !self.supports(graph, id) {
            return Err(BackendError::Unsupported {
                backend: self.name().into(),
                node: graph.node(id).name.clone(),
            });
        }
        let w = PimWorkload::from_node(graph, id);
        let shape = MatmulShape {
            rows: w.rows,
            k_elems: w.k_elems,
            out_channels: w.out_channels,
        };
        let program = lower_shape(&shape, self.channels, &self.xbar);
        let interp = CrossbarInterpreter::new(self.xbar);
        Ok(CompiledKernel {
            node: graph.node(id).name.clone(),
            backend: self.name(),
            time_us: interp.interpret_us(&program),
            artifact: KernelArtifact::PimProgram {
                backend: BackendKind::Crossbar,
                program,
            },
            pim_stats: None,
        })
    }
}

/// The GPU back-end: everything except pure data movement compiles to a
/// kernel launch (cuDNN/cuBLAS/CUTLASS analogue).
#[derive(Debug, Clone)]
pub struct GpuBackend {
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
    /// Memory channels serving the GPU.
    pub channels: usize,
}

impl GpuBackend {
    /// The evaluation configuration: RTX 2060-class on 16 channels (the
    /// GPU's share of the split memory).
    pub fn rtx2060_like() -> Self {
        GpuBackend {
            gpu: GpuConfig::rtx2060_like(),
            channels: 16,
        }
    }
}

impl Backend for GpuBackend {
    fn name(&self) -> &'static str {
        "gpu"
    }

    fn supports(&self, graph: &Graph, id: NodeId) -> bool {
        // Pure views never become kernels.
        !matches!(graph.node(id).op, Op::Identity | Op::Flatten)
    }

    fn compile(&self, graph: &Graph, id: NodeId) -> Result<CompiledKernel, BackendError> {
        if !self.supports(graph, id) {
            return Err(BackendError::Unsupported {
                backend: self.name().into(),
                node: graph.node(id).name.clone(),
            });
        }
        let profile = kernel_for_node(graph, id);
        Ok(CompiledKernel {
            node: graph.node(id).name.clone(),
            backend: self.name(),
            time_us: kernel_time_with_launch_us(&profile, &self.gpu, self.channels.max(1)),
            artifact: KernelArtifact::GpuKernel(profile),
            pim_stats: None,
        })
    }
}

/// Compiles every node of `graph` with the first backend that supports it
/// (PIM-tagged nodes try the PIM backend first, everything else the GPU),
/// mirroring the artifact's partitioning of the Relay graph.
///
/// # Errors
///
/// Returns [`BackendError`] if some node is supported by neither backend.
pub fn compile_graph(
    graph: &Graph,
    pim: &DramPimBackend,
    gpu: &GpuBackend,
) -> Result<Vec<CompiledKernel>, BackendError> {
    let mut out = Vec::new();
    for id in graph.topo_order().expect("acyclic") {
        let node = graph.node(id);
        if matches!(node.op, Op::Identity | Op::Flatten) {
            continue; // views vanish at code generation
        }
        let prefer_pim =
            crate::placement::Placement::of_name(&node.name) == crate::placement::Placement::Pim;
        let kernel = if prefer_pim && pim.supports(graph, id) {
            pim.compile(graph, id)?
        } else {
            gpu.compile(graph, id)?
        };
        out.push(kernel);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::split_node;
    use pimflow_ir::models;

    #[test]
    fn pim_backend_supports_candidates_only() {
        let g = models::toy();
        let be = DramPimBackend::newton_plus_plus();
        let conv = g.find_node("conv_3").unwrap();
        let dw = g.find_node("dwconv_5").unwrap();
        let relu = g.find_node("relu_2").unwrap();
        assert!(be.supports(&g, conv));
        assert!(!be.supports(&g, dw), "depthwise is not PIM-offloadable");
        assert!(!be.supports(&g, relu));
        assert!(matches!(
            be.compile(&g, relu),
            Err(BackendError::Unsupported { .. })
        ));
    }

    #[test]
    fn pim_compile_produces_replayable_program() {
        let g = models::toy();
        let be = DramPimBackend::newton_plus_plus();
        let conv = g.find_node("conv_3").unwrap();
        let kernel = be.compile(&g, conv).unwrap();
        let KernelArtifact::PimProgram { backend, program } = &kernel.artifact else {
            panic!("PIM backend must emit an ISA program");
        };
        assert_eq!(*backend, BackendKind::Newton);
        assert_eq!(program.num_channels(), 16);
        // Interpreting the program reproduces the compiled cost exactly.
        let stats = NewtonInterpreter::new(&be.pim).run(program, RunOptions::new());
        assert_eq!(Some(stats), kernel.pim_stats);
        assert!(kernel.time_us > 0.0);
        // And it survives the ISA text round-trip, timing included.
        let text = pimflow_isa::program_to_text(program);
        let back = pimflow_isa::parse_program(&text).unwrap();
        assert_eq!(&back, program);
        let replayed = NewtonInterpreter::new(&be.pim).run(&back, RunOptions::new());
        assert_eq!(replayed, stats);
    }

    #[test]
    fn crossbar_compiles_the_same_nodes_with_a_different_cost() {
        let g = models::toy();
        let newton = DramPimBackend::newton_plus_plus();
        let xbar = CrossbarBackend::pimcomp_like();
        let conv = g.find_node("conv_3").unwrap();
        let dw = g.find_node("dwconv_5").unwrap();
        assert_eq!(newton.supports(&g, conv), xbar.supports(&g, conv));
        assert_eq!(newton.supports(&g, dw), xbar.supports(&g, dw));
        let kernel = xbar.compile(&g, conv).unwrap();
        let KernelArtifact::PimProgram { backend, program } = &kernel.artifact else {
            panic!("crossbar backend must emit an ISA program");
        };
        assert_eq!(*backend, BackendKind::Crossbar);
        assert!(kernel.time_us > 0.0);
        assert!(kernel.pim_stats.is_none());
        // The artifact round-trips through the same text format.
        let back = pimflow_isa::parse_program(&pimflow_isa::program_to_text(program)).unwrap();
        assert_eq!(&back, program);
        let newton_us = newton.compile(&g, conv).unwrap().time_us;
        assert_ne!(kernel.time_us, newton_us, "cost structures must differ");
    }

    #[test]
    fn gpu_backend_takes_the_rest() {
        let g = models::toy();
        let be = GpuBackend::rtx2060_like();
        for id in g.node_ids() {
            if matches!(g.node(id).op, Op::Flatten) {
                assert!(!be.supports(&g, id));
            } else {
                assert!(be.supports(&g, id), "{}", g.node(id).name);
            }
        }
    }

    #[test]
    fn compile_graph_partitions_by_placement() {
        let mut g = models::toy();
        let id = g.find_node("conv_3").unwrap();
        split_node(&mut g, id, 0).unwrap();
        let kernels = compile_graph(
            &g,
            &DramPimBackend::newton_plus_plus(),
            &GpuBackend::rtx2060_like(),
        )
        .unwrap();
        let pim_kernels: Vec<_> = kernels.iter().filter(|k| k.backend == "dram-pim").collect();
        assert_eq!(pim_kernels.len(), 1);
        assert_eq!(pim_kernels[0].node, "pim::conv_3");
        assert!(kernels.iter().any(|k| k.backend == "gpu"));
    }
}
