//! Filter placement in the DRAM-PIM cell arrays.
//!
//! The paper's mapping (§2.2, Fig. 2) places lowered filter matrices in the
//! memory cell arrays in advance; the command generator then only needs to
//! know *how many* row activations stream the tile. This module makes the
//! placement explicit — which `(bank, DRAM row)` holds which
//! `(k-range, output-channel)` slice of the filter — serving two purposes:
//!
//! * it is the address-generation step a real memory controller needs (the
//!   artifact's "memory address generation" the authors planned to move
//!   into the compiler back-end, §5);
//! * it cross-checks the command generator: the number of distinct DRAM
//!   rows the placement occupies must equal the `gacts` the code generator
//!   charges per streaming pass.

use crate::codegen::PimWorkload;
use pimflow_pimsim::PimConfig;
use std::collections::BTreeMap;

/// One placed fragment of the filter matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedFragment {
    /// Bank holding the fragment.
    pub bank: usize,
    /// DRAM row within the bank.
    pub row: usize,
    /// First element offset within the row (in f16 elements).
    pub offset: usize,
    /// Output channel this fragment belongs to.
    pub out_channel: usize,
    /// Reduction-dimension range `[k_begin, k_end)` of the fragment.
    pub k_begin: usize,
    /// End of the reduction range.
    pub k_end: usize,
}

impl PlacedFragment {
    /// Elements in the fragment.
    pub fn len(&self) -> usize {
        self.k_end - self.k_begin
    }

    /// True if the fragment is empty (never produced by placement).
    pub fn is_empty(&self) -> bool {
        self.k_end <= self.k_begin
    }
}

/// A full filter placement for one layer on one PIM channel.
///
/// Output channels are striped across banks (`oc mod banks`); within a
/// bank, each output channel's k-vector is laid out contiguously, packed
/// row after row — the layout whose streaming order the
/// `GWRITE-G_ACT-COMP-READRES` sequence follows.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPlacement {
    /// Fragments in placement order.
    pub fragments: Vec<PlacedFragment>,
    /// DRAM rows used in the busiest bank (= row activations per streaming
    /// pass).
    pub rows_used: usize,
    /// Total filter elements placed.
    pub elements: usize,
}

/// Places the filter matrix of `w` into the banks of one PIM channel.
///
/// # Panics
///
/// Panics if the workload is degenerate (`k_elems == 0` or
/// `out_channels == 0`).
pub fn place_filter(w: &PimWorkload, cfg: &PimConfig) -> FilterPlacement {
    assert!(w.k_elems > 0 && w.out_channels > 0, "degenerate workload");
    let row_elems = cfg.row_elems_per_bank();
    let mut fragments = Vec::new();
    // Per-bank write cursor: (row, offset).
    let mut cursor: Vec<(usize, usize)> = vec![(0, 0); cfg.banks];

    for oc in 0..w.out_channels {
        let bank = oc % cfg.banks;
        let mut k = 0;
        while k < w.k_elems {
            let (row, offset) = cursor[bank];
            let space = row_elems - offset;
            let take = space.min(w.k_elems - k);
            fragments.push(PlacedFragment {
                bank,
                row,
                offset,
                out_channel: oc,
                k_begin: k,
                k_end: k + take,
            });
            k += take;
            let new_offset = offset + take;
            cursor[bank] = if new_offset == row_elems {
                (row + 1, 0)
            } else {
                (row, new_offset)
            };
        }
    }

    let rows_used = cursor
        .iter()
        .map(|&(row, offset)| row + usize::from(offset > 0))
        .max()
        .unwrap_or(0);
    FilterPlacement {
        fragments,
        rows_used,
        elements: w.k_elems * w.out_channels,
    }
}

impl FilterPlacement {
    /// Checks structural invariants: fragments cover every
    /// `(out_channel, k)` pair exactly once and never overlap within a row.
    ///
    /// Returns a description of the first violation, if any.
    pub fn check(&self, w: &PimWorkload, cfg: &PimConfig) -> Option<String> {
        let row_elems = cfg.row_elems_per_bank();
        // Coverage per output channel.
        let mut covered: BTreeMap<usize, usize> = BTreeMap::new();
        for f in &self.fragments {
            if f.is_empty() {
                return Some(format!("empty fragment {f:?}"));
            }
            if f.offset + f.len() > row_elems {
                return Some(format!("fragment overflows its row: {f:?}"));
            }
            if f.bank >= cfg.banks {
                return Some(format!("fragment in nonexistent bank: {f:?}"));
            }
            *covered.entry(f.out_channel).or_insert(0) += f.len();
        }
        for oc in 0..w.out_channels {
            match covered.get(&oc) {
                Some(&n) if n == w.k_elems => {}
                other => {
                    return Some(format!(
                        "output channel {oc} covers {other:?} of {} k-elements",
                        w.k_elems
                    ))
                }
            }
        }
        // No two fragments may overlap in (bank, row, offset range).
        let mut spans: Vec<(usize, usize, usize, usize)> = self
            .fragments
            .iter()
            .map(|f| (f.bank, f.row, f.offset, f.offset + f.len()))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            let (b0, r0, _, e0) = pair[0];
            let (b1, r1, s1, _) = pair[1];
            if b0 == b1 && r0 == r1 && s1 < e0 {
                return Some(format!("overlapping fragments in bank {b0} row {r0}"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate_blocks;

    fn workload(rows: usize, k: usize, oc: usize) -> PimWorkload {
        PimWorkload {
            rows,
            k_elems: k,
            out_channels: oc,
            strided: false,
            segments: 1,
        }
    }

    #[test]
    fn small_filter_fits_one_row() {
        let cfg = PimConfig::default();
        let w = workload(16, 32, 16); // 32 elements per bank, row holds 512
        let p = place_filter(&w, &cfg);
        assert_eq!(p.rows_used, 1);
        assert!(p.check(&w, &cfg).is_none(), "{:?}", p.check(&w, &cfg));
    }

    #[test]
    fn deep_filters_span_rows() {
        let cfg = PimConfig::default();
        let w = workload(1, 2048, 16); // 2048 elems per bank = 4 rows
        let p = place_filter(&w, &cfg);
        assert_eq!(p.rows_used, 4);
        assert!(p.check(&w, &cfg).is_none());
    }

    #[test]
    fn many_output_channels_stripe_across_banks() {
        let cfg = PimConfig::default();
        let w = workload(1, 64, 256); // 16 ocs per bank x 64 elems = 2 rows
        let p = place_filter(&w, &cfg);
        assert_eq!(p.rows_used, 2);
        // Every bank must be used.
        let banks: std::collections::HashSet<usize> = p.fragments.iter().map(|f| f.bank).collect();
        assert_eq!(banks.len(), cfg.banks);
    }

    #[test]
    fn placement_rows_match_codegen_gacts() {
        // The cross-check: for every workload, the rows the placement uses
        // must equal the G_ACTs the command generator charges per pass.
        let cfg = PimConfig::default();
        for (k, oc) in [
            (32, 16),
            (64, 384),
            (576, 64),
            (2048, 16),
            (25088, 4096),
            (1, 1),
            (513, 17),
        ] {
            let w = workload(8, k, oc);
            let p = place_filter(&w, &cfg);
            assert!(
                p.check(&w, &cfg).is_none(),
                "k={k} oc={oc}: {:?}",
                p.check(&w, &cfg)
            );
            let blocks = generate_blocks(&w, &cfg);
            assert_eq!(
                blocks[0].gacts as usize, p.rows_used,
                "k={k} oc={oc}: codegen charges {} G_ACTs, placement needs {} rows",
                blocks[0].gacts, p.rows_used
            );
        }
    }

    #[test]
    fn check_catches_corruption() {
        let cfg = PimConfig::default();
        let w = workload(1, 64, 8);
        let mut p = place_filter(&w, &cfg);
        p.fragments.pop();
        assert!(
            p.check(&w, &cfg).is_some(),
            "missing coverage must be caught"
        );
    }
}
