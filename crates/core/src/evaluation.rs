//! Whole-evaluation runner and machine-readable reporting.
//!
//! The artifact's top-level script ends by "run\[ning] the traces and
//! generat\[ing] an execution time graph for all PIM-candidate CONV layers
//! with four offloading mechanisms" (§A.6, Fig. 17). This module is that
//! step: it evaluates a set of models under a set of mechanisms, collects
//! the normalized results into one serializable [`EvaluationSuite`], and
//! renders them as CSV for downstream plotting.

use crate::policy::{evaluate, Policy};
use pimflow_ir::Graph;
use pimflow_json::json_struct;
use pimflow_kernels::{input_tensors, run_graph_with, ExecOptions, ExecOutput, ExecStats, Tensor};
use std::fmt::Write as _;

/// Numerical comparison of two graphs that are supposed to compute the
/// same function, produced by [`verify_equivalence`].
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Number of outputs compared.
    pub outputs: usize,
    /// Largest absolute element-wise difference across all outputs.
    pub max_abs_diff: f32,
    /// Executor counters from the original graph's run.
    pub original_stats: ExecStats,
    /// Executor counters from the transformed graph's run.
    pub transformed_stats: ExecStats,
}

impl EquivalenceReport {
    /// True if every output element agrees within `tol`.
    pub fn within(&self, tol: f32) -> bool {
        self.max_abs_diff <= tol
    }
}

/// Runs `graph` on the reference executor at an explicit worker width
/// (`None` reads `PIMFLOW_JOBS`), converting executor failures into
/// [`crate::Error::Execution`]. This is how the evaluation and equivalence
/// flows thread a `--jobs` setting down to kernel execution.
///
/// # Errors
///
/// Returns [`crate::Error::Execution`] if the executor rejects the graph or
/// inputs.
pub fn run_with_pool(
    graph: &Graph,
    inputs: &[Tensor],
    jobs: Option<usize>,
) -> crate::Result<ExecOutput> {
    run_graph_with(
        graph,
        inputs,
        &ExecOptions {
            jobs,
            ..ExecOptions::default()
        },
    )
    .map_err(|e| crate::Error::Execution(e.to_string()))
}

/// Runs `original` and `transformed` on identical seeded inputs (at worker
/// width `jobs`) and reports how closely their outputs agree. The caller
/// decides the tolerance — bitwise equality is `max_abs_diff == 0.0`.
///
/// # Errors
///
/// Returns [`crate::Error::Execution`] if either graph fails to run or the
/// two graphs disagree on output arity or shapes.
pub fn verify_equivalence(
    original: &Graph,
    transformed: &Graph,
    seed: u64,
    jobs: Option<usize>,
) -> crate::Result<EquivalenceReport> {
    let inputs = input_tensors(original, seed);
    let a = run_with_pool(original, &inputs, jobs)?;
    let b = run_with_pool(transformed, &inputs, jobs)?;
    if a.outputs.len() != b.outputs.len() {
        return Err(crate::Error::Execution(format!(
            "output arity differs: {} vs {}",
            a.outputs.len(),
            b.outputs.len()
        )));
    }
    let mut max_abs_diff = 0.0f32;
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        if x.shape() != y.shape() {
            return Err(crate::Error::Execution(format!(
                "output shapes differ: {} vs {}",
                x.shape(),
                y.shape()
            )));
        }
        max_abs_diff = max_abs_diff.max(x.max_abs_diff(y));
    }
    Ok(EquivalenceReport {
        outputs: a.outputs.len(),
        max_abs_diff,
        original_stats: a.stats,
        transformed_stats: b.stats,
    })
}

/// One `(model, policy)` cell of the evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationCell {
    /// Model name.
    pub model: String,
    /// Mechanism evaluated.
    pub policy: Policy,
    /// End-to-end latency, microseconds.
    pub e2e_us: f64,
    /// PIM-candidate CONV layer time, microseconds.
    pub conv_us: f64,
    /// Total energy, microjoules.
    pub energy_uj: f64,
    /// E2E speedup over this model's baseline.
    pub e2e_speedup: f64,
    /// CONV-layer speedup over this model's baseline.
    pub conv_speedup: f64,
    /// Energy relative to this model's baseline (< 1 is a saving).
    pub energy_ratio: f64,
}

/// The full evaluation matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvaluationSuite {
    /// All cells, grouped by model in input order.
    pub cells: Vec<EvaluationCell>,
}

json_struct!(EvaluationCell {
    model,
    policy,
    e2e_us,
    conv_us,
    energy_uj,
    e2e_speedup,
    conv_speedup,
    energy_ratio,
});
json_struct!(EvaluationSuite { cells });

impl EvaluationSuite {
    /// Runs `policies` over `models` (the baseline is always evaluated
    /// first per model so the normalizations are well-defined).
    ///
    /// # Errors
    ///
    /// Propagates the first [`crate::Error`] any `(model, policy)` cell
    /// produces.
    pub fn run(models: &[Graph], policies: &[Policy]) -> crate::Result<EvaluationSuite> {
        let mut cells = Vec::new();
        for g in models {
            let baseline = evaluate(g, Policy::Baseline)?;
            let base_e2e = baseline.report.total_us;
            let base_conv = baseline.conv_layer_us.max(1e-12);
            let base_energy = baseline.report.energy_uj;
            for &policy in policies {
                let e = if policy == Policy::Baseline {
                    baseline.clone()
                } else {
                    evaluate(g, policy)?
                };
                cells.push(EvaluationCell {
                    model: g.name.clone(),
                    policy,
                    e2e_us: e.report.total_us,
                    conv_us: e.conv_layer_us,
                    energy_uj: e.report.energy_uj,
                    e2e_speedup: base_e2e / e.report.total_us,
                    conv_speedup: base_conv / e.conv_layer_us.max(1e-12),
                    energy_ratio: e.report.energy_uj / base_energy,
                });
            }
        }
        Ok(EvaluationSuite { cells })
    }

    /// The cell for `(model, policy)`, if present.
    pub fn cell(&self, model: &str, policy: Policy) -> Option<&EvaluationCell> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.policy == policy)
    }

    /// Geometric-mean e2e speedup of `policy` across all models.
    pub fn geomean_e2e_speedup(&self, policy: Policy) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.policy == policy)
            .map(|c| c.e2e_speedup)
            .collect();
        if vals.is_empty() {
            return 1.0;
        }
        (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
    }

    /// Renders the suite as CSV (`model,policy,e2e_us,...`), one row per
    /// cell, parseable by any plotting tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "model,policy,e2e_us,conv_us,energy_uj,e2e_speedup,conv_speedup,energy_ratio\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4}",
                c.model,
                c.policy.name(),
                c.e2e_us,
                c.conv_us,
                c.energy_uj,
                c.e2e_speedup,
                c.conv_speedup,
                c.energy_ratio
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::models;

    fn toy_suite() -> EvaluationSuite {
        EvaluationSuite::run(
            &[models::toy()],
            &[Policy::Baseline, Policy::NewtonPlusPlus, Policy::Pimflow],
        )
        .unwrap()
    }

    #[test]
    fn baseline_cells_normalize_to_one() {
        let s = toy_suite();
        let b = s.cell("toy", Policy::Baseline).unwrap();
        assert_eq!(b.e2e_speedup, 1.0);
        assert_eq!(b.conv_speedup, 1.0);
        assert_eq!(b.energy_ratio, 1.0);
    }

    #[test]
    fn pimflow_geomean_beats_baseline() {
        let s = toy_suite();
        assert!(s.geomean_e2e_speedup(Policy::Pimflow) > 1.0);
        assert_eq!(s.geomean_e2e_speedup(Policy::Baseline), 1.0);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let s = toy_suite();
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("model,policy,"));
        assert_eq!(lines.len(), 1 + s.cells.len());
        assert!(csv.contains("toy,PIMFlow,"));
    }

    #[test]
    fn verify_equivalence_on_identical_graphs_is_bitwise() {
        let g = models::toy();
        let r = verify_equivalence(&g, &g, 7, Some(2)).unwrap();
        assert_eq!(r.max_abs_diff, 0.0);
        assert!(r.within(0.0));
        assert_eq!(r.outputs, 1);
        assert_eq!(r.original_stats, r.transformed_stats);
    }

    #[test]
    fn verify_equivalence_rejects_different_arity() {
        use pimflow_ir::{ActivationKind, GraphBuilder, Shape};
        let g = models::toy();
        // A graph with the same input shape but different output shape.
        let mut b = GraphBuilder::new("other");
        let x = b.input(Shape::nhwc(1, 32, 32, 3));
        let y = b.conv_act(x, 4, 3, 1, 1, ActivationKind::Relu);
        let other = b.finish(y);
        let err = verify_equivalence(&g, &other, 7, Some(1));
        assert!(matches!(err, Err(crate::Error::Execution(_))));
    }

    #[test]
    fn suite_serializes() {
        let s = toy_suite();
        let json = pimflow_json::to_string(&s);
        let back: EvaluationSuite = pimflow_json::from_str(&json).unwrap();
        // Float JSON round-trips lose ulps; compare structure and values
        // within tolerance instead of bitwise.
        assert_eq!(s.cells.len(), back.cells.len());
        for (a, b) in s.cells.iter().zip(&back.cells) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.policy, b.policy);
            assert!((a.e2e_us - b.e2e_us).abs() < 1e-6);
            assert!((a.energy_uj - b.energy_uj).abs() < 1e-3);
        }
    }
}
