//! Pipelining pass (§4.2.1, §4.2.2).
//!
//! Takes a subgraph of consecutive nodes — one of the paper's three
//! patterns, `1x1–DW` (Type 1), `DW–1x1` (Type 2), `1x1–DW–1x1` (Type 3),
//! with the BN/activation nodes between the convolutions carried along —
//! and splits every node into pipeline-stage parts over the output height.
//! Part `p` of stage `t` depends only on parts `0..=p` of stage `t-1`, so
//! GPU stages (depthwise convs, element-wise epilogues) overlap PIM stages
//! (1x1 convs) in a wavefront; the inserted `concat` before later parts
//! "enforces data dependency for boundary elements when filters are bigger
//! than 1x1" exactly as in Fig. 5 (nodes 3(A)/3(B)/4(A)/4(B)).

use crate::passes::mddp::PassError;
use crate::passes::split_util::{
    conv_input_span, emit_conv_on_span, emit_elementwise_part, even_ranges, rows_from_parts,
};
use crate::placement::Placement;
use pimflow_ir::{
    analysis::{classify, LayerClass},
    infer_shapes, ConcatAttrs, Graph, NodeId, Op, ValueId,
};
use std::ops::Range;

/// The three pipeline subgraph patterns evaluated in the paper (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Type 1: 1x1 CONV followed by DW CONV.
    PwDw,
    /// Type 2: DW CONV followed by 1x1 CONV.
    DwPw,
    /// Type 3: 1x1 CONV, DW CONV, 1x1 CONV.
    PwDwPw,
}

impl PatternKind {
    /// Conv-layer class sequence of the pattern.
    pub fn classes(self) -> &'static [LayerClass] {
        match self {
            PatternKind::PwDw => &[LayerClass::PointwiseConv, LayerClass::DepthwiseConv],
            PatternKind::DwPw => &[LayerClass::DepthwiseConv, LayerClass::PointwiseConv],
            PatternKind::PwDwPw => &[
                LayerClass::PointwiseConv,
                LayerClass::DepthwiseConv,
                LayerClass::PointwiseConv,
            ],
        }
    }
}

/// A pipelining candidate: a linear chain of nodes whose conv skeleton
/// matches one of the patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// All chain nodes in order (convs and the element-wise nodes between
    /// them).
    pub nodes: Vec<NodeId>,
    /// The conv nodes only, in order.
    pub convs: Vec<NodeId>,
    /// Which pattern the conv skeleton matches.
    pub pattern: PatternKind,
}

/// True for nodes that ride along inside a chain: the shared rider
/// classification lives in [`split_util`](crate::passes::split_util) —
/// this is a re-export-style alias kept for the scanner below and its
/// callers.
pub(crate) use crate::passes::split_util::is_linear_rider as is_chain_elementwise;

/// The single consumer of `id`'s output, if it has exactly one and that
/// consumer uses it as its only input.
pub(crate) fn sole_linear_successor(graph: &Graph, id: NodeId) -> Option<NodeId> {
    let consumers = graph.successors(id);
    if consumers.len() != 1 {
        return None;
    }
    let next = consumers[0];
    if graph.node(next).inputs.len() != 1 {
        return None;
    }
    Some(next)
}

/// Walks forward from `start`, collecting the linear run of nodes the
/// `is_heavy` predicate accepts, separated by element-wise riders. Stops
/// at the first node that is neither, has multiple consumers, or has
/// multiple inputs, and trims trailing riders so the run ends at a heavy
/// node. Returns `(all nodes, heavy nodes)` in order.
///
/// This is the one chain scanner in the codebase: the pipelining pass
/// instantiates it with "any conv" (then classifies the skeleton against
/// the [`PatternKind`]s), the fusion pass with "PIM-eligible heavy layer".
pub(crate) fn linear_run_by(
    graph: &Graph,
    start: NodeId,
    max_heavy: usize,
    is_heavy: impl Fn(&Graph, NodeId) -> bool,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut nodes = vec![start];
    let mut heavy = vec![start];
    let mut cur = start;
    while let Some(next) = sole_linear_successor(graph, cur) {
        if is_heavy(graph, next) {
            if heavy.len() == max_heavy {
                break;
            }
            nodes.push(next);
            heavy.push(next);
        } else if is_chain_elementwise(&graph.node(next).op) {
            nodes.push(next);
        } else {
            break;
        }
        cur = next;
    }
    // Trim trailing element-wise nodes after the last heavy node: the run
    // ends at a heavy node (epilogues stay outside the subgraph).
    while let Some(&last) = nodes.last() {
        if is_heavy(graph, last) {
            break;
        }
        nodes.pop();
    }
    (nodes, heavy)
}

/// Finds all pipelining candidates in the graph (§4.2.2: extracted
/// subgraph patterns of 1x1 and DW CONV layers), longest pattern first at
/// each start node. Nodes already claimed by an earlier chain do not start
/// a new scan: the overlapping interior chains that used to come out of
/// re-scanning a claimed run were redundant DP options (the suffix DP can
/// never take both), and dropping them keeps one canonical candidate per
/// site.
pub fn find_chains(graph: &Graph) -> Vec<Chain> {
    let mut chains = Vec::new();
    let Ok(order) = graph.topo_order() else {
        return chains;
    };
    let mut claimed: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for &start in &order {
        if claimed.contains(&start) || !matches!(graph.node(start).op, Op::Conv2d(_)) {
            continue;
        }
        let (nodes, convs) = linear_run_by(graph, start, 3, |g, id| {
            matches!(g.node(id).op, Op::Conv2d(_))
        });
        let classes: Vec<LayerClass> = convs.iter().map(|&c| classify(graph, c)).collect();
        let pattern = [PatternKind::PwDwPw, PatternKind::PwDw, PatternKind::DwPw]
            .into_iter()
            .find(|p| classes.starts_with(p.classes()));
        if let Some(pattern) = pattern {
            let mut push_chain = |pattern: PatternKind| {
                let keep = pattern.classes().len();
                let convs: Vec<NodeId> = convs.iter().copied().take(keep).collect();
                let last_conv = *convs.last().expect("pattern is non-empty");
                let cut = nodes
                    .iter()
                    .position(|&n| n == last_conv)
                    .expect("pattern convs come from the walked node list");
                let nodes: Vec<NodeId> = nodes.iter().copied().take(cut + 1).collect();
                claimed.extend(nodes.iter().copied());
                chains.push(Chain {
                    nodes,
                    convs,
                    pattern,
                });
            };
            push_chain(pattern);
            // Algorithm 1 lines 11-15 expand candidate subgraphs one conv at
            // a time, so shorter prefixes are candidates of their own: a
            // 1x1-DW-1x1 site also offers its 1x1-DW prefix, and the DP
            // picks the profitable length.
            if pattern == PatternKind::PwDwPw {
                push_chain(PatternKind::PwDw);
            }
        }
    }
    chains
}

/// Pipeline-transforms `chain` with `stages` pipeline parts.
///
/// Every chain node is split into up to `stages` H-parts; 1x1 convs are
/// placed on PIM, depthwise convs and element-wise nodes on the GPU. The
/// final parts are concatenated and the original chain removed. Re-runs
/// shape inference.
///
/// # Errors
///
/// Returns [`PassError::NotApplicable`] if the chain is degenerate (final
/// height too small to split).
pub fn pipeline_chain(graph: &mut Graph, chain: &Chain, stages: usize) -> Result<(), PassError> {
    if stages < 2 {
        return Err(PassError::NotApplicable(
            "need at least 2 pipeline stages".into(),
        ));
    }
    let last = *chain.nodes.last().expect("chain non-empty");
    let last_out = graph.node(last).output;
    let final_h = graph
        .value(last_out)
        .desc
        .as_ref()
        .expect("shapes inferred")
        .shape
        .h();
    if final_h < stages {
        return Err(PassError::NotApplicable(format!(
            "final height {final_h} < {stages} stages"
        )));
    }

    let n = chain.nodes.len();
    // Output height of each chain node.
    let heights: Vec<usize> = chain
        .nodes
        .iter()
        .map(|&id| {
            graph
                .value(graph.node(id).output)
                .desc
                .as_ref()
                .unwrap()
                .shape
                .h()
        })
        .collect();

    // Cumulative part-end boundaries per chain node, back-propagated from
    // the final ranges through each node's receptive field.
    let final_ranges = even_ranges(final_h, stages);
    let parts_n = final_ranges.len();
    let mut ends: Vec<Vec<usize>> = vec![vec![0; parts_n]; n];
    for (p, r) in final_ranges.iter().enumerate() {
        ends[n - 1][p] = r.end;
    }
    for t in (0..n - 1).rev() {
        let (row, rest) = ends[t..].split_first_mut().expect("t < n");
        let next_row = &rest[0];
        for (end, &next_end) in row.iter_mut().zip(next_row) {
            let need = match &graph.node(chain.nodes[t + 1]).op {
                Op::Conv2d(a) => {
                    if next_end == 0 {
                        0
                    } else {
                        conv_input_span(a, heights[t], &(0..next_end)).rows.end
                    }
                }
                _ => next_end, // element-wise: identity receptive field
            };
            *end = need.min(heights[t]);
        }
        // Boundaries must be monotone and the last part covers everything.
        for p in 1..parts_n {
            let prev = ends[t][p - 1];
            if ends[t][p] < prev {
                ends[t][p] = prev;
            }
        }
        ends[t][parts_n - 1] = heights[t];
    }

    // Emit stage parts front to back.
    let chain_input = graph.node(chain.nodes[0]).inputs[0];
    // parts[t] = list of (value, output rows) for chain node t.
    let mut parts: Vec<Vec<(ValueId, Range<usize>)>> = Vec::with_capacity(n);
    for t in 0..n {
        let node_id = chain.nodes[t];
        let op = graph.node(node_id).op.clone();
        let placement = match classify(graph, node_id) {
            LayerClass::PointwiseConv => Placement::Pim,
            _ => Placement::Gpu,
        };
        let mut these = Vec::new();
        for p in 0..parts_n {
            let begin = if p == 0 { 0 } else { ends[t][p - 1] };
            let end = ends[t][p];
            if begin >= end {
                continue;
            }
            let tag = format!("pl{p}_");
            let value = match &op {
                Op::Conv2d(a) => {
                    let in_h = if t == 0 {
                        graph.value(chain_input).desc.as_ref().unwrap().shape.h()
                    } else {
                        heights[t - 1]
                    };
                    let span = conv_input_span(a, in_h, &(begin..end));
                    let input = if t == 0 {
                        rows_from_parts(
                            graph,
                            &[(chain_input, 0..in_h)],
                            &span.rows,
                            &format!("{tag}{}_in", graph.node(node_id).name),
                        )
                    } else {
                        rows_from_parts(
                            graph,
                            &parts[t - 1],
                            &span.rows,
                            &format!("{tag}{}_in", graph.node(node_id).name),
                        )
                    };
                    emit_conv_on_span(
                        graph,
                        node_id,
                        input,
                        span.pad_top,
                        span.pad_bottom,
                        placement,
                        &tag,
                    )
                }
                _ => {
                    let input = if t == 0 {
                        rows_from_parts(graph, &[(chain_input, 0..heights[0])], &(begin..end), &tag)
                    } else {
                        rows_from_parts(
                            graph,
                            &parts[t - 1],
                            &(begin..end),
                            &format!("{tag}{}_in", graph.node(node_id).name),
                        )
                    };
                    emit_elementwise_part(graph, node_id, vec![input], &tag)
                }
            };
            these.push((value, begin..end));
        }
        parts.push(these);
    }

    // Join the final parts and swap the chain out of the graph.
    let final_parts = parts.last().expect("chain non-empty");
    let joined = if final_parts.len() == 1 {
        final_parts[0].0
    } else {
        graph.add_node(
            format!("pl_{}_concat", graph.node(last).name),
            Op::Concat(ConcatAttrs { axis: 1 }),
            final_parts.iter().map(|(v, _)| *v).collect(),
        )
    };
    graph.replace_uses(last_out, joined);
    for &id in &chain.nodes {
        graph.remove_node(id);
    }
    infer_shapes(graph)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::{models, GraphBuilder, Shape};
    use pimflow_kernels::{input_tensors, run_graph};

    fn assert_equivalent(original: &Graph, transformed: &Graph, tol: f32) {
        let inputs = input_tensors(original, 23);
        let a = run_graph(original, &inputs).unwrap();
        let b = run_graph(transformed, &inputs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.allclose(y, tol),
                "outputs differ by {}",
                x.max_abs_diff(y)
            );
        }
    }

    /// A MobileNet-style inverted-residual core: 1x1 -> bn/relu6 -> dw ->
    /// bn/relu6 -> 1x1.
    fn pw_dw_pw_graph() -> Graph {
        let mut b = GraphBuilder::new("block");
        let x = b.input(Shape::nhwc(1, 12, 10, 8));
        let y = b.conv1x1(x, 24);
        let y = b.bn(y);
        let y = b.relu6(y);
        let y = b.dwconv(y, 24, 3, 1, 1);
        let y = b.bn(y);
        let y = b.relu6(y);
        let y = b.conv1x1(y, 16);
        b.finish(y)
    }

    #[test]
    fn finds_type3_chain_in_block() {
        let g = pw_dw_pw_graph();
        let chains = find_chains(&g);
        assert!(
            chains.iter().any(|c| c.pattern == PatternKind::PwDwPw),
            "{chains:?}"
        );
        let c = chains
            .iter()
            .find(|c| c.pattern == PatternKind::PwDwPw)
            .unwrap();
        assert_eq!(c.convs.len(), 3);
        assert_eq!(c.nodes.len(), 7);
        // Algorithm 1 also registers the Type-1 prefix of the same site.
        assert!(
            chains
                .iter()
                .any(|p| p.pattern == PatternKind::PwDw && p.nodes[0] == c.nodes[0]),
            "prefix chain missing"
        );
    }

    #[test]
    fn finds_chains_in_toy_and_mobilenet() {
        let toy = models::toy();
        let chains = find_chains(&toy);
        assert!(chains.iter().any(|c| c.pattern == PatternKind::PwDwPw));

        let mbv2 = models::mobilenet_v2();
        let chains = find_chains(&mbv2);
        let t3 = chains
            .iter()
            .filter(|c| c.pattern == PatternKind::PwDwPw)
            .count();
        assert!(
            t3 >= 10,
            "MobileNetV2 should have many 1x1-DW-1x1 chains, got {t3}"
        );
    }

    #[test]
    fn pipeline_type3_preserves_semantics() {
        for stages in [2, 3, 4] {
            let original = pw_dw_pw_graph();
            let mut t = original.clone();
            let chain = find_chains(&t)
                .into_iter()
                .find(|c| c.pattern == PatternKind::PwDwPw)
                .unwrap();
            pipeline_chain(&mut t, &chain, stages).unwrap();
            assert_equivalent(&original, &t, 1e-4);
        }
    }

    #[test]
    fn pipeline_type1_and_type2_preserve_semantics() {
        // Type 1: pw -> dw.
        let original = {
            let mut b = GraphBuilder::new("t1");
            let x = b.input(Shape::nhwc(1, 9, 7, 6));
            let y = b.conv1x1(x, 12);
            let y = b.dwconv(y, 12, 3, 1, 1);
            b.finish(y)
        };
        let mut t = original.clone();
        let chain = find_chains(&t)
            .into_iter()
            .find(|c| c.pattern == PatternKind::PwDw)
            .unwrap();
        pipeline_chain(&mut t, &chain, 2).unwrap();
        assert_equivalent(&original, &t, 1e-4);

        // Type 2: dw -> pw.
        let original = {
            let mut b = GraphBuilder::new("t2");
            let x = b.input(Shape::nhwc(1, 9, 7, 6));
            let y = b.dwconv(x, 6, 3, 1, 1);
            let y = b.conv1x1(y, 12);
            b.finish(y)
        };
        let mut t = original.clone();
        let chain = find_chains(&t)
            .into_iter()
            .find(|c| c.pattern == PatternKind::DwPw)
            .unwrap();
        pipeline_chain(&mut t, &chain, 2).unwrap();
        assert_equivalent(&original, &t, 1e-4);
    }

    #[test]
    fn pipeline_with_strided_dw_preserves_semantics() {
        let original = {
            let mut b = GraphBuilder::new("t");
            let x = b.input(Shape::nhwc(1, 14, 6, 4));
            let y = b.conv1x1(x, 8);
            let y = b.relu6(y);
            let y = b.dwconv(y, 8, 3, 2, 1);
            b.finish(y)
        };
        let mut t = original.clone();
        let chain = find_chains(&t)
            .into_iter()
            .find(|c| c.pattern == PatternKind::PwDw)
            .unwrap();
        pipeline_chain(&mut t, &chain, 2).unwrap();
        assert_equivalent(&original, &t, 1e-4);
    }

    #[test]
    fn pipelined_graph_has_pim_and_gpu_stage_nodes() {
        let mut t = pw_dw_pw_graph();
        let chain = find_chains(&t)
            .into_iter()
            .find(|c| c.pattern == PatternKind::PwDwPw)
            .unwrap();
        pipeline_chain(&mut t, &chain, 2).unwrap();
        let pim_nodes = t
            .node_ids()
            .filter(|&id| Placement::of_name(&t.node(id).name) == Placement::Pim)
            .count();
        // Two 1x1 convs x two parts on PIM.
        assert_eq!(pim_nodes, 4);
    }

    #[test]
    fn residual_block_chain_stops_at_fanout() {
        // The expanded 1x1 of an inverted residual with a skip connection:
        // its input value fans out, but the chain itself is still linear.
        let mut b = GraphBuilder::new("res");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 48);
        let y = b.dwconv(y, 48, 3, 1, 1);
        let y = b.conv1x1(y, 16);
        let y = b.add(y, x);
        let g = b.finish(y);
        let chains = find_chains(&g);
        let c = chains
            .iter()
            .find(|c| c.pattern == PatternKind::PwDwPw)
            .unwrap();
        // Chain must not include the Add.
        assert_eq!(c.nodes.len(), 3);
    }

    #[test]
    fn too_small_final_height_is_rejected() {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input(Shape::nhwc(1, 1, 4, 4));
        let y = b.conv1x1(x, 8);
        let y = b.dwconv(y, 8, 1, 1, 0);
        let mut g = b.finish(y);
        let chain = find_chains(&g).into_iter().next().unwrap();
        assert!(matches!(
            pipeline_chain(&mut g, &chain, 2),
            Err(PassError::NotApplicable(_))
        ));
    }
}
