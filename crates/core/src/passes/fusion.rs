//! Fusion-group pass: keep inter-layer activations near the banks.
//!
//! A fusion group is a producer→consumer run of PIM-eligible heavy layers
//! (non-depthwise convs and FC layers, the [`Graph::is_pim_candidate`]
//! set) connected through single-input element-wise riders. When the
//! whole run executes on the PIM side, the intermediate activations never
//! need to cross the channel bus: the producer's result `DRAIN` and the
//! consumer's input staging `BUFWRITE` collapse into `BANKFEED`s (see
//! [`pimflow_isa::FusedRole`]), and the riders between them are applied
//! near the banks during the hand-off.
//!
//! The pass itself is a pure placement transformation: it renames the
//! group members with [`crate::placement::fused_tag`] tags
//! (`pim::fuse.<gid>.<role>::<base>`) and changes no dataflow, so a fused
//! graph is numerically identical to the original by construction. The
//! engine and the cost model read the tags to price the fused lowering;
//! Algorithm 1 decides where fusing pays (see
//! [`Decision::Fused`](crate::search::Decision::Fused)).

use crate::passes::mddp::PassError;
use crate::passes::pipeline::{is_chain_elementwise, linear_run_by};
use crate::placement::{fused_tag, FusedNodeRole, PIM_PREFIX};
use pimflow_ir::{Graph, NodeId};
use std::collections::HashSet;

/// A fusion candidate: a linear run of PIM-eligible heavy layers and the
/// element-wise riders between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// All group nodes in order (heavy layers and riders).
    pub nodes: Vec<NodeId>,
    /// The heavy layers only, in order (at least two).
    pub heavy: Vec<NodeId>,
}

/// True for layers that can anchor or extend a fusion group: the PIM
/// candidates (non-depthwise, ungrouped convs and FC layers). Depthwise
/// convs, pools, and multi-input ops terminate a group.
pub fn is_fusion_heavy(graph: &Graph, id: NodeId) -> bool {
    graph.is_pim_candidate(id)
}

/// Finds all fusion candidates: maximal linear runs of two or more heavy
/// layers, scanned in topological order through the same linear-run
/// walker the pipelining pass uses. Runs claimed by an earlier group do
/// not start a new scan, so the returned groups are disjoint.
pub fn find_fusion_groups(graph: &Graph) -> Vec<FusionGroup> {
    let mut groups = Vec::new();
    let Ok(order) = graph.topo_order() else {
        return groups;
    };
    let mut claimed: HashSet<NodeId> = HashSet::new();
    for &start in &order {
        if claimed.contains(&start) || !is_fusion_heavy(graph, start) {
            continue;
        }
        let (nodes, heavy) = linear_run_by(graph, start, usize::MAX, is_fusion_heavy);
        if heavy.len() < 2 {
            continue;
        }
        claimed.extend(nodes.iter().copied());
        groups.push(FusionGroup { nodes, heavy });
    }
    groups
}

/// Marks `group`'s members as fusion group `gid`: the first heavy layer
/// becomes the head, the last the tail, interior heavy layers middles,
/// and the element-wise nodes between them riders. The transformation is
/// rename-only — dataflow, shapes, and numerics are untouched.
///
/// # Errors
///
/// Returns [`PassError::NotApplicable`] when the group has fewer than two
/// heavy layers, a member is already placed (tagged `pim::`), a listed
/// rider is not element-wise, or a heavy member is not in the node list.
pub fn fuse_group(graph: &mut Graph, group: &FusionGroup, gid: usize) -> Result<(), PassError> {
    if group.heavy.len() < 2 {
        return Err(PassError::NotApplicable(
            "fusion group needs at least two heavy layers".into(),
        ));
    }
    let heavy: HashSet<NodeId> = group.heavy.iter().copied().collect();
    for &id in &group.heavy {
        if !group.nodes.contains(&id) {
            return Err(PassError::NotApplicable(
                "fusion group heavy layer missing from its node list".into(),
            ));
        }
    }
    for &id in &group.nodes {
        let node = graph.node(id);
        if node.name.starts_with(PIM_PREFIX) {
            return Err(PassError::NotApplicable(format!(
                "node `{}` is already placed",
                node.name
            )));
        }
        if !heavy.contains(&id) && !is_chain_elementwise(&node.op) {
            return Err(PassError::NotApplicable(format!(
                "fusion rider `{}` is not element-wise",
                node.name
            )));
        }
    }
    let first = group.heavy[0];
    let last = *group.heavy.last().expect("checked above");
    for &id in &group.nodes {
        let role = if !heavy.contains(&id) {
            FusedNodeRole::Rider
        } else if id == first {
            FusedNodeRole::Head
        } else if id == last {
            FusedNodeRole::Tail
        } else {
            FusedNodeRole::Middle
        };
        let tagged = fused_tag(gid, role, &graph.node(id).name);
        graph.node_mut(id).name = tagged;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{parse_fused, Placement};
    use pimflow_ir::{models, GraphBuilder, Shape};
    use pimflow_kernels::{input_tensors, run_graph};

    #[test]
    fn toy_has_one_group_over_the_leading_convs() {
        let g = models::toy();
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        let names: Vec<&str> = groups[0]
            .nodes
            .iter()
            .map(|&id| g.node(id).name.as_str())
            .collect();
        assert_eq!(names, ["conv_1", "relu_2", "conv_3"]);
        assert_eq!(groups[0].heavy.len(), 2);
    }

    #[test]
    fn depthwise_and_pool_terminate_groups() {
        // pw -> dw -> pw: the dw conv is not fusion-heavy and not
        // element-wise, so no group spans it.
        let mut b = GraphBuilder::new("block");
        let x = b.input(Shape::nhwc(1, 8, 8, 8));
        let y = b.conv1x1(x, 16);
        let y = b.dwconv(y, 16, 3, 1, 1);
        let y = b.conv1x1(y, 8);
        let g = b.finish(y);
        assert!(find_fusion_groups(&g).is_empty());
    }

    #[test]
    fn fanout_terminates_groups() {
        // conv -> conv where the intermediate also feeds a residual Add:
        // the fan-out means the activation must leave the PIM side anyway.
        let mut b = GraphBuilder::new("res");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 16);
        let z = b.conv1x1(y, 16);
        let w = b.add(z, y);
        let g = b.finish(w);
        assert!(find_fusion_groups(&g).is_empty());
    }

    #[test]
    fn groups_are_disjoint_and_maximal() {
        // conv -> relu -> conv -> relu -> conv: one group of three heavy
        // layers, not two overlapping pairs.
        let mut b = GraphBuilder::new("deep");
        let x = b.input(Shape::nhwc(1, 8, 8, 4));
        let y = b.conv1x1(x, 8);
        let y = b.relu(y);
        let y = b.conv1x1(y, 8);
        let y = b.relu(y);
        let y = b.conv1x1(y, 4);
        let g = b.finish(y);
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].heavy.len(), 3);
        assert_eq!(groups[0].nodes.len(), 5);
    }

    #[test]
    fn fuse_group_is_rename_only_and_preserves_numerics() {
        let original = models::toy();
        let mut fused = original.clone();
        let group = find_fusion_groups(&fused).into_iter().next().unwrap();
        fuse_group(&mut fused, &group, 0).unwrap();
        // Placement tags landed with the right roles.
        let roles: Vec<_> = group
            .nodes
            .iter()
            .map(|&id| parse_fused(&fused.node(id).name).unwrap())
            .collect();
        assert_eq!(
            roles[0],
            (0, crate::placement::FusedNodeRole::Head, "conv_1")
        );
        assert_eq!(
            roles[1],
            (0, crate::placement::FusedNodeRole::Rider, "relu_2")
        );
        assert_eq!(
            roles[2],
            (0, crate::placement::FusedNodeRole::Tail, "conv_3")
        );
        for &id in &group.nodes {
            assert_eq!(Placement::of_name(&fused.node(id).name), Placement::Pim);
        }
        // Rename-only: outputs are bit-identical.
        let inputs = input_tensors(&original, 11);
        let a = run_graph(&original, &inputs).unwrap();
        let b = run_graph(&fused, &inputs).unwrap();
        assert_eq!(a[0].max_abs_diff(&b[0]), 0.0);
    }

    #[test]
    fn fuse_group_rejects_degenerate_groups() {
        let mut g = models::toy();
        let id = g.find_node("conv_1").unwrap();
        let solo = FusionGroup {
            nodes: vec![id],
            heavy: vec![id],
        };
        assert!(matches!(
            fuse_group(&mut g, &solo, 0),
            Err(PassError::NotApplicable(_))
        ));
        // Double-fusing the same nodes is rejected: they are already
        // placed.
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        fuse_group(&mut g, &group, 0).unwrap();
        assert!(matches!(
            fuse_group(&mut g, &group, 1),
            Err(PassError::NotApplicable(_))
        ));
    }
}
