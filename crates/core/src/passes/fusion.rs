//! Fusion-group pass: keep inter-layer activations near the banks.
//!
//! A fusion group is a producer→consumer run of PIM-eligible heavy layers
//! (non-depthwise convs and FC layers, the [`Graph::is_pim_candidate`]
//! set) connected through single-input element-wise riders. When the
//! whole run executes on the PIM side, the intermediate activations never
//! need to cross the channel bus: the producer's result `DRAIN` and the
//! consumer's input staging `BUFWRITE` collapse into `BANKFEED`s (see
//! [`pimflow_isa::FusedRole`]), and the riders between them are applied
//! near the banks during the hand-off.
//!
//! The pass itself is a pure placement transformation: it renames the
//! group members with [`crate::placement::fused_tag`] tags
//! (`pim::fuse.<gid>.<role>::<base>`) and changes no dataflow, so a fused
//! graph is numerically identical to the original by construction. The
//! engine and the cost model read the tags to price the fused lowering;
//! Algorithm 1 decides where fusing pays (see
//! [`Decision::Fused`](crate::search::Decision::Fused)).

use crate::passes::mddp::PassError;
use crate::passes::split_util::{
    conv_input_span, emit_conv_on_span, emit_elementwise_part, is_linear_rider, is_residual_rider,
    rows_from_parts,
};
use crate::placement::{fused_tag, FusedNodeRole, Placement, PIM_PREFIX};
use pimflow_ir::{infer_shapes, ConcatAttrs, Graph, NodeId, Op, ValueId};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// A fusion candidate: a linear run of PIM-eligible heavy layers and the
/// element-wise riders between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// All group nodes in order (heavy layers and riders).
    pub nodes: Vec<NodeId>,
    /// The heavy layers only, in order (at least two).
    pub heavy: Vec<NodeId>,
}

/// True for layers that can anchor or extend a fusion group: the PIM
/// candidates (non-depthwise, ungrouped convs and FC layers). Depthwise
/// convs, pools, and multi-input ops terminate a group.
pub fn is_fusion_heavy(graph: &Graph, id: NodeId) -> bool {
    graph.is_pim_candidate(id)
}

/// Finds all fusion candidates: maximal residual-aware runs of two or
/// more heavy layers, scanned in topological order. Runs claimed by an
/// earlier group do not start a new scan, so the returned groups are
/// disjoint.
///
/// Unlike the pipelining pass's strictly linear scanner, the fusion
/// walker continues past skip-connection fan-outs whose rejoin lands
/// back inside the group: when a member's output feeds one followable
/// trunk successor *and* one two-input residual rider (`Add`/`Mul`), the
/// walker follows the trunk and absorbs the rider once every operand is
/// group-resident — the element-wise rejoin becomes a near-bank rider
/// instead of a group terminator, which is what lets ResNet-style
/// bottleneck towers fuse end to end. A fan-out whose rejoin never
/// resolves (a projection shortcut, a true graph split) rolls the group
/// back to the fork.
pub fn find_fusion_groups(graph: &Graph) -> Vec<FusionGroup> {
    let mut groups = Vec::new();
    let Ok(order) = graph.topo_order() else {
        return groups;
    };
    let mut claimed: HashSet<NodeId> = HashSet::new();
    for &start in &order {
        if claimed.contains(&start) || !is_fusion_heavy(graph, start) {
            continue;
        }
        let (nodes, heavy) = residual_run(graph, start);
        if heavy.len() < 2 {
            continue;
        }
        claimed.extend(nodes.iter().copied());
        groups.push(FusionGroup { nodes, heavy });
    }
    groups
}

/// Walks forward from heavy node `start`, collecting the residual-aware
/// run described on [`find_fusion_groups`]. Returns `(all nodes, heavy
/// nodes)` in order.
fn residual_run(graph: &Graph, start: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut nodes = vec![start];
    let mut heavy = vec![start];
    // Values resident near the banks once the group executes fused: the
    // head's own inputs (staged for it) and every member's output.
    let mut available: HashSet<ValueId> = graph.node(start).inputs.iter().copied().collect();
    available.insert(graph.node(start).output);
    // Unresolved skip fan-outs: the forked value plus the group length at
    // the fork, so a skip that never rejoins rolls the group back to it.
    let mut pending: Vec<(ValueId, usize, usize)> = Vec::new();
    let mut cur = start;
    loop {
        let out = graph.node(cur).output;
        let consumers = graph.successors(cur);
        let next = match consumers.as_slice() {
            [one] => *one,
            [a, b] => {
                // Skip-connection fan-out: exactly one trunk successor to
                // keep walking and one residual rider that must rejoin
                // downstream with group-resident operands.
                let trunk = |id: NodeId| {
                    graph.node(id).inputs.len() == 1
                        && (is_fusion_heavy(graph, id) || is_linear_rider(&graph.node(id).op))
                };
                let rejoiner = |id: NodeId| {
                    let n = graph.node(id);
                    is_residual_rider(&n.op) && n.inputs.len() == 2 && n.inputs.contains(&out)
                };
                if trunk(*a) && rejoiner(*b) {
                    pending.push((out, nodes.len(), heavy.len()));
                    *a
                } else if trunk(*b) && rejoiner(*a) {
                    pending.push((out, nodes.len(), heavy.len()));
                    *b
                } else {
                    break;
                }
            }
            _ => break,
        };
        let node = graph.node(next);
        if node.inputs.len() == 1 && is_fusion_heavy(graph, next) {
            nodes.push(next);
            heavy.push(next);
        } else if node.inputs.len() == 1 && is_linear_rider(&node.op) {
            nodes.push(next);
        } else if is_residual_rider(&node.op) && node.inputs.iter().all(|v| available.contains(v)) {
            // The rejoin: every operand is already group-resident, so the
            // element-wise op applies near the banks during the hand-off.
            nodes.push(next);
            pending.retain(|(v, _, _)| !node.inputs.contains(v));
        } else {
            break;
        }
        available.insert(node.output);
        cur = next;
    }
    // Skips that never rejoined leave the fused region through the bus
    // anyway: roll back to the earliest unresolved fork.
    if let Some(&(_, n_len, h_len)) = pending.iter().min_by_key(|&&(_, n, _)| n) {
        nodes.truncate(n_len);
        heavy.truncate(h_len);
    }
    // Trim trailing single-input riders so linear runs still end at a
    // heavy node (epilogues stay outside the region, as before); a
    // trailing residual rejoin stays — pricing it near the banks is the
    // point of absorbing it.
    while let Some(&last) = nodes.last() {
        if is_fusion_heavy(graph, last) || is_residual_rider(&graph.node(last).op) {
            break;
        }
        nodes.pop();
    }
    (nodes, heavy)
}

/// Marks `group`'s members as fusion group `gid`: the first heavy layer
/// becomes the head, the last the tail, interior heavy layers middles,
/// and the element-wise nodes between them riders. The transformation is
/// rename-only — dataflow, shapes, and numerics are untouched.
///
/// # Errors
///
/// Returns [`PassError::NotApplicable`] when the group has fewer than two
/// heavy layers, a member is already placed (tagged `pim::`), a listed
/// rider is not element-wise, or a heavy member is not in the node list.
pub fn fuse_group(graph: &mut Graph, group: &FusionGroup, gid: usize) -> Result<(), PassError> {
    if group.heavy.len() < 2 {
        return Err(PassError::NotApplicable(
            "fusion group needs at least two heavy layers".into(),
        ));
    }
    let heavy: HashSet<NodeId> = group.heavy.iter().copied().collect();
    for &id in &group.heavy {
        if !group.nodes.contains(&id) {
            return Err(PassError::NotApplicable(
                "fusion group heavy layer missing from its node list".into(),
            ));
        }
    }
    for &id in &group.nodes {
        let node = graph.node(id);
        if node.name.starts_with(PIM_PREFIX) {
            return Err(PassError::NotApplicable(format!(
                "node `{}` is already placed",
                node.name
            )));
        }
        if !heavy.contains(&id) && !is_linear_rider(&node.op) && !is_residual_rider(&node.op) {
            return Err(PassError::NotApplicable(format!(
                "fusion rider `{}` is not element-wise",
                node.name
            )));
        }
    }
    let first = group.heavy[0];
    let last = *group.heavy.last().expect("checked above");
    for &id in &group.nodes {
        let role = if !heavy.contains(&id) {
            FusedNodeRole::Rider
        } else if id == first {
            FusedNodeRole::Head
        } else if id == last {
            FusedNodeRole::Tail
        } else {
            FusedNodeRole::Middle
        };
        let tagged = fused_tag(gid, role, &graph.node(id).name);
        graph.node_mut(id).name = tagged;
    }
    Ok(())
}

/// Uniform tensor height of `group` when it admits an interior MD-DP
/// split, `None` otherwise. Eligible groups are those an H-split slices
/// losslessly through every member at once: every heavy member is a
/// stride-1 ungrouped conv — pointwise members split exactly on the row
/// boundary, wider kernels (the 3x3s inside resnet bottleneck towers)
/// over-compute a halo of boundary rows per branch, priced into nothing
/// because the uniform-height check below forces "same" H padding (out
/// H = in H under stride 1 pins `2*pad_h = kernel_h - 1`), so
/// [`conv_input_span`] gives each member an exact input span — every
/// rider preserves H row-locally (`Mul` is excluded: its `[N,1,1,C]`
/// broadcast operand does not slice), and every value touching the
/// group (member outputs and external skip inputs alike) has that same
/// height, at least 2 rows tall.
pub fn interior_split_height(graph: &Graph, group: &FusionGroup) -> Option<usize> {
    // `h()` panics on non-NHWC shapes (Dense groups carry 2-D tensors).
    let nhwc_h = |v: ValueId| -> Option<usize> {
        let shape = &graph.value(v).desc.as_ref()?.shape;
        (shape.rank() == 4).then(|| shape.h())
    };
    let input = *graph.node(*group.nodes.first()?).inputs.first()?;
    let h = nhwc_h(input)?;
    if h < 2 {
        return None;
    }
    let heavy: HashSet<NodeId> = group.heavy.iter().copied().collect();
    for &id in &group.nodes {
        let node = graph.node(id);
        if heavy.contains(&id) {
            match &node.op {
                Op::Conv2d(a) if a.stride.h == 1 && a.stride.w == 1 && a.groups == 1 => {}
                _ => return None,
            }
        } else if matches!(node.op, Op::Mul) {
            return None;
        }
        if nhwc_h(node.output)? != h {
            return None;
        }
        for &v in &node.inputs {
            if nhwc_h(v)? != h {
                return None;
            }
        }
    }
    Some(h)
}

/// Applies `group` at an interior MD-DP ratio: the *whole fused region*
/// is H-split once, `gpu_percent`% of the rows running as a plain GPU
/// copy of every member and the rest as a fused PIM region tagged group
/// `gid` (same [`fuse_group`] roles), with one concat joining the two
/// branch tails.
///
/// Each branch's row requirements are computed by a backward pass over
/// the members: a wide-kernel conv widens its input's needed range by
/// [`conv_input_span`] (the halo), an element-wise rider passes its own
/// range through, and a value consumed twice (a residual fork) needs the
/// union. Every branch node is then emitted over exactly its needed
/// rows — boundary halo rows are over-computed independently by both
/// branches from the sliced external inputs, so numerics are preserved
/// exactly; a consumer that needs fewer rows than its producer made
/// (the narrow side of a fork, a pointwise conv after a halo) slices
/// the difference off in place. External inputs (the group input,
/// residual skips) are sliced per branch; intermediate activations of
/// the PIM branch still never cross the bus.
///
/// # Errors
///
/// Returns [`PassError::NotApplicable`] when the group is not
/// interior-splittable, `gpu_percent` is not in `1..=99`, a member is
/// already placed, or the group is degenerate.
pub fn fuse_group_interior(
    graph: &mut Graph,
    group: &FusionGroup,
    gid: usize,
    gpu_percent: u32,
) -> Result<(), PassError> {
    if !(1..=99).contains(&gpu_percent) {
        return Err(PassError::NotApplicable(format!(
            "interior ratio {gpu_percent}% is not a proper split"
        )));
    }
    if group.heavy.len() < 2 {
        return Err(PassError::NotApplicable(
            "fusion group needs at least two heavy layers".into(),
        ));
    }
    let Some(h) = interior_split_height(graph, group) else {
        return Err(PassError::NotApplicable(
            "fusion group does not admit an interior split".into(),
        ));
    };
    for &id in &group.nodes {
        if graph.node(id).name.starts_with(PIM_PREFIX) {
            return Err(PassError::NotApplicable(format!(
                "node `{}` is already placed",
                graph.node(id).name
            )));
        }
    }
    let heavy: HashSet<NodeId> = group.heavy.iter().copied().collect();
    // Same rounding as the per-node MD-DP pass, clamped to a proper split.
    let gpu_rows = (((h as u64 * gpu_percent as u64) + 50) / 100).clamp(1, h as u64 - 1) as usize;
    let ranges = [0..gpu_rows, gpu_rows..h];
    let last = *group.nodes.last().expect("group non-empty");
    let last_out = graph.node(last).output;

    let mut branch_tails = Vec::with_capacity(2);
    let mut pim_nodes: Vec<NodeId> = Vec::new();
    for (bi, range) in ranges.iter().enumerate() {
        let tag = if bi == 0 {
            format!("ig{gid}g_")
        } else {
            format!("ig{gid}p_")
        };
        // Backward pass: rows of each value this branch must produce (or
        // slice from an external input) — the union over its in-branch
        // consumers, halo-widened through wide-kernel members. Walking
        // the members in reverse topo order sees every consumer before
        // its producer, so the union is complete when it is read.
        let mut need: HashMap<ValueId, Range<usize>> = HashMap::new();
        need.insert(last_out, range.clone());
        let widen = |need: &mut HashMap<ValueId, Range<usize>>, v: ValueId, r: Range<usize>| {
            need.entry(v)
                .and_modify(|cur| {
                    cur.start = cur.start.min(r.start);
                    cur.end = cur.end.max(r.end);
                })
                .or_insert(r);
        };
        for &id in group.nodes.iter().rev() {
            let node = graph.node(id);
            let out_need = need
                .get(&node.output)
                .cloned()
                .expect("walker invariant: member outputs are consumed in-group");
            if heavy.contains(&id) {
                let attrs = match &node.op {
                    Op::Conv2d(a) => *a,
                    other => unreachable!("heavy member must be a conv ({other})"),
                };
                let span = conv_input_span(&attrs, h, &out_need);
                widen(&mut need, node.inputs[0], span.rows);
            } else {
                for &v in &node.inputs.clone() {
                    widen(&mut need, v, out_need.clone());
                }
            }
        }
        // Original value -> (branch copy, rows it holds). External
        // operand slices are cached per (value, rows) so a skip input
        // consumed twice at the same span is sliced once.
        let mut map: HashMap<ValueId, (ValueId, Range<usize>)> = HashMap::new();
        let mut ext: HashMap<(ValueId, usize, usize), ValueId> = HashMap::new();
        let take = |graph: &mut Graph,
                    map: &HashMap<ValueId, (ValueId, Range<usize>)>,
                    ext: &mut HashMap<(ValueId, usize, usize), ValueId>,
                    v: ValueId,
                    rows: &Range<usize>,
                    tag: &str| match map.get(&v) {
            Some((branch_v, have)) => {
                rows_from_parts(graph, &[(*branch_v, have.clone())], rows, tag)
            }
            None => *ext
                .entry((v, rows.start, rows.end))
                .or_insert_with(|| rows_from_parts(graph, &[(v, 0..h)], rows, tag)),
        };
        let mut tail = None;
        for &id in &group.nodes {
            let node = graph.node(id).clone();
            let out_need = need[&node.output].clone();
            let out = if heavy.contains(&id) {
                let attrs = match &node.op {
                    Op::Conv2d(a) => *a,
                    other => unreachable!("heavy member must be a conv ({other})"),
                };
                let span = conv_input_span(&attrs, h, &out_need);
                let x = take(
                    graph,
                    &map,
                    &mut ext,
                    node.inputs[0],
                    &span.rows,
                    &format!("{tag}{}_in", node.name),
                );
                emit_conv_on_span(
                    graph,
                    id,
                    x,
                    span.pad_top,
                    span.pad_bottom,
                    Placement::Gpu,
                    &tag,
                )
            } else {
                let ins: Vec<ValueId> = node
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        take(
                            graph,
                            &map,
                            &mut ext,
                            v,
                            &out_need,
                            &format!("{tag}{}_in{j}", node.name),
                        )
                    })
                    .collect();
                emit_elementwise_part(graph, id, ins, &tag)
            };
            map.insert(node.output, (out, out_need));
            if bi == 1 {
                pim_nodes.push(graph.producer(out).expect("just added"));
            }
            tail = Some(out);
        }
        branch_tails.push(tail.expect("group non-empty"));
    }
    let joined = graph.add_node(
        format!("ig{gid}_concat"),
        Op::Concat(ConcatAttrs { axis: 1 }),
        branch_tails,
    );
    graph.replace_uses(last_out, joined);
    for &id in &group.nodes {
        graph.remove_node(id);
    }
    infer_shapes(graph)?;
    // The PIM branch fuses exactly like a full-offload group: same roles,
    // same near-bank hand-offs, just over fewer rows.
    let pim_heavy: Vec<NodeId> = pim_nodes
        .iter()
        .copied()
        .filter(|&id| is_fusion_heavy(graph, id))
        .collect();
    fuse_group(
        graph,
        &FusionGroup {
            nodes: pim_nodes,
            heavy: pim_heavy,
        },
        gid,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{parse_fused, Placement};
    use pimflow_ir::{models, GraphBuilder, Shape};
    use pimflow_kernels::{input_tensors, run_graph};

    #[test]
    fn toy_has_one_group_over_the_leading_convs() {
        let g = models::toy();
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        let names: Vec<&str> = groups[0]
            .nodes
            .iter()
            .map(|&id| g.node(id).name.as_str())
            .collect();
        assert_eq!(names, ["conv_1", "relu_2", "conv_3"]);
        assert_eq!(groups[0].heavy.len(), 2);
    }

    #[test]
    fn depthwise_and_pool_terminate_groups() {
        // pw -> dw -> pw: the dw conv is not fusion-heavy and not
        // element-wise, so no group spans it.
        let mut b = GraphBuilder::new("block");
        let x = b.input(Shape::nhwc(1, 8, 8, 8));
        let y = b.conv1x1(x, 16);
        let y = b.dwconv(y, 16, 3, 1, 1);
        let y = b.conv1x1(y, 8);
        let g = b.finish(y);
        assert!(find_fusion_groups(&g).is_empty());
    }

    #[test]
    fn residual_rejoin_extends_groups() {
        // conv -> conv where the intermediate also feeds a residual Add
        // that rejoins right after: both operands are group-resident, so
        // the Add rides near the banks instead of terminating the group.
        let mut b = GraphBuilder::new("res");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 16);
        let z = b.conv1x1(y, 16);
        let w = b.add(z, y);
        let mut g = b.finish(w);
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        let group = &groups[0];
        assert_eq!(group.heavy.len(), 2);
        assert_eq!(group.nodes.len(), 3);
        let names: Vec<&str> = group
            .nodes
            .iter()
            .map(|&id| g.node(id).name.as_str())
            .collect();
        assert_eq!(names, ["conv_1", "conv_2", "add_3"]);
        // The trailing rejoin fuses as a rider behind the tail.
        fuse_group(&mut g, group, 7).unwrap();
        let roles: Vec<_> = group
            .nodes
            .iter()
            .map(|&id| parse_fused(&g.node(id).name).unwrap())
            .collect();
        assert_eq!(
            roles[0],
            (7, crate::placement::FusedNodeRole::Head, "conv_1")
        );
        assert_eq!(
            roles[1],
            (7, crate::placement::FusedNodeRole::Tail, "conv_2")
        );
        assert_eq!(
            roles[2],
            (7, crate::placement::FusedNodeRole::Rider, "add_3")
        );
    }

    #[test]
    fn resnet_identity_block_fuses_through_the_add() {
        // conv1x1 -> relu -> conv3x3 -> relu -> conv1x1 -> add(skip) ->
        // relu: the canonical identity bottleneck. The skip forks off the
        // block input (the head's own staged input), so the add rejoins
        // with both operands group-resident and the whole tower fuses.
        let mut b = GraphBuilder::new("bneck");
        let x = b.input(Shape::nhwc(1, 14, 14, 64));
        let skip = b.conv1x1(x, 64);
        let y = b.conv1x1(skip, 16);
        let y = b.relu(y);
        let y = b.conv(y, 16, 3, 1, 1);
        let y = b.relu(y);
        let y = b.conv1x1(y, 64);
        let y = b.add(y, skip);
        let y = b.relu(y);
        let g = b.finish(y);
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        // skip conv + 3 tower convs all land in one group, add included.
        assert_eq!(groups[0].heavy.len(), 4, "{groups:?}");
        let last = *groups[0].nodes.last().unwrap();
        assert!(matches!(g.node(last).op, Op::Add));
    }

    #[test]
    fn projection_shortcut_terminates_groups() {
        // The add's second operand comes from a conv outside the run, so
        // the rejoin is not group-resident: the group stops at the last
        // trunk conv and the add stays outside.
        let mut b = GraphBuilder::new("proj");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y1 = b.conv1x1(x, 16);
        let y2 = b.conv1x1(y1, 16);
        let y3 = b.conv1x1(y2, 32);
        let sc = b.conv1x1(x, 32);
        let w = b.add(y3, sc);
        let g = b.finish(w);
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].heavy.len(), 3);
        assert_eq!(groups[0].nodes.len(), 3);
        assert!(!groups[0]
            .nodes
            .iter()
            .any(|&id| matches!(g.node(id).op, Op::Add)));
    }

    #[test]
    fn unresolved_skip_rolls_back_to_fork() {
        // The skip forks at conv_1's output but the trunk hits a
        // depthwise conv before the add rejoins: the fork never resolves
        // inside the group, so the walk rolls back and no group remains.
        let mut b = GraphBuilder::new("deadskip");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 16);
        let z = b.conv1x1(y, 16);
        let d = b.dwconv(z, 16, 3, 1, 1);
        let w = b.add(d, y);
        let g = b.finish(w);
        assert!(find_fusion_groups(&g).is_empty());
    }

    #[test]
    fn interior_split_height_gates_on_stride_and_uniform_height() {
        // Toy's group is headed by a stride-1 "same"-padded 3x3 conv:
        // eligible — the 3x3's halo rows are over-computed per branch.
        let g = models::toy();
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        assert!(interior_split_height(&g, &group).is_some());

        // An all-pointwise chain is eligible at the tensor height.
        let mut b = GraphBuilder::new("pw");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 32);
        let y = b.relu(y);
        let y = b.conv1x1(y, 16);
        let g = b.finish(y);
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        assert_eq!(interior_split_height(&g, &group), Some(8));

        // A strided member changes the height mid-group: row coordinates
        // are no longer uniform, so the group is not splittable.
        let mut b = GraphBuilder::new("strided");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv(x, 32, 3, 2, 1);
        let y = b.relu(y);
        let y = b.conv1x1(y, 16);
        let g = b.finish(y);
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        assert_eq!(interior_split_height(&g, &group), None);
    }

    #[test]
    fn fuse_group_interior_preserves_numerics() {
        // Pointwise residual group split 40/60 across GPU and PIM rows:
        // both branches run every member over disjoint rows, so the
        // concat is bit-identical to the unsplit graph.
        let mut b = GraphBuilder::new("res");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 16);
        let z = b.conv1x1(y, 16);
        let w = b.add(z, y);
        let original = b.finish(w);
        let mut split = original.clone();
        let group = find_fusion_groups(&split).into_iter().next().unwrap();
        assert!(interior_split_height(&split, &group).is_some());
        fuse_group_interior(&mut split, &group, 0, 40).unwrap();
        // The PIM branch carries fused tags; the GPU branch stays plain.
        let fused_n = split
            .node_ids()
            .filter(|&id| parse_fused(&split.node(id).name).is_some())
            .count();
        assert_eq!(fused_n, 3, "head, tail, and add rider on the PIM rows");
        assert!(split
            .node_ids()
            .any(|id| split.node(id).name.contains("ig0g_")));
        let inputs = input_tensors(&original, 23);
        let a = run_graph(&original, &inputs).unwrap();
        let b2 = run_graph(&split, &inputs).unwrap();
        assert_eq!(a[0].max_abs_diff(&b2[0]), 0.0);
    }

    #[test]
    fn fuse_group_interior_handles_halo_members_exactly() {
        // A resnet-style bottleneck: 1x1 -> 3x3("same") -> 1x1 with the
        // skip rejoining at the add. The 3x3 needs one halo row past the
        // branch boundary; both branches over-compute it from the sliced
        // external input, and the narrow side of the fork slices the
        // difference off, so the concat is bit-identical to the unsplit
        // graph at every ratio.
        let mut b = GraphBuilder::new("bottleneck");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv1x1(x, 8);
        let y = b.relu(y);
        let y = b.conv(y, 8, 3, 1, 1);
        let y = b.relu(y);
        let y = b.conv1x1(y, 16);
        let w = b.add(y, x);
        let original = b.finish(w);
        let group = find_fusion_groups(&original).into_iter().next().unwrap();
        assert_eq!(group.heavy.len(), 3);
        assert_eq!(interior_split_height(&original, &group), Some(8));
        let inputs = input_tensors(&original, 31);
        let a = run_graph(&original, &inputs).unwrap();
        for ratio in [25, 50, 75] {
            let mut split = original.clone();
            let group = find_fusion_groups(&split).into_iter().next().unwrap();
            fuse_group_interior(&mut split, &group, 0, ratio).unwrap();
            let b2 = run_graph(&split, &inputs).unwrap();
            assert_eq!(
                a[0].max_abs_diff(&b2[0]),
                0.0,
                "interior split at {ratio}% must be exact"
            );
        }
    }

    #[test]
    fn fuse_group_interior_rejects_bad_ratios_and_groups() {
        // A strided head breaks row-coordinate uniformity: not
        // interior-splittable.
        let mut b = GraphBuilder::new("strided");
        let x = b.input(Shape::nhwc(1, 8, 8, 16));
        let y = b.conv(x, 32, 3, 2, 1);
        let y = b.relu(y);
        let y = b.conv1x1(y, 16);
        let g0 = b.finish(y);
        let group = find_fusion_groups(&g0).into_iter().next().unwrap();
        let mut g = g0.clone();
        assert!(matches!(
            fuse_group_interior(&mut g, &group, 0, 50),
            Err(PassError::NotApplicable(_))
        ));
        // Degenerate ratios are rejected outright.
        let mut g = g0.clone();
        assert!(matches!(
            fuse_group_interior(&mut g, &group, 0, 0),
            Err(PassError::NotApplicable(_))
        ));
        let mut g = g0;
        assert!(matches!(
            fuse_group_interior(&mut g, &group, 0, 100),
            Err(PassError::NotApplicable(_))
        ));
    }

    #[test]
    fn groups_are_disjoint_and_maximal() {
        // conv -> relu -> conv -> relu -> conv: one group of three heavy
        // layers, not two overlapping pairs.
        let mut b = GraphBuilder::new("deep");
        let x = b.input(Shape::nhwc(1, 8, 8, 4));
        let y = b.conv1x1(x, 8);
        let y = b.relu(y);
        let y = b.conv1x1(y, 8);
        let y = b.relu(y);
        let y = b.conv1x1(y, 4);
        let g = b.finish(y);
        let groups = find_fusion_groups(&g);
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].heavy.len(), 3);
        assert_eq!(groups[0].nodes.len(), 5);
    }

    #[test]
    fn fuse_group_is_rename_only_and_preserves_numerics() {
        let original = models::toy();
        let mut fused = original.clone();
        let group = find_fusion_groups(&fused).into_iter().next().unwrap();
        fuse_group(&mut fused, &group, 0).unwrap();
        // Placement tags landed with the right roles.
        let roles: Vec<_> = group
            .nodes
            .iter()
            .map(|&id| parse_fused(&fused.node(id).name).unwrap())
            .collect();
        assert_eq!(
            roles[0],
            (0, crate::placement::FusedNodeRole::Head, "conv_1")
        );
        assert_eq!(
            roles[1],
            (0, crate::placement::FusedNodeRole::Rider, "relu_2")
        );
        assert_eq!(
            roles[2],
            (0, crate::placement::FusedNodeRole::Tail, "conv_3")
        );
        for &id in &group.nodes {
            assert_eq!(Placement::of_name(&fused.node(id).name), Placement::Pim);
        }
        // Rename-only: outputs are bit-identical.
        let inputs = input_tensors(&original, 11);
        let a = run_graph(&original, &inputs).unwrap();
        let b = run_graph(&fused, &inputs).unwrap();
        assert_eq!(a[0].max_abs_diff(&b[0]), 0.0);
    }

    #[test]
    fn fuse_group_rejects_degenerate_groups() {
        let mut g = models::toy();
        let id = g.find_node("conv_1").unwrap();
        let solo = FusionGroup {
            nodes: vec![id],
            heavy: vec![id],
        };
        assert!(matches!(
            fuse_group(&mut g, &solo, 0),
            Err(PassError::NotApplicable(_))
        ));
        // Double-fusing the same nodes is rejected: they are already
        // placed.
        let group = find_fusion_groups(&g).into_iter().next().unwrap();
        fuse_group(&mut g, &group, 0).unwrap();
        assert!(matches!(
            fuse_group(&mut g, &group, 1),
            Err(PassError::NotApplicable(_))
        ));
    }
}
