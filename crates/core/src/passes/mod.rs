//! PIM-aware graph transformation passes (§4.2.1) and cleanup
//! canonicalizations.

pub mod cleanup;
pub mod fusion;
pub mod mddp;
pub mod pipeline;
pub mod split_util;

pub use cleanup::cleanup;
pub use fusion::{find_fusion_groups, fuse_group, is_fusion_heavy, FusionGroup};
pub use mddp::{split_node, PassError, SplitOutcome};
pub use pipeline::{find_chains, pipeline_chain, Chain, PatternKind};
