//! Shared machinery for H-dimension splitting of CONV-family nodes.
//!
//! Both PIM-aware transformation passes (§4.2.1) slice tensors along the
//! output-height dimension: the multi-device parallelization pass to create
//! GPU/PIM halves, the pipelining pass to create pipeline stage parts. This
//! module computes receptive-field-exact input ranges and emits the
//! `Slice -> Pad -> Conv` part subgraphs whose concatenation is numerically
//! identical to the original node (the property tests in `mddp`/`pipeline`
//! verify this against the reference executor).

use crate::placement::Placement;
use pimflow_ir::{Conv2dAttrs, Graph, NodeId, Op, PadAttrs, SliceAttrs, ValueId};
use std::ops::Range;

/// True for nodes that ride along inside a linear PIM region as
/// single-input element-wise work (`BatchNorm`, any activation except
/// `Softmax`, whose normalization needs full-tensor reductions). This is
/// the one rider classification in the codebase: the pipelining pass, the
/// fusion-group pass, and the interior-split transform all consume it.
pub(crate) fn is_linear_rider(op: &Op) -> bool {
    matches!(op, Op::BatchNorm)
        || matches!(
            op,
            Op::Activation(k) if *k != pimflow_ir::ActivationKind::Softmax
        )
}

/// True for two-input element-wise ops that can rejoin a skip connection
/// inside a fused region (residual `Add`, squeeze-excite `Mul`): row-local
/// over their aligned operands, so they apply near the banks during the
/// fused hand-off once both inputs are PIM-resident.
pub(crate) fn is_residual_rider(op: &Op) -> bool {
    matches!(op, Op::Add | Op::Mul)
}

/// Input-row requirements of a conv output-row range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSpan {
    /// Input rows `[start, end)` to slice from the full input.
    pub rows: Range<usize>,
    /// Zero rows to re-add on top (the part contains the tensor's top edge).
    pub pad_top: usize,
    /// Zero rows to re-add at the bottom.
    pub pad_bottom: usize,
}

/// Computes which input rows (and residual padding) a conv needs to produce
/// output rows `out_rows`, given input height `in_h`.
///
/// # Panics
///
/// Panics if `out_rows` is empty.
pub fn conv_input_span(attrs: &Conv2dAttrs, in_h: usize, out_rows: &Range<usize>) -> InputSpan {
    assert!(!out_rows.is_empty(), "output row range must be non-empty");
    let (k, s, p) = (
        attrs.kernel.h as isize,
        attrs.stride.h as isize,
        attrs.padding.h as isize,
    );
    let first = out_rows.start as isize * s - p;
    let last_excl = (out_rows.end as isize - 1) * s + k - p;
    let start = first.max(0) as usize;
    let end = (last_excl.min(in_h as isize)) as usize;
    let pad_top = (-first).max(0) as usize;
    let pad_bottom = (last_excl - in_h as isize).max(0) as usize;
    InputSpan {
        rows: start..end,
        pad_top,
        pad_bottom,
    }
}

/// Emits a padding-free copy of conv node `orig` over `input` (which must
/// already contain exactly the input-row span of the intended output rows),
/// re-applying `pad_top`/`pad_bottom` and the original width padding
/// explicitly via a `Pad` node.
///
/// Returns the part's output value.
///
/// # Panics
///
/// Panics if `orig` is not a conv node.
pub fn emit_conv_on_span(
    graph: &mut Graph,
    orig: NodeId,
    input: ValueId,
    pad_top: usize,
    pad_bottom: usize,
    placement: Placement,
    tag: &str,
) -> ValueId {
    let node = graph.node(orig).clone();
    let attrs = match &node.op {
        Op::Conv2d(a) => *a,
        other => panic!("emit_conv_on_span on non-conv `{}` ({other})", node.name),
    };
    let mut x = input;
    if pad_top > 0 || pad_bottom > 0 || attrs.padding.w > 0 {
        x = graph.add_node(
            format!("{}{}_pad", tag, node.name),
            Op::Pad(PadAttrs {
                top: pad_top,
                bottom: pad_bottom,
                left: attrs.padding.w,
                right: attrs.padding.w,
            }),
            vec![x],
        );
    }
    let mut part_attrs = attrs;
    part_attrs.padding = pimflow_ir::Hw::new(0, 0);
    let out = graph.add_node_with_key(
        placement.tag(&format!("{}{}", tag, node.name)),
        Op::Conv2d(part_attrs),
        vec![x],
        node.weight_key,
    );
    // H-splits keep the full output-channel set; propagate any existing
    // output-axis view unchanged.
    graph
        .node_mut(graph.producer(out).expect("just added"))
        .param_view = node.param_view;
    out
}

/// Emits one split part of conv node `orig`: slices the needed input rows
/// out of `input` (a full-height tensor), then delegates to
/// [`emit_conv_on_span`].
///
/// Returns the part's output value.
///
/// # Panics
///
/// Panics if `orig` is not a conv node or shapes are missing.
pub fn emit_conv_part(
    graph: &mut Graph,
    orig: NodeId,
    input: ValueId,
    out_rows: &Range<usize>,
    placement: Placement,
    tag: &str,
) -> ValueId {
    let node_name = graph.node(orig).name.clone();
    let attrs = match &graph.node(orig).op {
        Op::Conv2d(a) => *a,
        other => panic!("emit_conv_part on non-conv `{node_name}` ({other})"),
    };
    let in_shape = graph
        .value(input)
        .desc
        .as_ref()
        .expect("shapes inferred")
        .shape
        .clone();
    let span = conv_input_span(&attrs, in_shape.h(), out_rows);

    let mut x = input;
    if span.rows != (0..in_shape.h()) {
        x = graph.add_node(
            format!("{}{}_slice", tag, node_name),
            Op::Slice(SliceAttrs {
                axis: 1,
                begin: span.rows.start,
                end: span.rows.end,
            }),
            vec![x],
        );
    }
    emit_conv_on_span(
        graph,
        orig,
        x,
        span.pad_top,
        span.pad_bottom,
        placement,
        tag,
    )
}

/// Emits a copy of an elementwise node (`BatchNorm`, `Activation`, `Add`,
/// `Mul`) operating on one H-part. `inputs` must already be the part-local
/// operands.
pub fn emit_elementwise_part(
    graph: &mut Graph,
    orig: NodeId,
    inputs: Vec<ValueId>,
    tag: &str,
) -> ValueId {
    let node = graph.node(orig).clone();
    graph.add_node_with_key(
        format!("{}{}", tag, node.name),
        node.op.clone(),
        inputs,
        node.weight_key,
    )
}

/// Assembles rows `need` (in full-tensor coordinates) from per-part output
/// values.
///
/// `parts` lists `(value, rows)` in order, covering the full tensor
/// contiguously. Emits slices (and a concat if the range spans parts);
/// returns the assembled value. When `need` equals one part exactly, that
/// part's value is returned untouched.
///
/// # Panics
///
/// Panics if `need` is not covered by `parts`.
pub fn rows_from_parts(
    graph: &mut Graph,
    parts: &[(ValueId, Range<usize>)],
    need: &Range<usize>,
    tag: &str,
) -> ValueId {
    assert!(!need.is_empty(), "row range must be non-empty");
    let mut pieces: Vec<ValueId> = Vec::new();
    for (i, (value, rows)) in parts.iter().enumerate() {
        let lo = need.start.max(rows.start);
        let hi = need.end.min(rows.end);
        if lo >= hi {
            continue;
        }
        if lo == rows.start && hi == rows.end {
            pieces.push(*value);
        } else {
            let local = (lo - rows.start)..(hi - rows.start);
            let v = graph.add_node(
                format!("{tag}_take{i}"),
                Op::Slice(SliceAttrs {
                    axis: 1,
                    begin: local.start,
                    end: local.end,
                }),
                vec![*value],
            );
            pieces.push(v);
        }
    }
    assert!(
        !pieces.is_empty(),
        "rows {need:?} not covered by parts {:?}",
        parts.iter().map(|p| p.1.clone()).collect::<Vec<_>>()
    );
    if pieces.len() == 1 {
        pieces[0]
    } else {
        graph.add_node(
            format!("{tag}_gather"),
            Op::Concat(pimflow_ir::ConcatAttrs { axis: 1 }),
            pieces,
        )
    }
}

/// Splits `0..total` into `n` near-equal contiguous ranges (earlier ranges
/// take the remainder). Ranges are never empty; if `total < n`, fewer than
/// `n` ranges are returned.
pub fn even_ranges(total: usize, n: usize) -> Vec<Range<usize>> {
    let n = n.min(total).max(1);
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::Hw;

    #[test]
    fn input_span_interior_part() {
        // 3x3 s1 p1 over H=10: output rows 4..7 need input rows 3..8.
        let attrs = Conv2dAttrs {
            out_channels: 8,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let s = conv_input_span(&attrs, 10, &(4..7));
        assert_eq!(s.rows, 3..8);
        assert_eq!((s.pad_top, s.pad_bottom), (0, 0));
    }

    #[test]
    fn input_span_top_part_keeps_padding() {
        let attrs = Conv2dAttrs {
            out_channels: 8,
            kernel: Hw::square(3),
            stride: Hw::square(1),
            padding: Hw::square(1),
            groups: 1,
        };
        let s = conv_input_span(&attrs, 10, &(0..5));
        assert_eq!(s.rows, 0..6);
        assert_eq!((s.pad_top, s.pad_bottom), (1, 0));
    }

    #[test]
    fn input_span_strided() {
        // 3x3 s2 p1 over H=11 -> OH=6; output rows 3..6 need input 5..11 + 1 bottom pad.
        let attrs = Conv2dAttrs {
            out_channels: 8,
            kernel: Hw::square(3),
            stride: Hw::square(2),
            padding: Hw::square(1),
            groups: 1,
        };
        let s = conv_input_span(&attrs, 11, &(3..6));
        assert_eq!(s.rows, 5..11);
        assert_eq!((s.pad_top, s.pad_bottom), (0, 1));
    }

    #[test]
    fn even_ranges_cover_total() {
        let rs = even_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        assert_eq!(even_ranges(2, 5).len(), 2);
        assert_eq!(even_ranges(7, 1), vec![0..7]);
    }
}
