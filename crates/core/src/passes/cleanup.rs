//! Graph cleanup passes.
//!
//! The PIM-aware transformations accumulate structural residue — `Identity`
//! nodes, slices of slices, single-input concats, unused nodes. These
//! canonicalization passes tidy the graph after transformation, exactly as
//! the artifact relies on ONNX simplification. All passes are
//! semantics-preserving (verified against the reference executor in the
//! tests) and idempotent.

use pimflow_ir::{infer_shapes, Graph, GraphError, NodeId, Op, SliceAttrs};
use std::collections::HashSet;

/// Removes `Identity` nodes by rewiring their consumers to the input.
///
/// Returns the number of nodes removed.
pub fn eliminate_identities(graph: &mut Graph) -> usize {
    let ids: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| matches!(graph.node(id).op, Op::Identity))
        .collect();
    for &id in &ids {
        let node = graph.node(id);
        let (input, output) = (node.inputs[0], node.output);
        graph.replace_uses(output, input);
        graph.remove_node(id);
    }
    ids.len()
}

/// Fuses `Slice(Slice(x))` chains along the same axis into a single slice.
///
/// Returns the number of slices fused away.
pub fn fuse_slices(graph: &mut Graph) -> usize {
    let mut fused = 0;
    loop {
        let candidate = graph.node_ids().find_map(|id| {
            let Op::Slice(outer) = graph.node(id).op else {
                return None;
            };
            let inner_id = graph.producer(graph.node(id).inputs[0])?;
            let Op::Slice(inner) = graph.node(inner_id).op else {
                return None;
            };
            if inner.axis != outer.axis {
                return None;
            }
            // Only fold when the inner slice has no other consumers.
            if graph.successors(inner_id).len() != 1 {
                return None;
            }
            Some((id, inner_id, inner, outer))
        });
        let Some((id, inner_id, inner, outer)) = candidate else {
            break;
        };
        let combined = SliceAttrs {
            axis: inner.axis,
            begin: inner.begin + outer.begin,
            end: inner.begin + outer.end,
        };
        let source = graph.node(inner_id).inputs[0];
        {
            let node = graph.node_mut(id);
            node.op = Op::Slice(combined);
            node.inputs = vec![source];
        }
        graph.remove_node(inner_id);
        fused += 1;
    }
    fused
}

/// Replaces single-input `Concat` nodes with their operand.
///
/// Returns the number of concats removed.
pub fn drop_trivial_concats(graph: &mut Graph) -> usize {
    let ids: Vec<NodeId> = graph
        .node_ids()
        .filter(|&id| {
            matches!(graph.node(id).op, Op::Concat(_)) && graph.node(id).inputs.len() == 1
        })
        .collect();
    for &id in &ids {
        let node = graph.node(id);
        let (input, output) = (node.inputs[0], node.output);
        graph.replace_uses(output, input);
        graph.remove_node(id);
    }
    ids.len()
}

/// Removes nodes whose outputs reach no graph output (dead code).
///
/// Returns the number of nodes removed.
pub fn eliminate_dead_nodes(graph: &mut Graph) -> usize {
    // Mark live nodes by walking backwards from the outputs.
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = graph
        .outputs()
        .iter()
        .filter_map(|&v| graph.producer(v))
        .collect();
    while let Some(id) = stack.pop() {
        if !live.insert(id) {
            continue;
        }
        stack.extend(graph.predecessors(id));
    }
    let dead: Vec<NodeId> = graph.node_ids().filter(|id| !live.contains(id)).collect();
    for &id in &dead {
        graph.remove_node(id);
    }
    dead.len()
}

/// Runs all cleanup passes to a fixed point and re-infers shapes.
///
/// Returns the total number of nodes removed or rewritten.
///
/// # Errors
///
/// Returns [`GraphError`] if the cleaned graph fails validation (a bug in a
/// pass — cleanup must never break a valid graph).
pub fn cleanup(graph: &mut Graph) -> Result<usize, GraphError> {
    let mut total = 0;
    loop {
        let round = eliminate_identities(graph)
            + fuse_slices(graph)
            + drop_trivial_concats(graph)
            + eliminate_dead_nodes(graph);
        total += round;
        if round == 0 {
            break;
        }
    }
    infer_shapes(graph)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::{models, GraphBuilder, Shape};
    use pimflow_kernels::{input_tensors, run_graph};

    fn assert_equivalent(a: &Graph, b: &Graph) {
        let inputs = input_tensors(a, 31);
        let xa = run_graph(a, &inputs).unwrap();
        let xb = run_graph(b, &inputs).unwrap();
        for (x, y) in xa.iter().zip(&xb) {
            assert!(x.allclose(y, 0.0), "cleanup changed semantics");
        }
    }

    #[test]
    fn identities_are_removed() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 4, 4, 2));
        let y = b.identity(x);
        let y = b.identity(y);
        let y = b.relu(y);
        let mut g = b.finish(y);
        let before = g.clone();
        let removed = cleanup(&mut g).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(g.node_count(), 1);
        assert_equivalent(&before, &g);
    }

    #[test]
    fn nested_slices_fuse() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 10, 4, 2));
        let s1 = b.slice(
            x,
            SliceAttrs {
                axis: 1,
                begin: 2,
                end: 9,
            },
        );
        let s2 = b.slice(
            s1,
            SliceAttrs {
                axis: 1,
                begin: 1,
                end: 5,
            },
        );
        let mut g = b.finish(s2);
        let before = g.clone();
        cleanup(&mut g).unwrap();
        assert_eq!(g.node_count(), 1);
        let id = g.node_ids().next().unwrap();
        let Op::Slice(attrs) = g.node(id).op else {
            panic!()
        };
        assert_eq!((attrs.begin, attrs.end), (3, 7));
        assert_equivalent(&before, &g);
    }

    #[test]
    fn cross_axis_slices_do_not_fuse() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 10, 6, 2));
        let s1 = b.slice(
            x,
            SliceAttrs {
                axis: 1,
                begin: 0,
                end: 5,
            },
        );
        let s2 = b.slice(
            s1,
            SliceAttrs {
                axis: 2,
                begin: 1,
                end: 4,
            },
        );
        let mut g = b.finish(s2);
        cleanup(&mut g).unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn shared_inner_slice_is_preserved() {
        // The inner slice feeds two consumers: fusing would break one.
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 10, 4, 2));
        let s1 = b.slice(
            x,
            SliceAttrs {
                axis: 1,
                begin: 2,
                end: 9,
            },
        );
        let s2 = b.slice(
            s1,
            SliceAttrs {
                axis: 1,
                begin: 0,
                end: 3,
            },
        );
        let r = b.relu(s1);
        let s2r = b.relu(s2);
        let pad = b.pad(
            s2r,
            pimflow_ir::PadAttrs {
                top: 0,
                bottom: 4,
                left: 0,
                right: 0,
            },
        );
        let y = b.add(pad, r);
        let mut g = b.finish(y);
        let before = g.clone();
        cleanup(&mut g).unwrap();
        assert_equivalent(&before, &g);
    }

    #[test]
    fn dead_branches_are_pruned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input(Shape::nhwc(1, 4, 4, 2));
        let used = b.relu(x);
        let _dead = b.conv1x1(x, 64); // never reaches the output
        let g_out = used;
        let mut g = b.finish(g_out);
        let removed = cleanup(&mut g).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn cleanup_is_idempotent_on_clean_graphs() {
        let mut g = models::toy();
        let removed = cleanup(&mut g).unwrap();
        assert_eq!(removed, 0);
        assert_eq!(g.node_count(), models::toy().node_count());
    }

    #[test]
    fn cleanup_after_full_flow_preserves_semantics() {
        use crate::engine::EngineConfig;
        use crate::search::{apply_plan, search, SearchOptions};
        let g = models::toy();
        let plan = search(&g, &EngineConfig::pimflow(), &SearchOptions::default()).unwrap();
        let mut t = apply_plan(&g, &plan).unwrap();
        let before = t.clone();
        cleanup(&mut t).unwrap();
        t.validate().unwrap();
        assert_equivalent(&before, &t);
        assert!(t.node_count() <= before.node_count());
    }

    #[test]
    fn bert_identities_disappear() {
        let mut g = models::bert_like(2);
        let before_count = g.node_count();
        let removed = cleanup(&mut g).unwrap();
        assert!(
            removed >= 12,
            "12 attention identities expected, removed {removed}"
        );
        assert!(g.node_count() < before_count);
    }
}
