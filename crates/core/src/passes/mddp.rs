//! Multi-device parallelization pass (§4.2.1).
//!
//! Splits a single PIM-candidate node into a GPU part and a PIM part that
//! execute the same operator on disjoint portions of the data (MD-DP mode):
//! the input is sliced, each part convolves/multiplies its slice, and the
//! outputs are concatenated back into a tensor equivalent to the original
//! node's output (Fig. 5, node 2 -> 2(A)/2(B)).
//!
//! Split axes:
//! * CONV — output height (NHWC H slices are contiguous, so the memory
//!   optimizer can make the slice/concat free);
//! * FC with multiple input rows (e.g. BERT at seq > 1) — input rows;
//! * FC with one input row (CNN classifier heads) — output features, with a
//!   [`ParamView`] so each part owns its column slice of the weight matrix.
//!
//! [`ParamView`]: pimflow_ir::graph::ParamView

use crate::passes::split_util::emit_conv_part;
use crate::placement::Placement;
use pimflow_ir::{
    infer_shapes, ConcatAttrs, DenseAttrs, Graph, NodeId, Op, ParamView, SliceAttrs, ValueId,
};

/// Errors returned by transformation passes.
///
/// Historically its own enum; now an alias of the crate-wide
/// [`Error`](crate::error::Error) so pass-level and engine/search-level
/// failures share one surface. Variant paths like
/// `PassError::NotApplicable(..)` keep working through the alias.
pub type PassError = crate::error::Error;

/// Outcome of [`split_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitOutcome {
    /// Ratio 100: the node stays on the GPU untouched.
    AllGpu,
    /// Ratio 0: the node was re-tagged to run fully on PIM.
    AllPim(NodeId),
    /// The node was split; the concat output replaces the original value.
    Split {
        /// GPU part node.
        gpu: NodeId,
        /// PIM part node.
        pim: NodeId,
        /// Concat joining the parts.
        concat: NodeId,
    },
}

fn producer_of(graph: &Graph, v: ValueId) -> NodeId {
    graph
        .producer(v)
        .expect("value was just produced by a node")
}

/// Applies the MD-DP split to node `id` with `gpu_percent`% of the work on
/// the GPU (0 = full PIM offload, 100 = full GPU; matching the Table 2
/// ratio convention "split ratio to GPU, 0: total offload").
///
/// Re-runs shape inference before returning.
///
/// # Errors
///
/// Returns [`PassError::NotApplicable`] if the node is not a PIM candidate
/// or is too small to split at the requested ratio, and
/// [`PassError::BadRatio`] if `gpu_percent > 100`.
pub fn split_node(
    graph: &mut Graph,
    id: NodeId,
    gpu_percent: u32,
) -> Result<SplitOutcome, PassError> {
    if gpu_percent > 100 {
        return Err(PassError::BadRatio(gpu_percent));
    }
    if !graph.is_pim_candidate(id) {
        return Err(PassError::NotApplicable(format!(
            "`{}` is not a PIM-candidate node",
            graph.node(id).name
        )));
    }
    if gpu_percent == 100 {
        return Ok(SplitOutcome::AllGpu);
    }
    if gpu_percent == 0 {
        let name = graph.node(id).name.clone();
        graph.node_mut(id).name = Placement::Pim.tag(&name);
        infer_shapes(graph)?;
        return Ok(SplitOutcome::AllPim(id));
    }

    let node = graph.node(id).clone();
    let out_shape = graph
        .value(node.output)
        .desc
        .as_ref()
        .expect("shapes inferred")
        .shape
        .clone();

    let (gpu_out, pim_out, concat_axis) = match &node.op {
        Op::Conv2d(_) => {
            let oh = out_shape.h();
            if oh < 2 {
                return Err(PassError::NotApplicable(format!(
                    "`{}` output height {oh} cannot be split",
                    node.name
                )));
            }
            let gpu_rows = ((oh as u64 * gpu_percent as u64 + 50) / 100) as usize;
            let gpu_rows = gpu_rows.clamp(1, oh - 1);
            let input = node.inputs[0];
            let a = emit_conv_part(graph, id, input, &(0..gpu_rows), Placement::Gpu, "mddp_a_");
            let b = emit_conv_part(graph, id, input, &(gpu_rows..oh), Placement::Pim, "mddp_b_");
            (a, b, 1)
        }
        Op::Dense(d) => {
            let rows = out_shape.n();
            let input = node.inputs[0];
            if rows > 1 {
                // Row split: both parts share the full weight matrix.
                let gpu_rows = ((rows as u64 * gpu_percent as u64 + 50) / 100) as usize;
                let gpu_rows = gpu_rows.clamp(1, rows - 1);
                let ranges = [
                    (0..gpu_rows, Placement::Gpu, "mddp_a_"),
                    (gpu_rows..rows, Placement::Pim, "mddp_b_"),
                ];
                let mut parts = Vec::new();
                for (r, placement, tag) in ranges {
                    let sliced = graph.add_node(
                        format!("{tag}{}_slice", node.name),
                        Op::Slice(SliceAttrs {
                            axis: 0,
                            begin: r.start,
                            end: r.end,
                        }),
                        vec![input],
                    );
                    let part = graph.add_node_with_key(
                        placement.tag(&format!("{tag}{}", node.name)),
                        node.op.clone(),
                        vec![sliced],
                        node.weight_key,
                    );
                    graph.node_mut(producer_of(graph, part)).param_view = node.param_view;
                    parts.push(part);
                }
                (parts[0], parts[1], 0)
            } else {
                // Single-row FC: split the output features (weight columns).
                let of = d.out_features;
                if of < 2 {
                    return Err(PassError::NotApplicable(format!(
                        "`{}` has {of} output features; cannot split",
                        node.name
                    )));
                }
                let gpu_of = (((of as u64) * gpu_percent as u64 + 50) / 100) as usize;
                let gpu_of = gpu_of.clamp(1, of - 1);
                // Compose with a pre-existing view if the node was already a
                // column slice of some larger original.
                let base = node.param_view.unwrap_or(ParamView {
                    orig_out: of,
                    begin: 0,
                    end: of,
                });
                let mk = |graph: &mut Graph,
                          range: std::ops::Range<usize>,
                          placement: Placement,
                          tag: &str| {
                    let part = graph.add_node_with_key(
                        placement.tag(&format!("{tag}{}", node.name)),
                        Op::Dense(DenseAttrs {
                            out_features: range.len(),
                        }),
                        vec![input],
                        node.weight_key,
                    );
                    let pid = producer_of(graph, part);
                    graph.node_mut(pid).param_view = Some(ParamView {
                        orig_out: base.orig_out,
                        begin: base.begin + range.start,
                        end: base.begin + range.end,
                    });
                    part
                };
                let a = mk(graph, 0..gpu_of, Placement::Gpu, "mddp_a_");
                let b = mk(graph, gpu_of..of, Placement::Pim, "mddp_b_");
                (a, b, 1)
            }
        }
        other => {
            return Err(PassError::NotApplicable(format!(
                "`{}` ({other}) is not splittable",
                node.name
            )))
        }
    };

    // Replicate the fusable epilogue chain (BN/activations) onto each part:
    // the GPU part keeps its epilogue fused, the PIM part's epilogue becomes
    // a GPU kernel over only its slice, and the concat moves after them.
    let gpu_node = producer_of(graph, gpu_out);
    let pim_node = producer_of(graph, pim_out);
    let mut replaced_value = node.output;
    let mut removed = vec![id];
    let mut parts = [gpu_out, pim_out];
    if concat_axis == 1 && matches!(node.op, Op::Conv2d(_)) {
        for e in epilogue_chain(graph, id) {
            let e_node = graph.node(e).clone();
            for (i, part) in parts.iter_mut().enumerate() {
                *part = graph.add_node_with_key(
                    format!("mddp_p{i}_{}", e_node.name),
                    e_node.op.clone(),
                    vec![*part],
                    e_node.weight_key,
                );
            }
            replaced_value = e_node.output;
            removed.push(e);
        }
    }

    let concat = graph.add_node(
        format!("mddp_{}_concat", node.name),
        Op::Concat(ConcatAttrs { axis: concat_axis }),
        parts.to_vec(),
    );
    graph.replace_uses(replaced_value, concat);
    for r in removed {
        graph.remove_node(r);
    }
    infer_shapes(graph)?;
    Ok(SplitOutcome::Split {
        gpu: gpu_node,
        pim: pim_node,
        concat: producer_of(graph, concat),
    })
}

/// The run of single-input element-wise nodes (BN / activations) hanging off
/// `id` in a single-consumer chain — the epilogue that would be fused into
/// the node on the GPU.
fn epilogue_chain(graph: &Graph, id: NodeId) -> Vec<NodeId> {
    let mut chain = Vec::new();
    let mut cur = id;
    loop {
        let succ = graph.successors(cur);
        if succ.len() != 1 {
            break;
        }
        let next = succ[0];
        let node = graph.node(next);
        if node.inputs.len() != 1 || !crate::engine::op_is_fusable(&node.op) {
            break;
        }
        chain.push(next);
        cur = next;
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::{models, GraphBuilder, Shape};
    use pimflow_kernels::{input_tensors, run_graph};

    fn assert_equivalent(original: &Graph, transformed: &Graph, tol: f32) {
        let inputs = input_tensors(original, 17);
        let a = run_graph(original, &inputs).unwrap();
        let b = run_graph(transformed, &inputs).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.allclose(y, tol),
                "outputs differ by {}",
                x.max_abs_diff(y)
            );
        }
    }

    #[test]
    fn conv_split_preserves_semantics_at_all_ratios() {
        for ratio in [10, 30, 50, 70, 90] {
            let original = models::toy();
            let mut t = original.clone();
            // Split the 3x3 stem conv (stresses boundary padding).
            let id = t.find_node("conv_1").unwrap();
            let outcome = split_node(&mut t, id, ratio).unwrap();
            assert!(matches!(outcome, SplitOutcome::Split { .. }));
            assert_equivalent(&original, &t, 1e-4);
        }
    }

    #[test]
    fn pointwise_split_preserves_semantics() {
        let original = models::toy();
        let mut t = original.clone();
        let id = t.find_node("conv_3").unwrap(); // 1x1 conv
        split_node(&mut t, id, 40).unwrap();
        assert_equivalent(&original, &t, 1e-4);
    }

    #[test]
    fn strided_conv_split_preserves_semantics() {
        let mut b = GraphBuilder::new("strided");
        let x = b.input(Shape::nhwc(1, 13, 11, 3));
        let y = b.conv(x, 8, 3, 2, 1);
        let original = b.finish(y);
        for ratio in [20, 50, 80] {
            let mut t = original.clone();
            let id = t.node_ids().next().unwrap();
            split_node(&mut t, id, ratio).unwrap();
            assert_equivalent(&original, &t, 1e-4);
        }
    }

    #[test]
    fn dense_single_row_split_uses_param_view() {
        let original = models::toy();
        let mut t = original.clone();
        let id = t.find_node("fc_11").unwrap();
        let outcome = split_node(&mut t, id, 50).unwrap();
        let SplitOutcome::Split { gpu, pim, .. } = outcome else {
            panic!("expected a split")
        };
        assert!(t.node(gpu).param_view.is_some());
        assert!(t.node(pim).param_view.is_some());
        assert_equivalent(&original, &t, 1e-4);
    }

    #[test]
    fn dense_multi_row_split_slices_rows() {
        let original = models::bert_like(8);
        let mut t = original.clone();
        let id = t
            .node_ids()
            .find(|&i| matches!(t.node(i).op, Op::Dense(_)))
            .unwrap();
        split_node(&mut t, id, 50).unwrap();
        assert_equivalent(&original, &t, 2e-3);
    }

    #[test]
    fn ratio_zero_tags_pim() {
        let mut t = models::toy();
        let id = t.find_node("conv_3").unwrap();
        let outcome = split_node(&mut t, id, 0).unwrap();
        let SplitOutcome::AllPim(nid) = outcome else {
            panic!()
        };
        assert_eq!(Placement::of_name(&t.node(nid).name), Placement::Pim);
        // Graph unchanged numerically.
        assert_equivalent(&models::toy(), &t, 0.0);
    }

    #[test]
    fn ratio_hundred_is_noop() {
        let mut t = models::toy();
        let id = t.find_node("conv_3").unwrap();
        assert_eq!(split_node(&mut t, id, 100).unwrap(), SplitOutcome::AllGpu);
        assert_eq!(t.node_count(), models::toy().node_count());
    }

    #[test]
    fn depthwise_is_rejected() {
        let mut t = models::toy();
        let id = t.find_node("dwconv_5").unwrap();
        assert!(matches!(
            split_node(&mut t, id, 50),
            Err(PassError::NotApplicable(_))
        ));
    }

    #[test]
    fn out_of_range_ratio_is_rejected() {
        let mut t = models::toy();
        let id = t.find_node("conv_3").unwrap();
        assert!(matches!(
            split_node(&mut t, id, 101),
            Err(PassError::BadRatio(101))
        ));
        // Graph untouched by the rejected call.
        assert_eq!(t.node_count(), models::toy().node_count());
    }

    #[test]
    fn split_marks_devices() {
        let mut t = models::toy();
        let id = t.find_node("conv_3").unwrap();
        let SplitOutcome::Split { gpu, pim, .. } = split_node(&mut t, id, 50).unwrap() else {
            panic!()
        };
        assert_eq!(Placement::of_name(&t.node(gpu).name), Placement::Gpu);
        assert_eq!(Placement::of_name(&t.node(pim).name), Placement::Pim);
    }
}
