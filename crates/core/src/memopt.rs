//! Memory layout optimizer (§4.3.2).
//!
//! Splitting and pipelining insert `Slice`, `Pad`, and `Concat` operators
//! that "incur significant data copy overheads, making most splitting
//! attempts futile". The optimizer eliminates them:
//!
//! * slicing/concatenating along the **height** dimension of an NHWC tensor
//!   (or the row dimension of a 2-D tensor) is a no-op when the parts live
//!   in contiguous memory — PIMFlow lays split tensors out contiguously;
//! * `Pad` disappears by pre-allocating the padded buffer, zero-initializing
//!   it, and having the producer write from the padding offset.
//!
//! The optimizer is a *cost model*: it decides how many bytes each
//! data-movement node actually copies; the execution engine charges copy
//! kernels accordingly. Disabling it restores the full copy costs (the
//! ablation the paper motivates the optimization with).

use pimflow_ir::{Graph, NodeId, Op};

/// True if a slice/concat along `axis` of a tensor of rank `rank` touches
/// contiguous memory (outermost non-batch axes in row-major layout).
fn axis_is_contiguous(rank: usize, axis: usize) -> bool {
    match rank {
        4 => axis <= 1, // N or H of NHWC
        2 => axis == 0, // rows of [rows, features]
        _ => axis == 0,
    }
}

/// Bytes physically copied by data-movement node `id`.
///
/// Returns 0 for compute nodes. With `memopt` enabled, contiguous-axis
/// slices/concats and all pads are free; `Flatten`/`Identity` are always
/// views.
///
/// # Panics
///
/// Panics if shape inference has not run.
pub fn data_move_bytes(graph: &Graph, id: NodeId, memopt: bool) -> u64 {
    let node = graph.node(id);
    let out = graph
        .value(node.output)
        .desc
        .as_ref()
        .expect("shapes inferred");
    let out_bytes = out.size_bytes() as u64;
    match &node.op {
        Op::Flatten | Op::Identity => 0,
        // Upsampling physically writes the expanded tensor.
        Op::Upsample { .. } => out_bytes,
        Op::Pad(_) => {
            if memopt {
                0
            } else {
                out_bytes
            }
        }
        Op::Slice(s) => {
            if memopt && axis_is_contiguous(out.shape.rank(), s.axis) {
                0
            } else {
                out_bytes
            }
        }
        Op::Concat(c) => {
            if memopt && axis_is_contiguous(out.shape.rank(), c.axis) {
                0
            } else {
                out_bytes
            }
        }
        _ => 0,
    }
}

/// True if `id` is a data-movement node (as opposed to compute).
pub fn is_data_move(graph: &Graph, id: NodeId) -> bool {
    matches!(
        graph.node(id).op,
        Op::Pad(_)
            | Op::Slice(_)
            | Op::Concat(_)
            | Op::Flatten
            | Op::Upsample { .. }
            | Op::Identity
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimflow_ir::{GraphBuilder, PadAttrs, Shape, SliceAttrs};

    fn graph_with_moves() -> Graph {
        let mut b = GraphBuilder::new("m");
        let x = b.input(Shape::nhwc(1, 8, 6, 4));
        let s_h = b.slice(
            x,
            SliceAttrs {
                axis: 1,
                begin: 0,
                end: 4,
            },
        );
        let s_w = b.slice(
            x,
            SliceAttrs {
                axis: 2,
                begin: 0,
                end: 3,
            },
        );
        let p = b.pad(
            s_h,
            PadAttrs {
                top: 1,
                bottom: 1,
                left: 0,
                right: 0,
            },
        );
        let c = b.concat(vec![p, p], 1);
        let _ = s_w;
        b.finish(c)
    }

    #[test]
    fn h_slice_is_free_with_memopt() {
        let g = graph_with_moves();
        let s_h = g.find_node("slice_1").unwrap();
        assert_eq!(data_move_bytes(&g, s_h, true), 0);
        assert!(data_move_bytes(&g, s_h, false) > 0);
    }

    #[test]
    fn w_slice_always_copies() {
        let g = graph_with_moves();
        let s_w = g.find_node("slice_2").unwrap();
        assert!(data_move_bytes(&g, s_w, true) > 0);
    }

    #[test]
    fn pad_is_free_with_memopt() {
        let g = graph_with_moves();
        let p = g.find_node("pad_3").unwrap();
        assert_eq!(data_move_bytes(&g, p, true), 0);
        let bytes = data_move_bytes(&g, p, false);
        assert_eq!(bytes, 6 * 6 * 4 * 2);
    }

    #[test]
    fn h_concat_is_free_with_memopt() {
        let g = graph_with_moves();
        let c = g.find_node("concat_4").unwrap();
        assert_eq!(data_move_bytes(&g, c, true), 0);
        assert!(data_move_bytes(&g, c, false) > 0);
    }

    #[test]
    fn compute_nodes_move_nothing() {
        let g = pimflow_ir::models::toy();
        let conv = g.find_node("conv_1").unwrap();
        assert_eq!(data_move_bytes(&g, conv, false), 0);
        assert!(!is_data_move(&g, conv));
    }
}
