//! Prints the GPU-vs-PIM latency landscape for representative layer shapes
//! (the raw data behind the paper's §3 preliminary analysis): dense convs
//! favor the GPU, batch-1 FCs favor PIM by an order of magnitude, and
//! pointwise convs sit in the contested zone that MD-DP splitting exploits.
//!
//! ```text
//! cargo run --release -p pimflow --example landscape
//! ```

use pimflow::codegen::*;
use pimflow_gpusim::GpuConfig;
use pimflow_ir::{Conv2dAttrs, Hw, Shape};
use pimflow_pimsim::{PimConfig, ScheduleGranularity};

fn main() {
    let gpu = GpuConfig::rtx2060_like();
    let npp = PimConfig::newton_plus_plus();
    let np = PimConfig::newton_plus();
    let cases: Vec<(&str, Shape, Conv2dAttrs)> = vec![
        (
            "mbv2 pw 112x112x32->16",
            Shape::nhwc(1, 112, 112, 32),
            Conv2dAttrs::pointwise(16),
        ),
        (
            "mbv2 pw 14x14x64->384",
            Shape::nhwc(1, 14, 14, 64),
            Conv2dAttrs::pointwise(384),
        ),
        (
            "mbv2 pw 7x7x960->320",
            Shape::nhwc(1, 7, 7, 960),
            Conv2dAttrs::pointwise(320),
        ),
        (
            "enet pw 7x7x1152->192",
            Shape::nhwc(1, 7, 7, 1152),
            Conv2dAttrs::pointwise(192),
        ),
        (
            "rn50 pw 14x14x256->1024",
            Shape::nhwc(1, 14, 14, 256),
            Conv2dAttrs::pointwise(1024),
        ),
        (
            "rn50 3x3 14x14x256",
            Shape::nhwc(1, 14, 14, 256),
            Conv2dAttrs {
                out_channels: 256,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 1,
            },
        ),
        (
            "vgg 3x3 224x224x64",
            Shape::nhwc(1, 224, 224, 64),
            Conv2dAttrs {
                out_channels: 64,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 1,
            },
        ),
        (
            "vgg 3x3 28x28x512",
            Shape::nhwc(1, 28, 28, 512),
            Conv2dAttrs {
                out_channels: 512,
                kernel: Hw::square(3),
                stride: Hw::square(1),
                padding: Hw::square(1),
                groups: 1,
            },
        ),
    ];
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>7}",
        "layer", "GPU us", "PIM++ us", "PIM+ us", "G/P++"
    );
    for (name, shape, attrs) in cases {
        let mut b = pimflow_ir::GraphBuilder::new("t");
        let x = b.input(shape.clone());
        let oc = attrs.out_channels;
        let k = attrs.kernel.h;
        let s = attrs.stride.h;
        let p = attrs.padding.h;
        let y = if attrs.groups > 1 {
            b.dwconv(x, oc, k, s, p)
        } else {
            b.conv(x, oc, k, s, p)
        };
        let g = b.finish(y);
        let id = g
            .node_ids()
            .find(|&i| matches!(g.node(i).op, pimflow_ir::Op::Conv2d(_)))
            .unwrap();
        let tg = gpu_node_time_us(&g, id, &gpu, 16);
        let w = PimWorkload::from_conv(&shape, &attrs);
        let tpp = execute_workload(&w, &npp, 16, ScheduleGranularity::Comp).time_us;
        let tp = execute_workload(&w, &np, 16, ScheduleGranularity::Comp).time_us;
        println!(
            "{:<28} {:>9.1} {:>9.1} {:>9.1} {:>7.2}",
            name,
            tg,
            tpp,
            tp,
            tg / tpp
        );
    }
    // FC layers
    for (name, k, of) in [
        ("vgg fc6", 25088usize, 4096usize),
        ("vgg fc8", 4096, 1000),
        ("mbv2 fc", 1280, 1000),
    ] {
        let w = PimWorkload::from_dense(1, k, of);
        let tpp = execute_workload(&w, &npp, 16, ScheduleGranularity::Comp).time_us;
        let p = pimflow_gpusim::KernelProfile::matvec(of, k, 1);
        let tg = pimflow_gpusim::kernel_time_with_launch_us(&p, &gpu, 32);
        println!(
            "{:<28} {:>9.1} {:>9.1} {:>9} {:>7.2}",
            name,
            tg,
            tpp,
            "-",
            tg / tpp
        );
    }
}
