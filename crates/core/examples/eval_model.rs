//! Evaluates one model under all six offloading mechanisms (§5) and prints
//! the Fig. 9-style comparison row by row.
//!
//! ```text
//! cargo run --release -p pimflow --example eval_model [model]
//! ```

use pimflow::policy::{evaluate, Policy};
use pimflow_ir::models;
use std::time::Instant;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mobilenet-v2".into());
    let g = models::by_name(&name).expect("unknown model");
    println!("== {} ({} nodes) ==", g.name, g.node_count());
    let mut base_e2e = 0.0;
    let mut base_conv = 0.0;
    for p in Policy::all() {
        let t0 = Instant::now();
        let e = evaluate(&g, p).expect("model evaluates");
        if p == Policy::Baseline {
            base_e2e = e.report.total_us;
            base_conv = e.conv_layer_us;
        }
        let splits = e.plan.as_ref().map(|pl| pl.decisions.iter().filter(|(_,d)| matches!(d, pimflow::search::Decision::Split{gpu_percent, ..} if *gpu_percent>0)).count()).unwrap_or(0);
        let pipes = e
            .plan
            .as_ref()
            .map(|pl| {
                pl.decisions
                    .iter()
                    .filter(|(_, d)| matches!(d, pimflow::search::Decision::Pipeline { .. }))
                    .count()
            })
            .unwrap_or(0);
        println!("{:<11} e2e {:8.1}us (x{:.2})  conv {:8.1}us (x{:.2})  energy {:8.0}uJ  splits {} pipes {}  [{:.1}s]",
            p.name(), e.report.total_us, base_e2e / e.report.total_us,
            e.conv_layer_us, base_conv / e.conv_layer_us,
            e.report.energy_uj, splits, pipes, t0.elapsed().as_secs_f32());
    }
}
