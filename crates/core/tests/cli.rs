//! End-to-end test of the `pimflow` CLI: the artifact's three-step workflow
//! (profile -> solve -> run) against the Toy network.

use std::process::Command;

fn pimflow(args: &[&str], dir: &std::path::Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pimflow"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn artifact_workflow_profile_solve_run() {
    let dir = std::env::temp_dir().join(format!("pimflow-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Step 1: profile with both transformation passes.
    let (ok, out) = pimflow(&["-m=profile", "-t=split", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("MD-DP candidate layers"), "{out}");
    let (ok, out) = pimflow(&["-m=profile", "-t=pipeline", "-n=toy"], &dir);
    assert!(ok, "{out}");

    // Step 2: compute the optimal graph.
    let (ok, out) = pimflow(&["-m=solve", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("optimal plan"), "{out}");
    assert!(dir.join("pimflow-out/plans/toy.json").exists());

    // Step 3: run, both GPU-only and with the saved plan.
    let (ok, out) = pimflow(&["-m=run", "-n=toy", "--gpu_only"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("GPU baseline"), "{out}");
    let (ok, out) = pimflow(&["-m=run", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("using saved plan"), "{out}");
    assert!(out.contains("PIMFlow"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_mode_writes_parseable_traces() {
    let dir = std::env::temp_dir().join(format!("pimflow-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, out) = pimflow(&["-m=trace", "-n=toy"], &dir);
    assert!(ok, "{out}");
    let trace_dir = dir.join("pimflow-out/traces/toy");
    let mut found = 0;
    for entry in std::fs::read_dir(&trace_dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let traces = pimflow_pimsim::parse_traces(&text).expect("trace parses");
        assert!(!traces.is_empty());
        found += 1;
    }
    assert!(found >= 4, "expected traces for every candidate layer, got {found}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn info_mode_prints_summary_and_writes_dot() {
    let dir = std::env::temp_dir().join(format!("pimflow-info-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, out) = pimflow(&["-m=info", "-n=toy"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("MMACs"), "{out}");
    let dot = std::fs::read_to_string(dir.join("pimflow-out/dot/toy.dot")).unwrap();
    assert!(dot.starts_with("digraph"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_model_fails_cleanly() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["-m=run", "-n=alexnet"], &dir);
    assert!(!ok);
    assert!(out.contains("unknown network"), "{out}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["--frobnicate"], &dir);
    assert!(!ok);
    assert!(out.contains("usage"), "{out}");
}

#[test]
fn policy_selection_works() {
    let dir = std::env::temp_dir();
    let (ok, out) = pimflow(&["-m=run", "-n=toy", "--policy=Newton++"], &dir);
    assert!(ok, "{out}");
    assert!(out.contains("Newton++"), "{out}");
}
