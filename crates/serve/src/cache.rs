//! LRU execution-plan cache.
//!
//! The execution-mode search (Algorithm 1) is by far the most expensive
//! step of serving a batch: it profiles every PIM-candidate layer of the
//! *batched* graph. Its result depends only on the (model, policy, batch
//! size) triple, so the scheduler memoizes compiled batch profiles behind
//! this cache and the search runs once per configuration.
//!
//! Recency is tracked with a monotonic use-stamp per entry instead of a
//! position list: a hit is one `HashMap` update (O(1)), and only an
//! eviction scans for the minimum stamp (O(capacity), on the already-slow
//! miss path). The old scheme (`Vec::position` + `remove(0)`) paid
//! O(capacity) on every hit.

use std::collections::HashMap;

/// Environment variable controlling the default plan-cache capacity.
pub const PLAN_CACHE_CAP_ENV_VAR: &str = "PIMFLOW_PLAN_CACHE_CAP";

/// Plan-cache capacity when neither the CLI flag nor the environment
/// variable overrides it.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 16;

/// Hard cap on configured capacity: far above any real working set, it
/// only bounds accidental `PIMFLOW_PLAN_CACHE_CAP=999999999` memory blowups.
const MAX_PLAN_CACHE_CAP: usize = 65_536;

/// Resolves a `PIMFLOW_PLAN_CACHE_CAP`-style setting to a capacity: a
/// positive integer is used as-is (clamped to 65 536); anything else —
/// unset, empty, `0`, garbage — falls back to
/// [`DEFAULT_PLAN_CACHE_CAP`].
pub fn plan_cache_cap_from_setting(setting: Option<&str>) -> usize {
    match setting.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_PLAN_CACHE_CAP),
        _ => DEFAULT_PLAN_CACHE_CAP,
    }
}

/// Reads the default plan-cache capacity from the
/// `PIMFLOW_PLAN_CACHE_CAP` environment variable (see
/// [`plan_cache_cap_from_setting`] for the resolution rules).
pub fn plan_cache_cap_from_env() -> usize {
    plan_cache_cap_from_setting(std::env::var(PLAN_CACHE_CAP_ENV_VAR).ok().as_deref())
}

/// Cache key: one compiled serving configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model name (normalized).
    pub model: String,
    /// Policy display name.
    pub policy: String,
    /// Batch size the plan was compiled for.
    pub batch: usize,
    /// Channel-availability mask bits the plan was compiled under
    /// ([`ChannelMask::bits`](pimflow::engine::ChannelMask::bits)). Plans
    /// priced for degraded hardware must not be served once channels
    /// recover, so the mask is part of the identity.
    pub mask: u64,
}

/// One cached value plus the stamp of its last use.
#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    last_use: u64,
}

/// A bounded LRU map from [`PlanKey`] to compiled batch profiles.
#[derive(Debug, Clone)]
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<PlanKey, Slot<V>>,
    /// Monotonic use counter; stamps are unique, so the LRU entry (minimum
    /// stamp) is unambiguous and eviction is deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<V> PlanCache<V> {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PlanCache {
            capacity,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, slot)| slot.last_use)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&key);
        }
    }

    /// Looks up `key`, building and inserting the value with `build` on a
    /// miss (evicting the least-recently-used entry if full). Returns the
    /// value and whether this was a hit.
    pub fn get_or_insert_with(&mut self, key: PlanKey, build: impl FnOnce() -> V) -> (&V, bool) {
        let hit = self.map.contains_key(&key);
        let stamp = self.next_tick();
        if hit {
            self.hits += 1;
            self.map
                .get_mut(&key)
                .expect("checked contains_key")
                .last_use = stamp;
        } else {
            self.misses += 1;
            if self.map.len() >= self.capacity {
                self.evict_lru();
            }
            self.map.insert(
                key.clone(),
                Slot {
                    value: build(),
                    last_use: stamp,
                },
            );
        }
        (&self.map.get(&key).expect("just inserted").value, hit)
    }

    /// Inserts (or replaces) `key` without touching the hit/miss counters —
    /// the warm-up path for precompiled plans. Evicts the LRU entry when
    /// inserting a new key into a full cache.
    pub fn insert(&mut self, key: PlanKey, value: V) {
        let stamp = self.next_tick();
        if let Some(slot) = self.map.get_mut(&key) {
            slot.value = value;
            slot.last_use = stamp;
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        self.map.insert(
            key,
            Slot {
                value,
                last_use: stamp,
            },
        );
    }

    /// Looks up `key` without touching recency or the hit/miss counters —
    /// the fault-repair path inspects existing entries this way.
    pub fn peek(&self, key: &PlanKey) -> Option<&V> {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= build invocations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits as a fraction of all lookups (0.0 before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(batch: usize) -> PlanKey {
        PlanKey {
            model: "toy".into(),
            policy: "PIMFlow".into(),
            batch,
            mask: u64::MAX,
        }
    }

    #[test]
    fn builds_once_per_key() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        let mut builds = 0;
        for _ in 0..5 {
            c.get_or_insert_with(key(2), || {
                builds += 1;
                7
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(c.hits(), 4);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: PlanCache<usize> = PlanCache::new(2);
        c.get_or_insert_with(key(1), || 1);
        c.get_or_insert_with(key(2), || 2);
        // Touch 1 so 2 becomes the LRU entry.
        c.get_or_insert_with(key(1), || unreachable!());
        c.get_or_insert_with(key(3), || 3);
        assert_eq!(c.len(), 2);
        let (_, hit) = c.get_or_insert_with(key(1), || unreachable!());
        assert!(hit, "batch-1 plan must have survived");
        let (_, hit) = c.get_or_insert_with(key(3), || unreachable!());
        assert!(hit, "batch-3 plan must have survived");
        let (_, hit) = c.get_or_insert_with(key(2), || 2);
        assert!(!hit, "batch-2 plan must have been evicted");
    }

    #[test]
    fn hit_accounting_survives_eviction_of_touched_key() {
        // Regression for the recency rework: touching a key, evicting it,
        // and re-inserting it must keep hits/misses exact across the whole
        // sequence.
        let mut c: PlanCache<usize> = PlanCache::new(2);
        c.get_or_insert_with(key(1), || 1); // miss
        c.get_or_insert_with(key(2), || 2); // miss
        c.get_or_insert_with(key(1), || unreachable!()); // hit (touch 1)
        c.get_or_insert_with(key(3), || 3); // miss, evicts 2
        c.get_or_insert_with(key(2), || 2); // miss, evicts 1 (LRU after touch order 1,3)
        let (_, hit) = c.get_or_insert_with(key(3), || unreachable!());
        assert!(hit, "3 was touched after 1");
        let (_, hit) = c.get_or_insert_with(key(1), || 1); // miss: evicted above
        assert!(!hit);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_warms_without_counting_lookups() {
        let mut c: PlanCache<usize> = PlanCache::new(2);
        c.insert(key(1), 10);
        c.insert(key(2), 20);
        assert_eq!(c.hits() + c.misses(), 0, "warm-up is not a lookup");
        let (v, hit) = c.get_or_insert_with(key(1), || unreachable!());
        assert!(hit);
        assert_eq!(*v, 10);
        // Replacing an existing key keeps the size and updates the value.
        c.insert(key(1), 11);
        assert_eq!(c.len(), 2);
        let (v, hit) = c.get_or_insert_with(key(1), || unreachable!());
        assert!(hit);
        assert_eq!(*v, 11);
        // Over-capacity warm-up evicts deterministically (LRU first).
        c.insert(key(3), 30);
        assert_eq!(c.len(), 2);
        let (_, hit) = c.get_or_insert_with(key(2), || 21);
        assert!(!hit, "batch-2 was least recently used");
    }

    #[test]
    fn distinct_policies_do_not_collide() {
        let mut c: PlanCache<&'static str> = PlanCache::new(4);
        let a = PlanKey {
            model: "toy".into(),
            policy: "PIMFlow".into(),
            batch: 1,
            mask: u64::MAX,
        };
        let b = PlanKey {
            model: "toy".into(),
            policy: "Baseline".into(),
            batch: 1,
            mask: u64::MAX,
        };
        c.get_or_insert_with(a, || "pimflow");
        let (v, hit) = c.get_or_insert_with(b, || "baseline");
        assert!(!hit);
        assert_eq!(*v, "baseline");
    }

    #[test]
    fn capacity_setting_resolution() {
        assert_eq!(plan_cache_cap_from_setting(Some("3")), 3);
        assert_eq!(plan_cache_cap_from_setting(Some(" 128 ")), 128);
        assert_eq!(
            plan_cache_cap_from_setting(Some("999999999")),
            MAX_PLAN_CACHE_CAP
        );
        assert_eq!(
            plan_cache_cap_from_setting(Some("0")),
            DEFAULT_PLAN_CACHE_CAP
        );
        assert_eq!(
            plan_cache_cap_from_setting(Some("nope")),
            DEFAULT_PLAN_CACHE_CAP
        );
        assert_eq!(
            plan_cache_cap_from_setting(Some("")),
            DEFAULT_PLAN_CACHE_CAP
        );
        assert_eq!(plan_cache_cap_from_setting(None), DEFAULT_PLAN_CACHE_CAP);
    }

    #[test]
    fn capacity_one_thrashes_on_alternating_keys() {
        // The smallest legal cache: every alternation between two keys
        // evicts the other, so both keys miss every time.
        let mut c: PlanCache<usize> = PlanCache::new(1);
        for _ in 0..3 {
            c.get_or_insert_with(key(1), || 1);
            c.get_or_insert_with(key(2), || 2);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 6);
    }

    #[test]
    fn distinct_masks_do_not_collide() {
        let mut c: PlanCache<&'static str> = PlanCache::new(4);
        let healthy = key(1);
        let degraded = PlanKey {
            mask: !0b1,
            ..key(1)
        };
        c.get_or_insert_with(healthy.clone(), || "healthy");
        let (v, hit) = c.get_or_insert_with(degraded.clone(), || "degraded");
        assert!(!hit, "degraded hardware must not reuse the healthy plan");
        assert_eq!(*v, "degraded");
        assert_eq!(c.peek(&healthy), Some(&"healthy"));
        assert_eq!(c.peek(&degraded), Some(&"degraded"));
        assert_eq!(c.hits() + c.misses(), 2, "peek is not a lookup");
    }
}
