//! LRU execution-plan cache.
//!
//! The execution-mode search (Algorithm 1) is by far the most expensive
//! step of serving a batch: it profiles every PIM-candidate layer of the
//! *batched* graph. Its result depends only on the (model, policy, batch
//! size) triple, so the scheduler memoizes compiled batch profiles behind
//! this cache and the search runs once per configuration.

use std::collections::HashMap;

/// Cache key: one compiled serving configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model name (normalized).
    pub model: String,
    /// Policy display name.
    pub policy: String,
    /// Batch size the plan was compiled for.
    pub batch: usize,
}

/// A bounded LRU map from [`PlanKey`] to compiled batch profiles.
#[derive(Debug, Clone)]
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<PlanKey, V>,
    /// Keys in recency order, least-recent first.
    order: Vec<PlanKey>,
    hits: u64,
    misses: u64,
}

impl<V> PlanCache<V> {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PlanCache {
            capacity,
            map: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &PlanKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Looks up `key`, building and inserting the value with `build` on a
    /// miss (evicting the least-recently-used entry if full). Returns the
    /// value and whether this was a hit.
    pub fn get_or_insert_with(&mut self, key: PlanKey, build: impl FnOnce() -> V) -> (&V, bool) {
        let hit = self.map.contains_key(&key);
        if hit {
            self.hits += 1;
            self.touch(&key);
        } else {
            self.misses += 1;
            if self.map.len() >= self.capacity {
                let evicted = self.order.remove(0);
                self.map.remove(&evicted);
            }
            self.map.insert(key.clone(), build());
            self.order.push(key.clone());
        }
        (self.map.get(&key).expect("just inserted"), hit)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= build invocations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits as a fraction of all lookups (0.0 before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(batch: usize) -> PlanKey {
        PlanKey {
            model: "toy".into(),
            policy: "PIMFlow".into(),
            batch,
        }
    }

    #[test]
    fn builds_once_per_key() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        let mut builds = 0;
        for _ in 0..5 {
            c.get_or_insert_with(key(2), || {
                builds += 1;
                7
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(c.hits(), 4);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: PlanCache<usize> = PlanCache::new(2);
        c.get_or_insert_with(key(1), || 1);
        c.get_or_insert_with(key(2), || 2);
        // Touch 1 so 2 becomes the LRU entry.
        c.get_or_insert_with(key(1), || unreachable!());
        c.get_or_insert_with(key(3), || 3);
        assert_eq!(c.len(), 2);
        let (_, hit) = c.get_or_insert_with(key(1), || unreachable!());
        assert!(hit, "batch-1 plan must have survived");
        let (_, hit) = c.get_or_insert_with(key(3), || unreachable!());
        assert!(hit, "batch-3 plan must have survived");
        let (_, hit) = c.get_or_insert_with(key(2), || 2);
        assert!(!hit, "batch-2 plan must have been evicted");
    }

    #[test]
    fn distinct_policies_do_not_collide() {
        let mut c: PlanCache<&'static str> = PlanCache::new(4);
        let a = PlanKey {
            model: "toy".into(),
            policy: "PIMFlow".into(),
            batch: 1,
        };
        let b = PlanKey {
            model: "toy".into(),
            policy: "Baseline".into(),
            batch: 1,
        };
        c.get_or_insert_with(a, || "pimflow");
        let (v, hit) = c.get_or_insert_with(b, || "baseline");
        assert!(!hit);
        assert_eq!(*v, "baseline");
    }
}
