//! JSONL event-trace exporter.
//!
//! Every scheduling decision of a serving run is appended as one compact
//! JSON object per line: request arrivals, batch dispatches (with the
//! plan-cache outcome), and batch completions. The encoder is the in-repo
//! `pimflow-json` writer, whose output is fully deterministic — two runs
//! with the same seed produce byte-identical traces, which the determinism
//! tests assert and which makes traces diffable across code changes.

use pimflow_json::Json;

/// Accumulates the JSONL lines of one serving run.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    lines: Vec<String>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    fn push(&mut self, fields: Vec<(&str, Json)>) {
        self.lines.push(Json::obj(fields).to_string_compact());
    }

    /// Records an arbitrary event with caller-supplied fields, rendered
    /// after the standard `t_us`/`event` pair. The fleet simulator uses
    /// this to tag its trace with node/tenant context without this crate
    /// having to know about fleets.
    pub fn record(&mut self, t_us: f64, event: &str, fields: Vec<(&str, Json)>) {
        let mut all = vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str(event.into())),
        ];
        all.extend(fields);
        self.push(all);
    }

    /// Records a request arrival.
    pub fn arrival(&mut self, t_us: f64, request: u64) {
        self.push(vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str("arrival".into())),
            ("request", Json::Num(request as f64)),
        ]);
    }

    /// Records a batch dispatch onto the device.
    pub fn dispatch(&mut self, t_us: f64, batch: u64, requests: &[u64], cache_hit: bool) {
        self.push(vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str("dispatch".into())),
            ("batch", Json::Num(batch as f64)),
            (
                "requests",
                Json::Arr(requests.iter().map(|&r| Json::Num(r as f64)).collect()),
            ),
            (
                "cache",
                Json::Str(if cache_hit { "hit" } else { "miss" }.into()),
            ),
        ]);
    }

    /// Records a batch completion.
    pub fn complete(&mut self, t_us: f64, batch: u64, size: usize, exec_us: f64) {
        self.push(vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str("complete".into())),
            ("batch", Json::Num(batch as f64)),
            ("size", Json::Num(size as f64)),
            ("exec_us", Json::Num(exec_us)),
        ]);
    }

    /// Records a channel availability transition (fault injection).
    pub fn fault(&mut self, t_us: f64, channel: usize, up: bool) {
        self.push(vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str("fault".into())),
            ("channel", Json::Num(channel as f64)),
            ("up", Json::Bool(up)),
        ]);
    }

    /// Records an in-flight batch aborted by a channel failure and
    /// re-dispatched on a degraded plan. `wasted_us` is the execution time
    /// lost to the abort.
    pub fn retry(&mut self, t_us: f64, batch: u64, channel: usize, wasted_us: f64) {
        self.push(vec![
            ("t_us", Json::Num(t_us)),
            ("event", Json::Str("retry".into())),
            ("batch", Json::Num(batch as f64)),
            ("channel", Json::Num(channel as f64)),
            ("wasted_us", Json::Num(wasted_us)),
        ]);
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The recorded lines, in order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the log, returning its lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }

    /// Renders the whole trace as one newline-terminated JSONL document.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_one_object_per_line() {
        let mut log = EventLog::new();
        log.arrival(0.0, 0);
        log.dispatch(10.5, 0, &[0, 1], false);
        log.complete(20.0, 0, 2, 9.5);
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let parsed = Json::parse(line).unwrap();
            assert!(parsed.field("event").is_ok(), "line `{line}`");
        }
        assert!(text.contains("\"cache\":\"miss\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut log = EventLog::new();
            log.arrival(1.25, 3);
            log.dispatch(2.5, 1, &[3], true);
            log.to_jsonl()
        };
        assert_eq!(build(), build());
    }
}
